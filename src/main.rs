//! `thirstyflops` — the command-line water-footprint estimation tool.
//!
//! ```text
//! thirstyflops footprint <system> [--seed N]    full annual footprint report
//! thirstyflops compare <a> <b> [--seed N]       two systems side by side (+ uncertainty overlap)
//! thirstyflops rank [--adjusted] [--seed N]     Water500-style ranking of all systems
//! thirstyflops scenario <system> [--seed N]     Fig. 14 energy-source what-ifs
//! thirstyflops sensitivity <system> [--seed N]  which parameters move the answer
//! thirstyflops lifecycle <system> --years N     break-even & amortized intensity
//! thirstyflops experiments [id ...] [--all] [--json]  regenerate paper tables/figures
//! thirstyflops systems                          list cataloged systems
//! ```
//!
//! Every command accepts a global `--threads N` flag; without it the
//! worker count comes from `THIRSTYFLOPS_THREADS`, then
//! `RAYON_NUM_THREADS`, then the machine's available parallelism. Output
//! is bit-identical at every thread count (see `docs/CONCURRENCY.md`).

use thirstyflops::catalog::{SystemId, SystemSpec};
use thirstyflops::core::sensitivity::{embodied_elasticities, operational_elasticities};
use thirstyflops::core::uncertainty::{mix_ewf_interval, operational_interval, Interval};
use thirstyflops::core::{AnnualReport, FootprintModel, LifecycleModel, SystemYear};
use thirstyflops::grid::{GridRegion, Scenario};
use thirstyflops::units::{GramsCo2PerKwh, LitersPerKilowattHour};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = run(&args);
    std::process::exit(code);
}

fn run(raw_args: &[String]) -> i32 {
    // `--threads N` is a global flag: extract it wherever it appears
    // (before or after the subcommand) so positional parsing below never
    // sees it.
    let args = match extract_threads(raw_args) {
        Ok((args, threads)) => {
            if let Some(n) = threads {
                // First-wins like rayon: the CLI flag runs before any
                // parallel work, so it takes precedence over the
                // environment defaults.
                let _ = rayon::ThreadPoolBuilder::new()
                    .num_threads(n)
                    .build_global();
            }
            args
        }
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let args = args.as_slice();
    let Some(cmd) = args.first() else {
        usage();
        return 2;
    };
    match cmd.as_str() {
        "footprint" => cmd_footprint(args),
        "compare" => cmd_compare(args),
        "rank" => cmd_rank(args),
        "scenario" => cmd_scenario(args),
        "sensitivity" => cmd_sensitivity(args),
        "lifecycle" => cmd_lifecycle(args),
        "experiments" => cmd_experiments(args),
        "systems" => cmd_systems(),
        "help" | "--help" | "-h" => {
            usage();
            0
        }
        other => {
            eprintln!("unknown command {other:?}\n");
            usage();
            2
        }
    }
}

fn usage() {
    eprintln!(
        "thirstyflops — water footprint modeling for HPC systems (SC'25 reproduction)\n\n\
         USAGE:\n  \
         thirstyflops footprint <system> [--seed N]\n  \
         thirstyflops compare <a> <b> [--seed N]\n  \
         thirstyflops rank [--adjusted] [--seed N]\n  \
         thirstyflops scenario <system> [--seed N]\n  \
         thirstyflops sensitivity <system> [--seed N]\n  \
         thirstyflops lifecycle <system> --years N [--seed N]\n  \
         thirstyflops experiments [id ...] [--all] [--json]\n  \
         thirstyflops systems\n\n\
         Every command also accepts --threads N (worker threads for the\n\
         parallel sweeps; defaults to THIRSTYFLOPS_THREADS, then the CPU\n\
         count). Results are identical at every thread count.\n\n\
         Systems: marconi, fugaku, polaris, frontier, aurora, elcapitan"
    );
}

/// Splits a global `--threads N` flag (any position) out of the argument
/// list, returning the remaining args and the parsed count (`None` when
/// the flag is absent).
fn extract_threads(args: &[String]) -> Result<(Vec<String>, Option<usize>), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut threads = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg != "--threads" {
            rest.push(arg.clone());
            continue;
        }
        let Some(value) = iter.next() else {
            return Err("--threads needs a value, e.g. --threads 4".into());
        };
        match value.parse::<usize>() {
            Ok(n) if n > 0 => threads = Some(n),
            _ => {
                return Err(format!(
                    "--threads expects a positive integer, got {value:?}"
                ))
            }
        }
    }
    Ok((rest, threads))
}

fn parse_system(name: &str) -> Option<SystemId> {
    match name.to_ascii_lowercase().as_str() {
        "marconi" | "marconi100" => Some(SystemId::Marconi),
        "fugaku" => Some(SystemId::Fugaku),
        "polaris" => Some(SystemId::Polaris),
        "frontier" => Some(SystemId::Frontier),
        "aurora" => Some(SystemId::Aurora),
        "elcapitan" | "el-capitan" | "el_capitan" => Some(SystemId::ElCapitan),
        _ => None,
    }
}

fn require_system(args: &[String], idx: usize) -> Result<SystemId, i32> {
    let Some(name) = args.get(idx) else {
        eprintln!("missing <system> argument");
        return Err(2);
    };
    parse_system(name).ok_or_else(|| {
        eprintln!("unknown system {name:?} — try `thirstyflops systems`");
        2
    })
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn seed_of(args: &[String]) -> u64 {
    flag_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2023)
}

fn ml(l: thirstyflops::units::Liters) -> f64 {
    l.value() / 1e6
}

fn cmd_footprint(args: &[String]) -> i32 {
    let id = match require_system(args, 1) {
        Ok(id) => id,
        Err(c) => return c,
    };
    let seed = seed_of(args);
    let report = FootprintModel::reference(id).annual_report(seed);
    print_report(&report);
    0
}

fn print_report(r: &AnnualReport) {
    let spec = SystemSpec::reference(r.id);
    println!("{} — {} ({})", r.id, spec.location, spec.operator);
    println!("  embodied water      {:>12.2} ML", ml(r.embodied_total()));
    println!(
        "    processors {:.2} ML | memory+storage {:.2} ML | packaging {:.2} ML",
        ml(r.embodied.processors()),
        ml(r.embodied.memory_and_storage()),
        ml(r.embodied.packaging)
    );
    println!("  annual IT energy    {:>12.1} GWh", r.energy.value() / 1e6);
    println!(
        "  operational water   {:>12.2} ML  (direct {:.0}% / indirect {:.0}%)",
        ml(r.operational.total()),
        r.direct_share.percent(),
        100.0 - r.direct_share.percent()
    );
    println!(
        "  intensities          WUE {:.2} | EWF {:.2} | WI {:.2} | adjusted {:.2} L/kWh",
        r.mean_wue.value(),
        r.mean_ewf.value(),
        r.mean_wi.value(),
        r.adjusted_wi.value()
    );
}

fn cmd_compare(args: &[String]) -> i32 {
    let a = match require_system(args, 1) {
        Ok(id) => id,
        Err(c) => return c,
    };
    let b = match require_system(args, 2) {
        Ok(id) => id,
        Err(c) => return c,
    };
    let seed = seed_of(args);
    let ra = FootprintModel::reference(a).annual_report(seed);
    let rb = FootprintModel::reference(b).annual_report(seed);
    print_report(&ra);
    println!();
    print_report(&rb);

    // Uncertainty overlap: can we actually rank these two on operational
    // water, given the per-source EWF bands?
    let band = |id: SystemId, r: &AnnualReport| -> Interval {
        let spec = SystemSpec::reference(id);
        let mix = GridRegion::preset(spec.region).annual_mix();
        let ewf = mix_ewf_interval(&mix);
        let wue = Interval::with_tolerance(r.mean_wue.value(), 0.15).expect("static tolerance");
        let energy = Interval::exact(r.energy.value());
        operational_interval(energy, wue, spec.pue, ewf)
    };
    let ia = band(a, &ra);
    let ib = band(b, &rb);
    println!();
    println!(
        "operational bands: {a} [{:.0}, {:.0}, {:.0}] ML vs {b} [{:.0}, {:.0}, {:.0}] ML",
        ia.lo / 1e6,
        ia.mid / 1e6,
        ia.hi / 1e6,
        ib.lo / 1e6,
        ib.mid / 1e6,
        ib.hi / 1e6
    );
    if ia.overlaps(&ib) {
        println!("bands OVERLAP — the ranking is not robust to EWF/WUE uncertainty");
    } else {
        println!("bands are disjoint — the ranking survives the factor uncertainty");
    }
    0
}

fn cmd_rank(args: &[String]) -> i32 {
    let adjusted = args.iter().any(|a| a == "--adjusted");
    let seed = seed_of(args);
    let mut reports: Vec<AnnualReport> = SystemId::ALL
        .iter()
        .map(|&id| FootprintModel::reference(id).annual_report(seed))
        .collect();
    if adjusted {
        reports.sort_by(|x, y| {
            y.adjusted_wi
                .value()
                .partial_cmp(&x.adjusted_wi.value())
                .unwrap()
        });
        println!("rank by scarcity-adjusted water intensity:");
        for (i, r) in reports.iter().enumerate() {
            println!(
                "  {}. {:<12} adjusted WI {:>6.2} (raw {:.2}) L/kWh",
                i + 1,
                r.id.to_string(),
                r.adjusted_wi.value(),
                r.mean_wi.value()
            );
        }
    } else {
        reports.sort_by(|x, y| {
            y.operational_total()
                .value()
                .partial_cmp(&x.operational_total().value())
                .unwrap()
        });
        println!("rank by annual operational water:");
        for (i, r) in reports.iter().enumerate() {
            println!(
                "  {}. {:<12} {:>9.1} ML  ({:.1} GWh, WI {:.2})",
                i + 1,
                r.id.to_string(),
                ml(r.operational_total()),
                r.energy.value() / 1e6,
                r.mean_wi.value()
            );
        }
    }
    0
}

fn cmd_scenario(args: &[String]) -> i32 {
    let id = match require_system(args, 1) {
        Ok(id) => id,
        Err(c) => return c,
    };
    let seed = seed_of(args);
    let year = SystemYear::simulate(id, seed);
    let ci_mix = GramsCo2PerKwh::new(year.carbon.mean());
    let ewf_mix = LitersPerKilowattHour::new(year.ewf.mean());
    let wue = year.wue.mean();
    let pue = year.spec.pue.value();
    let wi_mix = wue + pue * ewf_mix.value();
    println!("{id}: energy-source what-ifs vs current mix");
    for s in [
        Scenario::AllCoal,
        Scenario::AllNuclear,
        Scenario::OtherRenewable,
        Scenario::WaterIntensiveRenewable,
    ] {
        let d_c = 100.0 * (ci_mix.value() - s.carbon_intensity(ci_mix).value()) / ci_mix.value();
        let wi_s = wue + pue * s.ewf(ewf_mix).value();
        let d_w = 100.0 * (wi_mix - wi_s) / wi_mix;
        println!(
            "  {:<40} carbon {:>+7.0}%  water {:>+7.0}%",
            s.label(),
            d_c,
            d_w
        );
    }
    0
}

fn cmd_sensitivity(args: &[String]) -> i32 {
    let id = match require_system(args, 1) {
        Ok(id) => id,
        Err(c) => return c,
    };
    let seed = seed_of(args);
    let report = FootprintModel::reference(id).annual_report(seed);
    println!("{id}: a 1% change in each parameter moves the total by…");
    println!("  operational water:");
    for e in operational_elasticities(&report) {
        println!("    {:<22} {:>+6.2}%", e.parameter, e.elasticity);
    }
    println!("  embodied water:");
    for e in embodied_elasticities(&report.embodied) {
        println!("    {:<22} {:>+6.2}%", e.parameter, e.elasticity);
    }
    0
}

fn cmd_lifecycle(args: &[String]) -> i32 {
    let id = match require_system(args, 1) {
        Ok(id) => id,
        Err(c) => return c,
    };
    let years: f64 = flag_value(args, "--years")
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);
    let seed = seed_of(args);
    let model = LifecycleModel::new(FootprintModel::reference(id).annual_report(seed));
    let report = match model.project(years) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    println!("{id}: {years}-year lifecycle");
    println!("  embodied            {:>10.2} ML", ml(report.embodied));
    println!("  operational (total) {:>10.2} ML", ml(report.operational));
    println!(
        "  embodied share      {:>10.1} %",
        100.0 * report.embodied_share()
    );
    println!(
        "  amortized intensity {:>10.3} L/kWh",
        report.amortized_intensity().value()
    );
    println!(
        "  break-even          {:>10.2} years of operation",
        model.break_even_years()
    );
    0
}

fn cmd_experiments(args: &[String]) -> i32 {
    let mut json = false;
    let mut all_flag = false;
    let mut ids: Vec<&str> = Vec::new();
    for arg in &args[1..] {
        match arg.as_str() {
            "--json" => json = true,
            "--all" => all_flag = true,
            flag if flag.starts_with("--") => {
                eprintln!("unknown experiments flag {flag:?}");
                return 2;
            }
            id => ids.push(id),
        }
    }

    if all_flag && !ids.is_empty() {
        eprintln!("pass either experiment ids or --all, not both");
        return 2;
    }
    let known = thirstyflops::experiments::ids();
    let unknown: Vec<&&str> = ids.iter().filter(|id| !known.contains(id)).collect();
    if !unknown.is_empty() {
        eprintln!("no matching experiment id: {unknown:?} (try one of {known:?})");
        return 2;
    }

    // One parallel sweep either way: the full batch for `--all` (or no
    // filter), or only the named artifacts — unselected figures are
    // never regenerated.
    let selected = if all_flag || ids.is_empty() {
        thirstyflops::experiments::all()
    } else {
        thirstyflops::experiments::select(&ids)
    };
    if json {
        match serde_json::to_string_pretty(&selected) {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("experiments failed to serialize: {e}");
                return 1;
            }
        }
        return 0;
    }
    for e in &selected {
        println!("## {} — {}\n", e.id, e.title);
        println!("{}", e.frame.to_markdown());
        for note in &e.notes {
            println!("> {note}");
        }
        println!();
    }
    0
}

fn cmd_systems() -> i32 {
    println!("cataloged systems:");
    for id in SystemId::ALL {
        let s = SystemSpec::reference(id);
        println!(
            "  {:<12} {:<28} {:>6} nodes  PUE {:<5} {}",
            id.to_string(),
            s.location,
            s.nodes,
            s.pue.value(),
            if s.has_gpus() { "GPU" } else { "CPU-only" }
        );
    }
    0
}
