//! `thirstyflops` — the command-line water-footprint estimation tool.
//!
//! ```text
//! thirstyflops footprint <system> [--seed N] [--json]   full annual footprint report
//! thirstyflops compare <a> <b> [--seed N] [--json]      two systems side by side (+ uncertainty overlap)
//! thirstyflops rank [--adjusted] [--seed N] [--json]    Water500-style ranking of all systems
//! thirstyflops scenario <system> [--seed N] [--json]    Fig. 14 energy-source what-ifs
//! thirstyflops scenario run <file> [--json]             evaluate a scenario spec (docs/SCENARIOS.md)
//! thirstyflops scenario sweep <file> [--top N] [--json] evaluate a cartesian sweep (batched; --top streams the best N rows)
//! thirstyflops sensitivity <system> [--seed N]          which parameters move the answer
//! thirstyflops lifecycle <system> --years N             break-even & amortized intensity
//! thirstyflops experiments [id ...] [--all] [--json]    regenerate paper tables/figures
//! thirstyflops systems [--json]                         list cataloged systems
//! thirstyflops serve [--addr HOST:PORT] [--workers N]   HTTP/JSON API (docs/SERVING.md)
//! thirstyflops loadgen --mix FILE [--requests N]        deterministic load replay + latency table
//! ```
//!
//! Every command accepts a global `--threads N` flag; without it the
//! worker count comes from `THIRSTYFLOPS_THREADS`, then
//! `RAYON_NUM_THREADS`, then the machine's available parallelism. Output
//! is bit-identical at every thread count (see `docs/CONCURRENCY.md`).
//! A global `--profile` flag prints a per-stage span profile to stderr
//! after any command, and `--trace-out FILE` exports the run's causal
//! span tree as Chrome `trace_event` JSON (see `docs/OBSERVABILITY.md`);
//! stdout is unchanged either way.
//!
//! `--json` output is shaped by `thirstyflops::serve::api` — the same
//! module the HTTP server renders through — so a CLI invocation and the
//! corresponding `GET /v1/...` response are byte-identical.

use thirstyflops::catalog::{SystemId, SystemSpec};
use thirstyflops::core::sensitivity::{embodied_elasticities, operational_elasticities};
use thirstyflops::core::{AnnualReport, FootprintModel, LifecycleModel};
use thirstyflops::loadgen;
use thirstyflops::serve::api;
use thirstyflops::serve::{Server, ServerConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = run(&args);
    std::process::exit(code);
}

fn run(raw_args: &[String]) -> i32 {
    // `--threads N`, `--no-sim-cache`, `--no-batch`, `--profile`,
    // `--trace-out FILE`, and `--trace-sample N` are global flags:
    // extract them wherever they appear (before or after the
    // subcommand) so positional parsing below never sees them.
    let (args, profile, trace_out) = match extract_global_flags(raw_args) {
        Ok(global) => {
            if let Some(n) = global.threads {
                // First-wins like rayon: the CLI flag runs before any
                // parallel work, so it takes precedence over the
                // environment defaults.
                let _ = rayon::ThreadPoolBuilder::new()
                    .num_threads(n)
                    .build_global();
            }
            if global.no_sim_cache {
                // The escape hatch around core::simcache — every
                // simulation recomputes from scratch. Output is
                // byte-identical either way (tests/simcache.rs).
                thirstyflops::core::simcache::set_enabled(false);
            }
            if global.no_batch {
                // Pin sweeps to the scalar reference path instead of the
                // batched K-lane kernel. Output is byte-identical either
                // way (tests/batch.rs, ./ci.sh batch-smoke).
                thirstyflops::core::batch::set_enabled(false);
            }
            if global.profile {
                // Span aggregation on the instrumented hot stages
                // (docs/OBSERVABILITY.md). Stdout stays byte-identical
                // either way; the report goes to stderr afterwards.
                thirstyflops::obs::span::set_enabled(true);
            }
            if global.profile || global.trace_out.is_some() {
                // The causal trace recorder rides along with either
                // sink: `--profile` wants the folded self-time rollup,
                // `--trace-out` the Chrome trace_event export. Stdout
                // stays byte-identical either way.
                thirstyflops::obs::trace::set_enabled(true);
            }
            if let Some(divisor) = global.trace_sample {
                thirstyflops::obs::trace::set_sample(divisor);
            }
            (global.args, global.profile, global.trace_out)
        }
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    // The CLI root trace context (trace id 0). Ordinal 0 always
    // satisfies the sampling rule (0 % N == 0), so `--trace-sample`
    // thins only `serve`'s per-request recording, never a CLI run's
    // own trace.
    let root_trace =
        thirstyflops::obs::trace::enabled().then(|| thirstyflops::obs::trace::begin(0, true));
    // `THIRSTYFLOPS_FAULTS=<plan.json|inline JSON>` arms the seeded
    // fault-injection sites in any command (a no-op when unset — the
    // sites cost one relaxed atomic load). `serve --fault-plan` and
    // `loadgen --chaos` are the explicit spellings (docs/ROBUSTNESS.md).
    if let Err(msg) = thirstyflops::faults::install_from_env() {
        eprintln!("THIRSTYFLOPS_FAULTS: {msg}");
        return 2;
    }
    let args = args.as_slice();
    let Some(cmd) = args.first() else {
        usage();
        return 2;
    };
    let code = match cmd.as_str() {
        "footprint" => cmd_footprint(args),
        "compare" => cmd_compare(args),
        "rank" => cmd_rank(args),
        "scenario" => cmd_scenario(args),
        "sensitivity" => cmd_sensitivity(args),
        "lifecycle" => cmd_lifecycle(args),
        "experiments" => cmd_experiments(args),
        "systems" => cmd_systems(args),
        "serve" => cmd_serve(args),
        "loadgen" => cmd_loadgen(args),
        "help" | "--help" | "-h" => {
            usage();
            0
        }
        other => {
            eprintln!("unknown command {other:?}\n");
            usage();
            2
        }
    };
    // Close the root context before snapshotting so its stack is not
    // live while the report/export reads the ring.
    drop(root_trace);
    if profile {
        // Stderr, after the command's own output: `--profile --json`
        // pipelines can parse stdout and the profile independently.
        if json_flag(args) {
            eprint!("{}", thirstyflops::obs::report::profile_json());
        } else {
            eprint!("{}", thirstyflops::obs::report::profile_table());
        }
    }
    if let Some(path) = trace_out {
        // Stderr for the confirmation: stdout stays byte-identical with
        // tracing on or off (the determinism contract,
        // docs/OBSERVABILITY.md).
        let json = thirstyflops::obs::trace::chrome_trace_json(None);
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("--trace-out {path}: {e}");
                if code == 0 {
                    return 1;
                }
            }
        }
    }
    code
}

fn usage() {
    eprintln!(
        "thirstyflops — water footprint modeling for HPC systems (SC'25 reproduction)\n\n\
         USAGE:\n  \
         thirstyflops footprint <system> [--seed N] [--json]\n  \
         thirstyflops compare <a> <b> [--seed N] [--json]\n  \
         thirstyflops rank [--adjusted] [--seed N] [--json]\n  \
         thirstyflops scenario <system> [--seed N] [--json]\n  \
         thirstyflops scenario run <file> [--json]\n  \
         thirstyflops scenario sweep <file> [--top N] [--json]\n  \
         thirstyflops sensitivity <system> [--seed N]\n  \
         thirstyflops lifecycle <system> --years N [--seed N]\n  \
         thirstyflops experiments [id ...] [--all] [--json]\n  \
         thirstyflops systems [--json]\n  \
         thirstyflops serve [--addr HOST:PORT] [--workers N]\n  \
         \u{20}                  [--cache-entries N] [--cache-ttl SECS] [--log]\n  \
         \u{20}                  [--log-json] [--max-connections N]\n  \
         \u{20}                  [--request-timeout MS] [--drain-timeout SECS]\n  \
         \u{20}                  [--fault-plan FILE]\n  \
         thirstyflops loadgen --mix FILE [--requests N | --rate R --duration S]\n  \
         \u{20}                  [--connections N] [--workers N] [--addr HOST:PORT]\n  \
         \u{20}                  [--one-shot] [--bench-json] [--json]\n  \
         \u{20}                  [--retries N] [--request-timeout MS] [--chaos PLAN]\n\n\
         Every command also accepts --threads N (worker threads for the\n\
         parallel sweeps; defaults to THIRSTYFLOPS_THREADS, then the CPU\n\
         count), --no-sim-cache (recompute every simulation instead of\n\
         using the memoized substrate — docs/PERFORMANCE.md), --no-batch\n\
         (evaluate sweeps on the scalar reference path instead of the\n\
         batched K-lane kernel), --profile (print a per-stage span\n\
         profile, the registered counters, and the folded-stack rollup\n\
         to stderr afterwards — docs/OBSERVABILITY.md; as JSON when\n\
         --json is set), --trace-out FILE (write the run's span tree as\n\
         Chrome trace_event JSON, viewable in about://tracing or\n\
         Perfetto), and --trace-sample N|1/N (record every N-th serve\n\
         request, keyed off the deterministic request ordinal). Results\n\
         are identical at every thread count, cached or not, batched or\n\
         not, profiled or traced or not, and --json output is\n\
         byte-identical to the HTTP API's (docs/SERVING.md).\n\n\
         Systems: marconi, fugaku, polaris, frontier, aurora, elcapitan"
    );
}

/// The global flags every subcommand accepts, split out of the raw
/// argument list.
struct GlobalFlags {
    /// Arguments with the global flags removed.
    args: Vec<String>,
    /// `--threads N` worker-count override.
    threads: Option<usize>,
    /// `--no-sim-cache`: disable the memoized simulation substrate.
    no_sim_cache: bool,
    /// `--no-batch`: evaluate sweeps on the scalar reference path.
    no_batch: bool,
    /// `--profile`: print the span/counter profile to stderr afterwards.
    profile: bool,
    /// `--trace-out FILE`: write the Chrome `trace_event` JSON export
    /// of the run's span tree to `FILE` afterwards.
    trace_out: Option<String>,
    /// `--trace-sample N` (or `1/N`): record every N-th request's spans
    /// in `serve`, keyed off the deterministic request ordinal.
    trace_sample: Option<u64>,
}

/// Splits the global `--threads N` / `--no-sim-cache` / `--no-batch` /
/// `--profile` / `--trace-out FILE` / `--trace-sample N` flags (any
/// position) out of the argument list.
fn extract_global_flags(args: &[String]) -> Result<GlobalFlags, String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut threads = None;
    let mut no_sim_cache = false;
    let mut no_batch = false;
    let mut profile = false;
    let mut trace_out = None;
    let mut trace_sample = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--no-sim-cache" {
            no_sim_cache = true;
            continue;
        }
        if arg == "--no-batch" {
            no_batch = true;
            continue;
        }
        if arg == "--profile" {
            profile = true;
            continue;
        }
        if arg == "--trace-out" {
            let Some(value) = iter.next() else {
                return Err("--trace-out needs a file path, e.g. --trace-out trace.json".into());
            };
            trace_out = Some(value.clone());
            continue;
        }
        if arg == "--trace-sample" {
            let Some(value) = iter.next() else {
                return Err("--trace-sample needs a value, e.g. --trace-sample 1/8".into());
            };
            // `1/8` and `8` both mean "every 8th request".
            let divisor = value.strip_prefix("1/").unwrap_or(value);
            match divisor.parse::<u64>() {
                Ok(n) if n > 0 => trace_sample = Some(n),
                _ => {
                    return Err(format!(
                        "--trace-sample expects N or 1/N with positive N, got {value:?}"
                    ))
                }
            }
            continue;
        }
        if arg != "--threads" {
            rest.push(arg.clone());
            continue;
        }
        let Some(value) = iter.next() else {
            return Err("--threads needs a value, e.g. --threads 4".into());
        };
        match value.parse::<usize>() {
            Ok(n) if n > 0 => threads = Some(n),
            _ => {
                return Err(format!(
                    "--threads expects a positive integer, got {value:?}"
                ))
            }
        }
    }
    Ok(GlobalFlags {
        args: rest,
        threads,
        no_sim_cache,
        no_batch,
        profile,
        trace_out,
        trace_sample,
    })
}

fn require_system(args: &[String], idx: usize) -> Result<SystemId, i32> {
    let Some(name) = args.get(idx) else {
        eprintln!("missing <system> argument");
        return Err(2);
    };
    // One alias table for CLI and server: SystemId::from_str in
    // crates/catalog.
    name.parse().map_err(|e| {
        eprintln!("{e} — try `thirstyflops systems`");
        2
    })
}

fn json_flag(args: &[String]) -> bool {
    args.iter().any(|a| a == "--json")
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn seed_of(args: &[String]) -> Result<u64, i32> {
    // Strict like the HTTP API's `?seed=` (router::Query::seed): a typo
    // must fail loudly, not silently serve the default year.
    match flag_value(args, "--seed") {
        None => Ok(2023),
        Some(raw) => raw.parse().map_err(|_| {
            eprintln!("--seed expects a non-negative integer, got {raw:?}");
            2
        }),
    }
}

fn ml(l: thirstyflops::units::Liters) -> f64 {
    l.value() / 1e6
}

fn cmd_footprint(args: &[String]) -> i32 {
    let id = match require_system(args, 1) {
        Ok(id) => id,
        Err(c) => return c,
    };
    let seed = match seed_of(args) {
        Ok(s) => s,
        Err(c) => return c,
    };
    if json_flag(args) {
        print!("{}", api::to_json(&api::footprint_payload(id, seed)));
        return 0;
    }
    let report = FootprintModel::reference(id).annual_report(seed);
    print_report(&report);
    0
}

fn print_report(r: &AnnualReport) {
    let spec = SystemSpec::reference(r.id);
    println!("{} — {} ({})", r.id, spec.location, spec.operator);
    println!("  embodied water      {:>12.2} ML", ml(r.embodied_total()));
    println!(
        "    processors {:.2} ML | memory+storage {:.2} ML | packaging {:.2} ML",
        ml(r.embodied.processors()),
        ml(r.embodied.memory_and_storage()),
        ml(r.embodied.packaging)
    );
    println!("  annual IT energy    {:>12.1} GWh", r.energy.value() / 1e6);
    println!(
        "  operational water   {:>12.2} ML  (direct {:.0}% / indirect {:.0}%)",
        ml(r.operational.total()),
        r.direct_share.percent(),
        100.0 - r.direct_share.percent()
    );
    println!(
        "  intensities          WUE {:.2} | EWF {:.2} | WI {:.2} | adjusted {:.2} L/kWh",
        r.mean_wue.value(),
        r.mean_ewf.value(),
        r.mean_wi.value(),
        r.adjusted_wi.value()
    );
}

fn cmd_compare(args: &[String]) -> i32 {
    let a = match require_system(args, 1) {
        Ok(id) => id,
        Err(c) => return c,
    };
    let b = match require_system(args, 2) {
        Ok(id) => id,
        Err(c) => return c,
    };
    let seed = match seed_of(args) {
        Ok(s) => s,
        Err(c) => return c,
    };
    if json_flag(args) {
        print!("{}", api::to_json(&api::compare_payload(a, b, seed)));
        return 0;
    }
    let ra = FootprintModel::reference(a).annual_report(seed);
    let rb = FootprintModel::reference(b).annual_report(seed);
    print_report(&ra);
    println!();
    print_report(&rb);

    // Uncertainty overlap: can we actually rank these two on operational
    // water, given the per-source EWF bands?
    let ia = api::operational_band(a, &ra);
    let ib = api::operational_band(b, &rb);
    println!();
    println!(
        "operational bands: {a} [{:.0}, {:.0}, {:.0}] ML vs {b} [{:.0}, {:.0}, {:.0}] ML",
        ia.lo / 1e6,
        ia.mid / 1e6,
        ia.hi / 1e6,
        ib.lo / 1e6,
        ib.mid / 1e6,
        ib.hi / 1e6
    );
    if ia.overlaps(&ib) {
        println!("bands OVERLAP — the ranking is not robust to EWF/WUE uncertainty");
    } else {
        println!("bands are disjoint — the ranking survives the factor uncertainty");
    }
    0
}

fn cmd_rank(args: &[String]) -> i32 {
    let adjusted = args.iter().any(|a| a == "--adjusted");
    let seed = match seed_of(args) {
        Ok(s) => s,
        Err(c) => return c,
    };
    // Text and JSON render the same payload — one ranking logic.
    let payload = api::rank_payload(adjusted, seed);
    if json_flag(args) {
        print!("{}", api::to_json(&payload));
        return 0;
    }
    if adjusted {
        println!("rank by scarcity-adjusted water intensity:");
        for e in &payload.entries {
            println!(
                "  {}. {:<12} adjusted WI {:>6.2} (raw {:.2}) L/kWh",
                e.rank, e.name, e.adjusted_wi, e.mean_wi
            );
        }
    } else {
        println!("rank by annual operational water:");
        for e in &payload.entries {
            println!(
                "  {}. {:<12} {:>9.1} ML  ({:.1} GWh, WI {:.2})",
                e.rank, e.name, e.operational_ml, e.energy_gwh, e.mean_wi
            );
        }
    }
    0
}

fn cmd_scenario(args: &[String]) -> i32 {
    // `scenario run <file>` / `scenario sweep <file>` drive the
    // declarative engine; any other first argument is the original
    // positional form — the built-in Fig. 14 what-if spec.
    match args.get(1).map(String::as_str) {
        Some("run") => return cmd_scenario_run(args),
        Some("sweep") => return cmd_scenario_sweep(args),
        _ => {}
    }
    let id = match require_system(args, 1) {
        Ok(id) => id,
        Err(c) => return c,
    };
    let seed = match seed_of(args) {
        Ok(s) => s,
        Err(c) => return c,
    };
    // Text and JSON render the same payload — one what-if computation.
    let payload = api::scenario_payload(id, seed);
    if json_flag(args) {
        print!("{}", api::to_json(&payload));
        return 0;
    }
    println!("{id}: energy-source what-ifs vs current mix");
    for row in &payload.scenarios {
        println!(
            "  {:<40} carbon {:>+7.0}%  water {:>+7.0}%",
            row.scenario, row.carbon_delta_percent, row.water_delta_percent
        );
    }
    0
}

/// Reads the spec file of `scenario run <file>` / `scenario sweep <file>`.
fn read_spec_file(args: &[String]) -> Result<String, i32> {
    let Some(path) = args.get(2).filter(|a| !a.starts_with("--")) else {
        eprintln!("missing <file> argument — a scenario spec JSON (docs/SCENARIOS.md)");
        return Err(2);
    };
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read {path:?}: {e}");
        2
    })
}

fn cmd_scenario_run(args: &[String]) -> i32 {
    let text = match read_spec_file(args) {
        Ok(t) => t,
        Err(c) => return c,
    };
    let spec = match thirstyflops::scenario::ScenarioSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let outcome = match api::scenario_run_payload(&spec) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    if json_flag(args) {
        // Byte-identical to POST /v1/scenarios/run with this spec.
        print!("{}", api::to_json(&outcome));
        return 0;
    }
    println!(
        "{} — base {} (seed {}, spec {})",
        outcome.name, outcome.base, outcome.seed, outcome.fingerprint
    );
    print_deltas("  ", &outcome.scenario, &outcome.deltas);
    if let Some(lc) = &outcome.scenario.lifecycle {
        println!(
            "  lifecycle ({:.0}y)     total {:>10.2} ML  (upgrades {:.2} ML, embodied share \
             {:.1}%, amortized WI {:.3} L/kWh)",
            lc.lifetime_years,
            lc.lifetime_total_l / 1e6,
            lc.upgrade_embodied_l / 1e6,
            100.0 * lc.embodied_share,
            lc.amortized_wi_l_per_kwh
        );
    }
    0
}

fn print_deltas(
    indent: &str,
    scenario: &thirstyflops::scenario::ScenarioMetrics,
    d: &thirstyflops::scenario::ScenarioDeltas,
) {
    println!(
        "{indent}operational water   {:>10.2} ML  ({:>+6.1}% vs baseline)",
        scenario.operational_water_l / 1e6,
        d.operational_water_pct
    );
    println!(
        "{indent}scarcity-adjusted   {:>10.2} ML  ({:>+6.1}%)",
        scenario.scarcity_adjusted_water_l / 1e6,
        d.scarcity_adjusted_water_pct
    );
    println!(
        "{indent}carbon              {:>10.1} t   ({:>+6.1}%)",
        scenario.carbon_kg / 1e3,
        d.carbon_pct
    );
    println!(
        "{indent}water bill          {:>10.0} USD ({:>+6.1}%)",
        scenario.water_cost_usd, d.water_cost_pct
    );
}

fn cmd_scenario_sweep(args: &[String]) -> i32 {
    let text = match read_spec_file(args) {
        Ok(t) => t,
        Err(c) => return c,
    };
    // `--top N` streams the sweep: only the best N rows (by the spec's
    // `rank_by`, default operational water) are kept, and the expansion
    // ceiling rises to the streaming limit. Applied before the ceiling
    // check, exactly like an in-file `"top_n"`.
    let top = match flag_value(args, "--top") {
        None => None,
        Some(raw) => match raw.parse::<u64>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                eprintln!("--top expects a positive integer, got {raw:?}");
                return 2;
            }
        },
    };
    let sweep = match thirstyflops::scenario::SweepSpec::from_json_with_top(&text, top) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let report = match api::scenario_sweep_payload(&sweep) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    if json_flag(args) {
        // Byte-identical to POST /v1/scenarios/sweep with this spec.
        print!("{}", api::to_json(&report));
        return 0;
    }
    println!(
        "{} — base {} (seed {}, {} scenarios, spec {})",
        report.name, report.base, report.seed, report.scenario_count, report.fingerprint
    );
    if let (Some(n), Some(rank)) = (report.top_n, report.rank_by.as_deref()) {
        println!(
            "  streaming top-{n}: best {} of {} rows by {rank} (ascending)",
            report.rows.len(),
            report.scenario_count
        );
    }
    println!(
        "  baseline: operational {:.2} ML, adjusted {:.2} ML, carbon {:.1} t, bill {:.0} USD",
        report.baseline.operational_water_l / 1e6,
        report.baseline.scarcity_adjusted_water_l / 1e6,
        report.baseline.carbon_kg / 1e3,
        report.baseline.water_cost_usd
    );
    for row in &report.rows {
        println!(
            "  {:<60} water {:>+7.1}%  adjusted {:>+7.1}%  carbon {:>+7.1}%  bill {:>+7.1}%",
            row.name,
            row.deltas.operational_water_pct,
            row.deltas.scarcity_adjusted_water_pct,
            row.deltas.carbon_pct,
            row.deltas.water_cost_pct
        );
    }
    0
}

fn cmd_sensitivity(args: &[String]) -> i32 {
    let id = match require_system(args, 1) {
        Ok(id) => id,
        Err(c) => return c,
    };
    let seed = match seed_of(args) {
        Ok(s) => s,
        Err(c) => return c,
    };
    let report = FootprintModel::reference(id).annual_report(seed);
    println!("{id}: a 1% change in each parameter moves the total by…");
    println!("  operational water:");
    for e in operational_elasticities(&report) {
        println!("    {:<22} {:>+6.2}%", e.parameter, e.elasticity);
    }
    println!("  embodied water:");
    for e in embodied_elasticities(&report.embodied) {
        println!("    {:<22} {:>+6.2}%", e.parameter, e.elasticity);
    }
    0
}

fn cmd_lifecycle(args: &[String]) -> i32 {
    let id = match require_system(args, 1) {
        Ok(id) => id,
        Err(c) => return c,
    };
    let years: f64 = flag_value(args, "--years")
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);
    let seed = match seed_of(args) {
        Ok(s) => s,
        Err(c) => return c,
    };
    let model = LifecycleModel::new(FootprintModel::reference(id).annual_report(seed));
    let report = match model.project(years) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    println!("{id}: {years}-year lifecycle");
    println!("  embodied            {:>10.2} ML", ml(report.embodied));
    println!("  operational (total) {:>10.2} ML", ml(report.operational));
    println!(
        "  embodied share      {:>10.1} %",
        100.0 * report.embodied_share()
    );
    println!(
        "  amortized intensity {:>10.3} L/kWh",
        report.amortized_intensity().value()
    );
    println!(
        "  break-even          {:>10.2} years of operation",
        model.break_even_years()
    );
    0
}

fn cmd_experiments(args: &[String]) -> i32 {
    let mut json = false;
    let mut all_flag = false;
    let mut ids: Vec<&str> = Vec::new();
    for arg in &args[1..] {
        match arg.as_str() {
            "--json" => json = true,
            "--all" => all_flag = true,
            flag if flag.starts_with("--") => {
                eprintln!("unknown experiments flag {flag:?}");
                return 2;
            }
            id => ids.push(id),
        }
    }

    if all_flag && !ids.is_empty() {
        eprintln!("pass either experiment ids or --all, not both");
        return 2;
    }
    let known = thirstyflops::experiments::ids();
    let unknown: Vec<&&str> = ids.iter().filter(|id| !known.contains(id)).collect();
    if !unknown.is_empty() {
        eprintln!("no matching experiment id: {unknown:?} (try one of {known:?})");
        return 2;
    }

    // One parallel sweep either way: the full batch for `--all` (or no
    // filter), or only the named artifacts — unselected figures are
    // never regenerated.
    let selected = if all_flag || ids.is_empty() {
        thirstyflops::experiments::all()
    } else {
        thirstyflops::experiments::select(&ids)
    };
    if json {
        // Same canonical rendering as `GET /v1/experiments/{id}`.
        print!("{}", api::to_json(&selected));
        return 0;
    }
    for e in &selected {
        println!("## {} — {}\n", e.id, e.title);
        println!("{}", e.frame.to_markdown());
        for note in &e.notes {
            println!("> {note}");
        }
        println!();
    }
    0
}

fn cmd_systems(args: &[String]) -> i32 {
    if json_flag(args) {
        print!("{}", api::to_json(&api::systems_payload()));
        return 0;
    }
    println!("cataloged systems:");
    for id in SystemId::ALL {
        let s = SystemSpec::reference(id);
        println!(
            "  {:<12} {:<28} {:>6} nodes  PUE {:<5} {}",
            id.to_string(),
            s.location,
            s.nodes,
            s.pue.value(),
            if s.has_gpus() { "GPU" } else { "CPU-only" }
        );
    }
    0
}

fn cmd_serve(args: &[String]) -> i32 {
    let mut config = ServerConfig::default();
    if let Some(addr) = flag_value(args, "--addr") {
        config.addr = addr;
    }
    if let Some(raw) = flag_value(args, "--workers") {
        match raw.parse::<usize>() {
            Ok(n) if n > 0 => config.workers = n,
            _ => {
                eprintln!("--workers expects a positive integer, got {raw:?}");
                return 2;
            }
        }
    }
    if let Some(raw) = flag_value(args, "--cache-entries") {
        match raw.parse::<usize>() {
            // 0 = unbounded, any positive N = LRU bound.
            Ok(n) => config.cache_entries = n,
            _ => {
                eprintln!("--cache-entries expects a non-negative integer, got {raw:?}");
                return 2;
            }
        }
    }
    if let Some(raw) = flag_value(args, "--cache-ttl") {
        match raw.parse::<u64>() {
            Ok(0) => config.cache_ttl = None,
            Ok(secs) => config.cache_ttl = Some(std::time::Duration::from_secs(secs)),
            _ => {
                eprintln!("--cache-ttl expects a whole number of seconds, got {raw:?}");
                return 2;
            }
        }
    }
    if let Some(raw) = flag_value(args, "--max-connections") {
        match raw.parse::<usize>() {
            // 0 = unlimited, any positive N sheds the (N+1)-th
            // concurrent connection with a JSON 503.
            Ok(n) => config.max_connections = n,
            _ => {
                eprintln!("--max-connections expects a non-negative integer, got {raw:?}");
                return 2;
            }
        }
    }
    if args.iter().any(|a| a == "--log") {
        config.log_requests = true;
    }
    if args.iter().any(|a| a == "--log-json") {
        config.log_json = true;
    }
    // The serving path always runs with the trace recorder on: the ring
    // is bounded, recording is lock-minimal, and `GET /v1/trace` is only
    // useful when spans actually land. `--trace-sample 1/N` (global
    // flag) thins which requests record; ids echo on every response
    // regardless.
    thirstyflops::obs::trace::set_enabled(true);
    if let Some(raw) = flag_value(args, "--request-timeout") {
        match raw.parse::<u64>() {
            // 0 = no deadline (the default): a request may compute as
            // long as it needs. N > 0 converts any 200 still unwritten
            // after N ms into a JSON 504 with Retry-After.
            Ok(0) => config.limits.request_timeout = None,
            Ok(ms) => config.limits.request_timeout = Some(std::time::Duration::from_millis(ms)),
            _ => {
                eprintln!("--request-timeout expects a whole number of milliseconds, got {raw:?}");
                return 2;
            }
        }
    }
    let drain_timeout = match flag_value(args, "--drain-timeout") {
        None => None,
        Some(raw) => match raw.parse::<u64>() {
            Ok(secs) if secs > 0 => Some(std::time::Duration::from_secs(secs)),
            _ => {
                eprintln!("--drain-timeout expects a positive number of seconds, got {raw:?}");
                return 2;
            }
        },
    };
    let faults = match flag_value(args, "--fault-plan") {
        None => thirstyflops::faults::global(),
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return 2;
                }
            };
            let plan = match thirstyflops::faults::FaultPlan::from_json(&text) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return 2;
                }
            };
            let injector = std::sync::Arc::new(thirstyflops::faults::FaultInjector::mirrored(plan));
            // Install globally so the simcache-poison site (which lives
            // in core, below the serving layer) sees the same plan.
            thirstyflops::faults::install(std::sync::Arc::clone(&injector));
            Some(injector)
        }
    };
    const SERVE_FLAGS: [&str; 10] = [
        "--addr",
        "--workers",
        "--cache-entries",
        "--cache-ttl",
        "--log",
        "--log-json",
        "--max-connections",
        "--request-timeout",
        "--drain-timeout",
        "--fault-plan",
    ];
    for arg in &args[1..] {
        if arg.starts_with("--") && !SERVE_FLAGS.contains(&arg.as_str()) {
            eprintln!("unknown serve flag {arg:?}");
            return 2;
        }
    }
    let server = match Server::bind_with_faults(&config, faults) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", config.addr);
            return 1;
        }
    };
    // One parseable line so scripts (and the serve-smoke CI step) can
    // discover an ephemeral port; then serve until the process is killed.
    println!(
        "listening on http://{} ({} workers) — endpoints in docs/SERVING.md",
        server.local_addr(),
        server.workers()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match drain_timeout {
        None => {
            server.wait();
            0
        }
        Some(timeout) => {
            // SIGTERM-style lifecycle without signal handling (the
            // workspace is std-only): stdin EOF is the drain trigger.
            // An orchestrator holds stdin open while the server should
            // run and closes it (or exits) to start the drain; /readyz
            // flips to 503 immediately, in-flight responses complete,
            // and the process exits once drained or at the timeout.
            let mut sink = String::new();
            while matches!(std::io::stdin().read_line(&mut sink), Ok(n) if n > 0) {
                sink.clear();
            }
            eprintln!("stdin closed — draining (timeout {}s)", timeout.as_secs());
            if server.drain(timeout) {
                eprintln!("drained cleanly");
                0
            } else {
                eprintln!("drain timed out with connections still in flight");
                1
            }
        }
    }
}

fn cmd_loadgen(args: &[String]) -> i32 {
    const LOADGEN_FLAGS: [&str; 13] = [
        "--mix",
        "--requests",
        "--duration",
        "--rate",
        "--connections",
        "--workers",
        "--addr",
        "--one-shot",
        "--bench-json",
        "--json",
        "--chaos",
        "--retries",
        "--request-timeout",
    ];
    for arg in &args[1..] {
        if arg.starts_with("--") && !LOADGEN_FLAGS.contains(&arg.as_str()) {
            eprintln!("unknown loadgen flag {arg:?}");
            return 2;
        }
    }
    let Some(mix_path) = flag_value(args, "--mix") else {
        eprintln!("loadgen needs --mix FILE (recorded mixes live in examples/loadmix/)");
        return 2;
    };
    let text = match std::fs::read_to_string(&mix_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {mix_path}: {e}");
            return 2;
        }
    };
    let mix = match loadgen::MixSpec::from_json(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{mix_path}: {e}");
            return 2;
        }
    };

    let mut config = loadgen::RunConfig::default();
    if let Some(raw) = flag_value(args, "--connections") {
        match raw.parse::<usize>() {
            Ok(n) if n > 0 => config.connections = n,
            _ => {
                eprintln!("--connections expects a positive integer, got {raw:?}");
                return 2;
            }
        }
    }
    if let Some(raw) = flag_value(args, "--workers") {
        match raw.parse::<usize>() {
            Ok(n) if n > 0 => config.workers = n,
            _ => {
                eprintln!("--workers expects a positive integer, got {raw:?}");
                return 2;
            }
        }
    }
    if let Some(raw) = flag_value(args, "--rate") {
        match raw.parse::<f64>() {
            Ok(r) if r > 0.0 && r.is_finite() => config.rate = r,
            _ => {
                eprintln!("--rate expects a positive requests/second, got {raw:?}");
                return 2;
            }
        }
    }
    if let Some(addr) = flag_value(args, "--addr") {
        config.addr = Some(addr);
    }
    if let Some(raw) = flag_value(args, "--retries") {
        match raw.parse::<u32>() {
            Ok(n) => config.retries = n,
            _ => {
                eprintln!("--retries expects a non-negative integer, got {raw:?}");
                return 2;
            }
        }
    }
    if let Some(raw) = flag_value(args, "--request-timeout") {
        match raw.parse::<u64>() {
            Ok(0) => config.request_timeout = None,
            Ok(ms) => config.request_timeout = Some(std::time::Duration::from_millis(ms)),
            _ => {
                eprintln!("--request-timeout expects a whole number of milliseconds, got {raw:?}");
                return 2;
            }
        }
    }
    // `--chaos plan.json`: install the fault plan process-globally (the
    // in-process server and the core simcache both pick it up), replay
    // the mix under it, and verify the fail-closed invariant — every
    // 200 byte-identical, every error a deliberate, well-formed 5xx.
    if let Some(plan_path) = flag_value(args, "--chaos") {
        if config.addr.is_some() {
            eprintln!(
                "--chaos needs the in-process server (the plan cannot be installed into a \
                 remote --addr target)"
            );
            return 2;
        }
        let text = match std::fs::read_to_string(&plan_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {plan_path}: {e}");
                return 2;
            }
        };
        let plan = match thirstyflops::faults::FaultPlan::from_json(&text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{plan_path}: {e}");
                return 2;
            }
        };
        thirstyflops::faults::install(std::sync::Arc::new(
            thirstyflops::faults::FaultInjector::mirrored(plan),
        ));
        config.chaos = true;
    }
    config.keep_alive = !args.iter().any(|a| a == "--one-shot");
    // The plan length: explicit `--requests N`, or `--rate R --duration S`
    // converted up front so the replay is a fixed, deterministic count
    // either way (docs/CONCURRENCY.md).
    config.requests = match (
        flag_value(args, "--requests"),
        flag_value(args, "--duration"),
    ) {
        (Some(raw), _) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--requests expects a positive integer, got {raw:?}");
                return 2;
            }
        },
        (None, Some(raw)) => {
            if config.rate <= 0.0 {
                eprintln!("--duration needs --rate R to fix the request count");
                return 2;
            }
            match raw.parse::<f64>() {
                Ok(s) if s > 0.0 && s.is_finite() => ((config.rate * s).round() as usize).max(1),
                _ => {
                    eprintln!("--duration expects a positive number of seconds, got {raw:?}");
                    return 2;
                }
            }
        }
        (None, None) => config.requests,
    };

    if config.chaos {
        return match loadgen::run_with_stats(&mix, &config) {
            Ok((report, stats)) => {
                // Fail closed: any byte mismatch or unrecovered request
                // is a contract violation (docs/ROBUSTNESS.md).
                let failed = report.mismatches > 0 || report.errors > 0 || stats.unrecovered > 0;
                if json_flag(args) {
                    use serde::Serialize as _;
                    let combined = serde::Value::Object(vec![
                        ("load".to_string(), report.to_value()),
                        ("chaos".to_string(), stats.to_value()),
                    ]);
                    print!("{}", api::to_json(&combined));
                } else {
                    print!("{}", loadgen::human_table(&report));
                    print!("{}", loadgen::chaos_table(&stats));
                }
                if args.iter().any(|a| a == "--bench-json") {
                    let path = std::path::Path::new("BENCH_serve.json");
                    match loadgen::report::write_chaos_bench(path, &stats) {
                        // Stderr: chaos `--json --bench-json` pipelines
                        // parse stdout as one JSON document.
                        Ok(_) => eprintln!("wrote {}", path.display()),
                        Err(e) => {
                            eprintln!("loadgen: {e}");
                            return 1;
                        }
                    }
                }
                i32::from(failed)
            }
            Err(e) => {
                eprintln!("loadgen: {e}");
                1
            }
        };
    }

    if args.iter().any(|a| a == "--bench-json") {
        // The tracked trajectory: replay the mix one-shot (the recorded
        // baseline discipline) and keep-alive (current), then write
        // BENCH_serve.json with the baseline preserved verbatim.
        let mut failed = false;
        let mut reports = Vec::new();
        for keep_alive in [false, true] {
            let pass = loadgen::RunConfig {
                keep_alive,
                ..config.clone()
            };
            match loadgen::run(&mix, &pass) {
                Ok(report) => {
                    print!("{}", loadgen::human_table(&report));
                    failed |= report.mismatches > 0 || report.errors > 0;
                    reports.push(report);
                }
                Err(e) => {
                    eprintln!("loadgen: {e}");
                    return 1;
                }
            }
        }
        let path = std::path::Path::new("BENCH_serve.json");
        match loadgen::write_bench_json(path, &reports[0], &reports[1]) {
            Ok(_) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("loadgen: {e}");
                return 1;
            }
        }
        return i32::from(failed);
    }

    match loadgen::run(&mix, &config) {
        Ok(report) => {
            if json_flag(args) {
                print!("{}", api::to_json(&report));
            } else {
                print!("{}", loadgen::human_table(&report));
            }
            // Zero mismatches is the contract; a nonzero exit makes CI
            // and scripts fail loudly on any drift.
            i32::from(report.mismatches > 0 || report.errors > 0)
        }
        Err(e) => {
            eprintln!("loadgen: {e}");
            1
        }
    }
}
