//! # ThirstyFLOPS
//!
//! A comprehensive water-footprint modeling and analysis framework for HPC
//! systems — a Rust reproduction of *"ThirstyFLOPS: Water Footprint Modeling
//! and Analysis Toward Sustainable HPC Systems"* (SC '25).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`units`] — typed physical quantities (L, kWh, L/kWh, gCO₂/kWh, …);
//! * [`timeseries`] — hourly/monthly series, resampling, stats, correlation;
//! * [`weather`] — synthetic site climates, Stull wet-bulb, WUE model;
//! * [`grid`] — energy sources, regional mixes, EWF/carbon-intensity series,
//!   power-plant fleets, what-if scenarios;
//! * [`catalog`] — the hardware and system catalog (Marconi100, Fugaku,
//!   Polaris, Frontier, and extension systems) plus WSI data;
//! * [`workload`] — job-trace generation, cluster/power simulation, and a
//!   miniAMR-like adaptive-mesh stencil kernel;
//! * [`core`] — the ThirstyFLOPS models themselves: embodied (Eq. 2–5),
//!   operational (Eq. 6–7), water intensity (Eq. 8), scarcity adjustment
//!   (Eq. 9), and water withdrawal (Table 3);
//! * [`carbon`] — the ACT-style carbon comparator;
//! * [`scenario`] — the declarative scenario engine: spec files,
//!   composable overrides, A-vs-B comparisons, cartesian sweeps;
//! * [`scheduler`] — water-aware operations: start-time ranking,
//!   multi-objective scheduling, geo load balancing, water capping;
//! * [`experiments`] — one regenerator per paper figure/table;
//! * [`serve`] — the std-only HTTP/JSON serving layer with its
//!   deterministic result cache and keep-alive connections
//!   (`thirstyflops serve`);
//! * [`loadgen`] — the deterministic load-test harness that replays
//!   recorded request mixes against the server and verifies every
//!   response body (`thirstyflops loadgen`);
//! * [`faults`] — seeded, deterministic fault injection for chaos
//!   replays against the hardened serving path (`serve --fault-plan`,
//!   `loadgen --chaos`, `docs/ROBUSTNESS.md`);
//! * [`obs`] — the workspace-wide observability layer: the global
//!   metrics registry, deterministic span profiling (`--profile`), and
//!   the Prometheus text exposition behind `GET /v1/metrics`
//!   (`docs/OBSERVABILITY.md`).
//!
//! ## Quickstart
//!
//! ```
//! use thirstyflops::catalog::SystemId;
//! use thirstyflops::core::FootprintModel;
//!
//! let model = FootprintModel::reference(SystemId::Polaris);
//! let report = model.annual_report(2023);
//! assert!(report.operational_total().value() > 0.0);
//! assert!(report.embodied_total().value() > 0.0);
//! // Eq. 8: water intensity decomposes into direct + indirect parts.
//! assert!(report.mean_wi.value() > report.mean_wue.value());
//! ```

pub use thirstyflops_carbon as carbon;
pub use thirstyflops_catalog as catalog;
pub use thirstyflops_core as core;
pub use thirstyflops_experiments as experiments;
pub use thirstyflops_faults as faults;
pub use thirstyflops_grid as grid;
pub use thirstyflops_loadgen as loadgen;
pub use thirstyflops_obs as obs;
pub use thirstyflops_scenario as scenario;
pub use thirstyflops_scheduler as scheduler;
pub use thirstyflops_serve as serve;
pub use thirstyflops_timeseries as timeseries;
pub use thirstyflops_units as units;
pub use thirstyflops_weather as weather;
pub use thirstyflops_workload as workload;
