//! Integration tests asserting every paper figure/table's *shape* claims
//! against the regenerated artifacts (absolute values are simulator-
//! dependent; the shapes — who wins, by roughly what factor, where
//! crossovers fall — are what the reproduction must preserve).

use thirstyflops::experiments as exp;
use thirstyflops::timeseries::stats;

fn find_row(e: &exp::Experiment, col: &str, value: &str) -> usize {
    e.frame
        .texts(col)
        .unwrap()
        .iter()
        .position(|s| s == value)
        .unwrap_or_else(|| panic!("{value} not found in {}", e.id))
}

#[test]
fn fig01_hpc_power_is_not_confined_to_water_rich_states() {
    let e = exp::fig01();
    let wsi = e.frame.numbers("water_scarcity_index").unwrap();
    let power = e.frame.numbers("hpc_power_mw").unwrap();
    let total: f64 = power.iter().sum();
    let stressed: f64 = power
        .iter()
        .zip(wsi)
        .filter(|(_, &w)| w >= 0.5)
        .map(|(p, _)| p)
        .sum();
    assert!(
        stressed / total > 0.25,
        "stressed-state power share {}",
        stressed / total
    );
}

#[test]
fn table01_reproduces_paper_rows() {
    let e = exp::table01();
    assert_eq!(e.frame.n_rows(), 4);
    let years = e.frame.numbers("start_year").unwrap();
    assert_eq!(years, &[2019.0, 2020.0, 2021.0, 2021.0]);
}

#[test]
fn table02_checklist_covers_embodied_and_operational() {
    let e = exp::table02();
    let params = e.frame.texts("parameter").unwrap();
    for required in [
        "N_IC", "A_die", "Yield", "UPW", "PCW", "WPA", "WPC", "E", "PUE", "mix%",
    ] {
        assert!(
            params.iter().any(|p| p == required),
            "missing parameter {required}"
        );
    }
}

#[test]
fn fig03_gpu_rich_systems_are_gpu_dominated() {
    let e = exp::fig03();
    let gpu = e.frame.numbers("gpu_pct").unwrap();
    // Marconi, Polaris: GPU share is the largest single component.
    for idx in [0usize, 2] {
        for col in ["cpu_pct", "dram_pct", "hdd_pct", "ssd_pct"] {
            assert!(
                gpu[idx] > e.frame.numbers(col).unwrap()[idx],
                "system {idx}: GPU not dominant vs {col}"
            );
        }
    }
    // Polaris ~67% in the paper; demand at least 55% here.
    assert!(gpu[2] > 55.0, "Polaris GPU share {}", gpu[2]);
    // Fugaku has no GPU.
    assert_eq!(gpu[1], 0.0);
}

#[test]
fn fig03_frontier_memory_storage_exceed_processors() {
    let e = exp::fig03();
    let i = find_row(&e, "system", "Frontier");
    let procs = e.frame.numbers("cpu_pct").unwrap()[i] + e.frame.numbers("gpu_pct").unwrap()[i];
    let mem = e.frame.numbers("dram_pct").unwrap()[i]
        + e.frame.numbers("hdd_pct").unwrap()[i]
        + e.frame.numbers("ssd_pct").unwrap()[i];
    assert!(
        mem > procs,
        "Frontier mem+storage {mem} vs processors {procs}"
    );
}

#[test]
fn fig04_low_intensity_case_expands_embodied_dominance() {
    let e = exp::fig04();
    let fracs = e.frame.numbers("embodied_dominant_area_fraction").unwrap();
    assert!(
        fracs[1] > 1.5 * fracs[0],
        "case b {} vs case a {}",
        fracs[1],
        fracs[0]
    );
}

#[test]
fn fig05_green_is_not_water_friendly() {
    let e = exp::fig05();
    let hydro = find_row(&e, "source", "Hydro");
    let coal = find_row(&e, "source", "Coal");
    let ewf = e.frame.numbers("ewf_median").unwrap();
    let ci = e.frame.numbers("carbon_median").unwrap();
    // Hydro: max EWF, near-min carbon. Coal: max carbon.
    assert!(ewf[hydro] >= ewf.iter().cloned().fold(0.0, f64::max) - 1e-9);
    assert!(ci[hydro] < 50.0);
    assert!(ci[coal] >= ci.iter().cloned().fold(0.0, f64::max) - 1e-9);
}

#[test]
fn fig06_marconi_widest_ewf_polaris_lowest() {
    let e = exp::fig06();
    let min = e.frame.numbers("ewf_min").unwrap();
    let max = e.frame.numbers("ewf_max").unwrap();
    let ranges: Vec<f64> = min.iter().zip(max).map(|(lo, hi)| hi - lo).collect();
    for i in 1..4 {
        assert!(ranges[0] > ranges[i], "Marconi range {:?}", ranges);
    }
    // Marconi peak near the paper's 10.59 L/kWh.
    assert!(max[0] > 8.0 && max[0] < 14.0, "Marconi EWF max {}", max[0]);
    // Polaris floor near the paper's 1.52 L/kWh.
    assert!(min[2] > 1.0 && min[2] < 2.5, "Polaris EWF min {}", min[2]);
    // Polaris has the lowest median EWF.
    let med = e.frame.numbers("ewf_median").unwrap();
    for i in [0usize, 1, 3] {
        assert!(med[2] < med[i]);
    }
}

#[test]
fn fig07_direct_indirect_split_matches_paper_bands() {
    let e = exp::fig07();
    let direct = e.frame.numbers("direct_pct").unwrap();
    let indirect = e.frame.numbers("indirect_pct").unwrap();
    // Paper: Marconi 37/63, Fugaku 58/42, Polaris 53/47, Frontier 54/46.
    let expected = [37.0, 58.0, 53.0, 54.0];
    for i in 0..4 {
        assert!(
            (direct[i] - expected[i]).abs() < 6.0,
            "system {i}: direct {} expected ≈{}",
            direct[i],
            expected[i]
        );
        assert!((direct[i] + indirect[i] - 100.0).abs() < 1e-6);
        assert!(indirect[i] > 40.0, "indirect share must stay material");
    }
}

#[test]
fn fig08_scarcity_flips_the_ranking() {
    let e = exp::fig08();
    let raw = e.frame.numbers("water_intensity_l_per_kwh").unwrap();
    let adj = e
        .frame
        .numbers("adjusted_water_intensity_l_per_kwh")
        .unwrap();
    let polaris = find_row(&e, "system", "Polaris");
    // Polaris: lowest raw WI.
    for i in 0..4 {
        if i != polaris {
            assert!(raw[polaris] < raw[i]);
        }
    }
    // Polaris: highest adjusted WI.
    for i in 0..4 {
        if i != polaris {
            assert!(adj[polaris] > adj[i]);
        }
    }
}

#[test]
fn fig09_indirect_wsi_is_a_fleet_property() {
    let e = exp::fig09();
    let direct = e.frame.numbers("direct_wsi").unwrap();
    let indirect = e.frame.numbers("indirect_wsi").unwrap();
    let spread = e.frame.numbers("plant_wsi_spread").unwrap();
    for i in 0..4 {
        assert!(indirect[i] > 0.0);
        assert!(spread[i] > 0.0, "plant WSIs should differ");
    }
    // At least one system's indirect deviates visibly from its direct.
    assert!(direct
        .iter()
        .zip(indirect)
        .any(|(d, i)| (d - i).abs() > 0.005));
}

#[test]
fn fig10_county_wsi_varies_significantly() {
    let e = exp::fig10();
    let spread = e.frame.numbers("relative_spread").unwrap();
    assert!(spread[0] > 0.3, "Illinois spread {}", spread[0]);
    assert!(spread[1] > 0.3, "Tennessee spread {}", spread[1]);
    // Illinois is scarcer than Tennessee on average.
    let means = e.frame.numbers("wsi_mean").unwrap();
    assert!(means[0] > means[1]);
}

#[test]
fn fig11_power_and_water_correlate_imperfectly() {
    let e = exp::fig11();
    let power = e.frame.numbers("power_normalized").unwrap();
    let water = e.frame.numbers("water_normalized").unwrap();
    for sys in 0..4 {
        let p = &power[sys * 12..(sys + 1) * 12];
        let w = &water[sys * 12..(sys + 1) * 12];
        let corr = stats::pearson(p, w).unwrap();
        assert!(corr < 0.995, "system {sys}: water ≡ power (corr {corr})");
        assert!(
            corr > -0.9,
            "system {sys}: wildly anti-correlated (corr {corr})"
        );
    }
}

#[test]
fn fig12_marconi_carbon_competes_with_water() {
    let e = exp::fig12();
    let wi = &e.frame.numbers("water_intensity_normalized").unwrap()[..12];
    let ci = &e.frame.numbers("carbon_intensity_normalized").unwrap()[..12];
    let corr = stats::pearson(wi, ci).unwrap();
    assert!(corr < -0.2, "Marconi WI-CI correlation {corr}");
}

#[test]
fn fig13_water_and_carbon_prefer_different_start_times() {
    let e = exp::fig13();
    let wr = e.frame.numbers("water_rank").unwrap();
    let cr = e.frame.numbers("carbon_rank").unwrap();
    assert_eq!(e.frame.n_rows(), 7);
    let best_w = wr.iter().position(|&r| r == 1.0).unwrap();
    let best_c = cr.iter().position(|&r| r == 1.0).unwrap();
    assert_ne!(best_w, best_c);
    // And the two rankings are not identical overall.
    assert!(wr.iter().zip(cr).any(|(a, b)| a != b));
}

#[test]
fn fig14_scenario_shapes() {
    let e = exp::fig14();
    let systems = e.frame.texts("system").unwrap();
    let scenarios = e.frame.texts("scenario").unwrap();
    let carbon = e.frame.numbers("carbon_saving_pct").unwrap();
    let water = e.frame.numbers("water_saving_pct").unwrap();
    let lookup = |sys: &str, scen: &str| -> (f64, f64) {
        for i in 0..systems.len() {
            if systems[i] == sys && scenarios[i].contains(scen) {
                return (carbon[i], water[i]);
            }
        }
        panic!("{sys}/{scen}");
    };
    for sys in ["Marconi100", "Fugaku", "Polaris", "Frontier"] {
        let (coal_c, _) = lookup(sys, "Coal");
        assert!(coal_c < -90.0, "{sys} coal carbon {coal_c}");
        let (nuc_c, _) = lookup(sys, "Nuclear");
        assert!(nuc_c > 80.0, "{sys} nuclear carbon {nuc_c}");
        let (_, hydro_w) = lookup(sys, "Water-Intensive");
        assert!(hydro_w < -50.0, "{sys} hydro water {hydro_w}");
    }
    // Nuclear water: location-dependent sign.
    assert!(lookup("Marconi100", "Nuclear").1 > 0.0);
    assert!(lookup("Frontier", "Nuclear").1 > 0.0);
    assert!(lookup("Polaris", "Nuclear").1 < 0.0);
    assert!(lookup("Fugaku", "Nuclear").1 < 0.0);
}

#[test]
fn table03_withdrawal_identity_holds() {
    let e = exp::table03();
    let names = e.frame.texts("quantity").unwrap();
    let vals = e.frame.numbers("megaliters").unwrap();
    let get = |n: &str| vals[names.iter().position(|x| x == n).unwrap()];
    assert!(
        (get("withdrawal") - (get("consumption") + get("adjusted_discharge") - get("reuse"))).abs()
            < 1e-6 * get("withdrawal")
    );
    assert!(get("scarcity_weighted") <= get("withdrawal"));
    assert!(
        get("withdrawal") > get("consumption"),
        "discharge adds withdrawal"
    );
}
