//! Cross-crate property-based tests on the paper's model identities.

use proptest::prelude::*;
use thirstyflops::core::withdrawal::{withdrawal_report, WithdrawalParams};
use thirstyflops::core::{OperationalBreakdown, RatioGrid, ScarcityAdjustment, WaterIntensity};
use thirstyflops::grid::{EnergyMix, EnergySource, Scenario};
use thirstyflops::scheduler::StartTimeOptimizer;
use thirstyflops::timeseries::HourlySeries;
use thirstyflops::units::{
    Fraction, KilowattHours, Liters, LitersPerKilowattHour, Pue, WaterScarcityIndex,
};
use thirstyflops::weather::stull;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Eq. 1/6/7: totals decompose additively and scale linearly in energy.
    #[test]
    fn operational_linear_in_energy(e in 1.0f64..1e7, wue in 0.0f64..10.0,
                                    pue in 1.0f64..2.0, ewf in 0.0f64..20.0, k in 1.0f64..10.0) {
        let b1 = OperationalBreakdown::from_totals(
            KilowattHours::new(e), LitersPerKilowattHour::new(wue),
            Pue::new(pue).unwrap(), LitersPerKilowattHour::new(ewf));
        let b2 = OperationalBreakdown::from_totals(
            KilowattHours::new(e * k), LitersPerKilowattHour::new(wue),
            Pue::new(pue).unwrap(), LitersPerKilowattHour::new(ewf));
        prop_assert!((b2.total().value() - k * b1.total().value()).abs() < 1e-6 * b2.total().value().max(1.0));
        prop_assert!((b1.direct + b1.indirect - b1.total()).value().abs() < 1e-9);
    }

    /// Eq. 8: WI decomposition matches the direct/indirect split of Eq. 6/7.
    #[test]
    fn intensity_consistent_with_operational(e in 1.0f64..1e6, wue in 0.01f64..10.0,
                                             pue in 1.0f64..2.0, ewf in 0.01f64..20.0) {
        let wi = WaterIntensity::new(
            LitersPerKilowattHour::new(wue), Pue::new(pue).unwrap(),
            LitersPerKilowattHour::new(ewf));
        let b = OperationalBreakdown::from_totals(
            KilowattHours::new(e), LitersPerKilowattHour::new(wue),
            Pue::new(pue).unwrap(), LitersPerKilowattHour::new(ewf));
        let via_wi = e * wi.total().value();
        prop_assert!((via_wi - b.total().value()).abs() < 1e-6 * via_wi.max(1.0));
        // Share identity.
        let direct_share = wi.direct.value() / wi.total().value();
        prop_assert!((b.direct_share().value() - direct_share).abs() < 1e-9);
    }

    /// Eq. 9 with equal indices reduces the split form to the uniform form.
    #[test]
    fn split_wsi_reduces_to_uniform(wue in 0.0f64..10.0, pue in 1.0f64..2.0,
                                    ewf in 0.0f64..20.0, wsi in 0.0f64..100.0) {
        let wi = WaterIntensity::new(
            LitersPerKilowattHour::new(wue), Pue::new(pue).unwrap(),
            LitersPerKilowattHour::new(ewf));
        let w = WaterScarcityIndex::new(wsi).unwrap();
        let split = ScarcityAdjustment::uniform(w).adjust(wi).value();
        let uniform = ScarcityAdjustment::adjust_uniform(wi, w).value();
        prop_assert!((split - uniform).abs() < 1e-9 * split.max(1.0));
    }

    /// Mix EWF and CI always lie within the convex hull of the component
    /// medians.
    #[test]
    fn mix_factors_in_hull(a in 0.01f64..1.0, b in 0.01f64..1.0, c in 0.01f64..1.0) {
        let total = a + b + c;
        let mix = EnergyMix::new(&[
            (EnergySource::Hydro, a / total),
            (EnergySource::Gas, b / total),
            (EnergySource::Nuclear, c / total),
        ]).unwrap();
        let ewfs = [EnergySource::Hydro.ewf().value(), EnergySource::Gas.ewf().value(),
                    EnergySource::Nuclear.ewf().value()];
        let lo = ewfs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ewfs.iter().cloned().fold(0.0, f64::max);
        prop_assert!(mix.ewf().value() >= lo - 1e-9 && mix.ewf().value() <= hi + 1e-9);
        let cis = [EnergySource::Hydro.carbon_intensity().value(),
                   EnergySource::Gas.carbon_intensity().value(),
                   EnergySource::Nuclear.carbon_intensity().value()];
        let clo = cis.iter().cloned().fold(f64::INFINITY, f64::min);
        let chi = cis.iter().cloned().fold(0.0, f64::max);
        let ci = mix.carbon_intensity().value();
        prop_assert!(ci >= clo - 1e-9 && ci <= chi + 1e-9);
    }

    /// Scenario savings have the right sign structure for any current mix:
    /// coal never beats nuclear on carbon; hydro never beats nuclear on
    /// water.
    #[test]
    fn scenario_orderings(ewf in 0.1f64..12.0, ci in 50.0f64..800.0) {
        let cur_e = LitersPerKilowattHour::new(ewf);
        let cur_c = thirstyflops::units::GramsCo2PerKwh::new(ci);
        prop_assert!(Scenario::AllCoal.carbon_intensity(cur_c).value()
            > Scenario::AllNuclear.carbon_intensity(cur_c).value());
        prop_assert!(Scenario::WaterIntensiveRenewable.ewf(cur_e).value()
            > Scenario::AllNuclear.ewf(cur_e).value());
        prop_assert!(Scenario::OtherRenewable.ewf(cur_e).value()
            < Scenario::AllNuclear.ewf(cur_e).value());
    }

    /// Stull wet bulb never exceeds dry bulb by more than the regression
    /// error. The published fit degrades toward the cold/dry corner of
    /// its envelope (Stull 2011 Fig. 3 shows the valid region shrinking
    /// below 0 °C), so the tolerance widens there.
    #[test]
    fn wet_bulb_bounded(t in -20.0f64..50.0, rh in 5.0f64..99.0) {
        let tw = stull::wet_bulb_unchecked(t, rh).value();
        let tolerance = if t < 5.0 { 2.5 } else { 1.2 };
        prop_assert!(tw <= t + tolerance, "t={t} rh={rh} tw={tw}");
        prop_assert!(tw >= t - 30.0);
        prop_assert!(tw.is_finite());
    }

    /// The start-time optimizer's best-for-water really is the candidate
    /// with the minimal scanned water impact.
    #[test]
    fn starttime_optimality(seed in 0u64..1000, duration in 1usize..48) {
        let wi = HourlySeries::from_fn(|h| {
            let x = (h as u64).wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(seed);
            2.0 + ((x >> 40) as f64 / 16_777_216.0) * 6.0
        });
        let ci = HourlySeries::constant(300.0);
        let opt = StartTimeOptimizer::new(wi, ci, Pue::new(1.1).unwrap());
        let candidates: Vec<usize> = (0..12).map(|i| (seed as usize * 31 + i * 700) % 8000).collect();
        let impacts = opt.evaluate(&candidates, duration, KilowattHours::new(100.0)).unwrap();
        let best = StartTimeOptimizer::best_for_water(&impacts);
        for i in &impacts {
            prop_assert!(best.water.value() <= i.water.value() + 1e-9);
        }
    }

    /// Withdrawal is always ≥ 0, ≥ consumption when reuse is zero, and
    /// monotone in the reuse rate.
    #[test]
    fn withdrawal_monotone_in_reuse(cons in 0.0f64..1e9, disc in 0.0f64..1e9,
                                    rho1 in 0.0f64..1.0, rho2 in 0.0f64..1.0) {
        let (lo, hi) = if rho1 <= rho2 { (rho1, rho2) } else { (rho2, rho1) };
        let base = WithdrawalParams {
            actual_discharge: Liters::new(disc),
            outfall_factor: 1.0,
            pollutant_factors: vec![1.0],
            reuse_rate: Fraction::new(lo).unwrap(),
            potable_fraction: Fraction::new(0.5).unwrap(),
            s_potable: 0.5,
            s_non_potable: 0.5,
        };
        let mut more_reuse = base.clone();
        more_reuse.reuse_rate = Fraction::new(hi).unwrap();
        let a = withdrawal_report(Liters::new(cons), &base).unwrap();
        let b = withdrawal_report(Liters::new(cons), &more_reuse).unwrap();
        prop_assert!(a.withdrawal.value() >= b.withdrawal.value() - 1e-9);
        prop_assert!(b.withdrawal.value() >= 0.0);
        let no_reuse = WithdrawalParams { reuse_rate: Fraction::ZERO, ..base };
        let c = withdrawal_report(Liters::new(cons), &no_reuse).unwrap();
        prop_assert!(c.withdrawal.value() >= cons - 1e-9);
    }

    /// Fig. 4 ratio grids: smaller operational water never shrinks the
    /// embodied-dominant region.
    #[test]
    fn ratio_grid_monotone_in_operational(emb in 1e5f64..1e8, op1 in 1e5f64..1e9, k in 1.1f64..10.0) {
        let big = RatioGrid::sweep(Liters::new(emb), Liters::new(op1 * k), 5.0, 12).unwrap();
        let small = RatioGrid::sweep(Liters::new(emb), Liters::new(op1), 5.0, 12).unwrap();
        prop_assert!(small.embodied_dominant_fraction() >= big.embodied_dominant_fraction());
    }
}
