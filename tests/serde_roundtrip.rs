//! Serde round-trip tests: every public data type that claims
//! `Serialize + Deserialize` must survive JSON round-trips bit-exactly —
//! these types are the tool's interchange surface (reports, specs,
//! frames, experiment dumps).

use thirstyflops::catalog::{SystemId, SystemSpec};
use thirstyflops::core::{AnnualReport, FootprintModel};
use thirstyflops::grid::{EnergyMix, EnergySource, PlantFleet, PowerPlant};
use thirstyflops::timeseries::{Frame, HourlySeries, MonthlySeries};
use thirstyflops::units::{Fraction, Liters, Pue};
use thirstyflops::workload::{Job, TraceConfig};

fn roundtrip<T: serde::Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug>(
    value: &T,
) {
    let json = serde_json::to_string(value).expect("serializes");
    let back: T = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(&back, value);
}

#[test]
fn units_round_trip_transparently() {
    roundtrip(&Liters::new(123.456));
    roundtrip(&Pue::new(1.25).unwrap());
    roundtrip(&Fraction::new(0.37).unwrap());
    // Transparent repr: a bare number, not an object.
    assert_eq!(serde_json::to_string(&Liters::new(2.0)).unwrap(), "2.0");
}

#[test]
fn system_specs_round_trip() {
    for id in SystemId::ALL {
        roundtrip(&SystemSpec::reference(id));
    }
}

#[test]
fn energy_mix_and_fleet_round_trip() {
    let mix = EnergyMix::new(&[
        (EnergySource::Hydro, 0.25),
        (EnergySource::Gas, 0.5),
        (EnergySource::Nuclear, 0.25),
    ])
    .unwrap();
    roundtrip(&mix);
    let fleet = PlantFleet::new(vec![
        PowerPlant::new("A", EnergySource::Nuclear, 0.6, 0.2).unwrap(),
        PowerPlant::new("B", EnergySource::Gas, 0.4, 0.5).unwrap(),
    ])
    .unwrap();
    roundtrip(&fleet);
}

#[test]
fn annual_report_round_trips() {
    let report: AnnualReport = FootprintModel::reference(SystemId::Polaris).annual_report(1);
    roundtrip(&report);
}

#[test]
fn series_and_frames_round_trip() {
    let hourly = HourlySeries::from_fn(|h| (h % 13) as f64 * 0.5);
    roundtrip(&hourly);
    let monthly = MonthlySeries::from_fn(|m| m.number() as f64);
    roundtrip(&monthly);
    let mut frame = Frame::new();
    frame.push_text("k", vec!["a".into(), "b".into()]).unwrap();
    frame.push_number("v", vec![1.0, 2.5]).unwrap();
    roundtrip(&frame);
}

#[test]
fn workload_types_round_trip() {
    roundtrip(&Job {
        id: 7,
        submit_hour: 100,
        nodes: 32,
        duration_hours: 6,
    });
    roundtrip(&TraceConfig {
        cluster_nodes: 512,
        target_utilization: 0.8,
        mean_duration_hours: 6.0,
        mean_width_fraction: 0.02,
        seed: 42,
    });
}

#[test]
fn experiment_json_is_stable_within_a_run() {
    // The JSON dump of an experiment is deterministic (drives --json).
    let a = serde_json::to_string(&thirstyflops::experiments::table01()).unwrap();
    let b = serde_json::to_string(&thirstyflops::experiments::table01()).unwrap();
    assert_eq!(a, b);
    assert!(a.contains("Marconi100"));
}
