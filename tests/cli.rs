//! End-to-end tests of the `thirstyflops` CLI binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_thirstyflops"))
}

fn run(args: &[&str]) -> (i32, String, String) {
    let out = cli().args(args).output().expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn no_args_prints_usage_and_fails() {
    let (code, _out, err) = run(&[]);
    assert_eq!(code, 2);
    assert!(err.contains("USAGE"));
}

#[test]
fn systems_lists_all_six() {
    let (code, out, _) = run(&["systems"]);
    assert_eq!(code, 0);
    for name in [
        "Marconi100",
        "Fugaku",
        "Polaris",
        "Frontier",
        "Aurora",
        "El Capitan",
    ] {
        assert!(out.contains(name), "missing {name}");
    }
}

#[test]
fn footprint_reports_all_sections() {
    let (code, out, _) = run(&["footprint", "polaris", "--seed", "7"]);
    assert_eq!(code, 0);
    assert!(out.contains("embodied water"));
    assert!(out.contains("operational water"));
    assert!(out.contains("intensities"));
    assert!(out.contains("Lemont"));
}

#[test]
fn footprint_rejects_unknown_system() {
    let (code, _, err) = run(&["footprint", "colossus"]);
    assert_eq!(code, 2);
    assert!(err.contains("unknown system"));
}

#[test]
fn rank_orders_by_water() {
    let (code, out, _) = run(&["rank"]);
    assert_eq!(code, 0);
    // Aurora (largest power × high PUE region) outranks Polaris.
    let aurora = out.find("Aurora").expect("Aurora listed");
    let polaris = out.find("Polaris").expect("Polaris listed");
    assert!(aurora < polaris);
}

#[test]
fn scenario_prints_four_whatifs() {
    let (code, out, _) = run(&["scenario", "fugaku"]);
    assert_eq!(code, 0);
    assert!(out.contains("100% Coal Usage"));
    assert!(out.contains("100% Nuclear Usage"));
    assert!(out.matches('%').count() >= 8);
}

#[test]
fn sensitivity_prints_elasticities() {
    let (code, out, _) = run(&["sensitivity", "frontier"]);
    assert_eq!(code, 0);
    assert!(out.contains("WUE"));
    assert!(out.contains("A_die"));
    assert!(out.contains("Yield"));
}

#[test]
fn lifecycle_reports_break_even() {
    let (code, out, _) = run(&["lifecycle", "marconi", "--years", "4"]);
    assert_eq!(code, 0);
    assert!(out.contains("break-even"));
    assert!(out.contains("amortized intensity"));
}

#[test]
fn experiments_filter_works() {
    let (code, out, _) = run(&["experiments", "table01"]);
    assert_eq!(code, 0);
    assert!(out.contains("## table01"));
    assert!(!out.contains("## fig03"));
    let (code, _, err) = run(&["experiments", "fig99"]);
    assert_eq!(code, 2);
    assert!(err.contains("no matching"));
}

#[test]
fn experiments_all_json_emits_every_artifact() {
    let (code, out, _) = run(&["experiments", "--all", "--json", "--threads", "2"]);
    assert_eq!(code, 0);
    let parsed: serde::Value = serde_json::from_str(&out).expect("output is valid JSON");
    let experiments = parsed.as_array().expect("top level is an array");
    assert_eq!(experiments.len(), 21, "21 paper + extension artifacts");
    for e in experiments {
        let fields = e.as_object().expect("each experiment is an object");
        for key in ["id", "title", "frame", "notes"] {
            assert!(
                fields.iter().any(|(name, _)| name == key),
                "experiment missing {key:?}"
            );
        }
    }
    // Paper order is preserved in batch mode.
    let first = experiments[0].as_object().unwrap();
    assert!(first
        .iter()
        .any(|(name, v)| name == "id" && *v == serde::Value::Str("fig01".into())));
}

#[test]
fn experiments_rejects_ids_combined_with_all() {
    let (code, _, err) = run(&["experiments", "fig05", "--all"]);
    assert_eq!(code, 2);
    assert!(err.contains("not both"));
}

#[test]
fn experiments_rejects_misspelled_id_even_next_to_valid_ones() {
    // A typo must not silently drop an artifact from the batch output.
    let (code, _, err) = run(&["experiments", "fig05", "fgi06", "--json"]);
    assert_eq!(code, 2);
    assert!(err.contains("fgi06"), "{err}");
}

#[test]
fn experiments_json_respects_id_filter() {
    let (code, out, _) = run(&["experiments", "fig05", "--json"]);
    assert_eq!(code, 0);
    let parsed: serde::Value = serde_json::from_str(&out).expect("output is valid JSON");
    assert_eq!(parsed.as_array().map(<[serde::Value]>::len), Some(1));
    assert!(out.contains("\"fig05\""));
    assert!(!out.contains("\"fig03\""));
}

#[test]
fn threads_flag_is_position_independent() {
    // The docs promise a *global* flag: before the subcommand, between
    // positionals, or trailing — all equivalent.
    let (code, before, _) = run(&["--threads", "2", "systems"]);
    assert_eq!(code, 0);
    let (code, after, _) = run(&["systems", "--threads", "2"]);
    assert_eq!(code, 0);
    assert_eq!(before, after);
    let (code, out, _) = run(&["footprint", "--threads", "2", "polaris", "--seed", "7"]);
    assert_eq!(code, 0);
    assert!(out.contains("Lemont"));
}

#[test]
fn threads_flag_rejects_garbage() {
    let (code, _, err) = run(&["rank", "--threads", "zero"]);
    assert_eq!(code, 2);
    assert!(err.contains("--threads"));
    let (code, _, err) = run(&["rank", "--threads"]);
    assert_eq!(code, 2);
    assert!(err.contains("--threads"));
}

#[test]
fn no_sim_cache_flag_is_position_independent() {
    // Like --threads, --no-sim-cache is global (tests/simcache.rs pins
    // the byte-identity of its output; this pins the arg parsing).
    let (code, before, _) = run(&["--no-sim-cache", "systems"]);
    assert_eq!(code, 0);
    let (code, after, _) = run(&["systems", "--no-sim-cache"]);
    assert_eq!(code, 0);
    assert_eq!(before, after);
}

#[test]
fn serve_cache_flags_reject_garbage() {
    let (code, _, err) = run(&["serve", "--cache-entries", "many"]);
    assert_eq!(code, 2);
    assert!(err.contains("--cache-entries"));
    let (code, _, err) = run(&["serve", "--cache-ttl", "-5"]);
    assert_eq!(code, 2);
    assert!(err.contains("--cache-ttl"));
    let (code, _, err) = run(&["serve", "--cache-sizes", "7"]);
    assert_eq!(code, 2);
    assert!(err.contains("unknown serve flag"));
}

#[test]
fn footprint_json_parses_and_carries_the_report() {
    let (code, out, _) = run(&["footprint", "polaris", "--seed", "7", "--json"]);
    assert_eq!(code, 0);
    let parsed: serde::Value = serde_json::from_str(&out).expect("output is valid JSON");
    let fields = parsed.as_object().expect("top level is an object");
    for key in ["system", "name", "operator", "location", "seed", "report"] {
        assert!(
            fields.iter().any(|(name, _)| name == key),
            "missing {key:?}"
        );
    }
    assert!(out.contains("\"system\": \"polaris\""));
    // Determinism: a second run emits the same bytes.
    let (_, again, _) = run(&["footprint", "polaris", "--seed", "7", "--json"]);
    assert_eq!(out, again);
}

#[test]
fn rank_json_has_six_ranked_entries() {
    let (code, out, _) = run(&["rank", "--adjusted", "--json"]);
    assert_eq!(code, 0);
    let parsed: serde::Value = serde_json::from_str(&out).expect("valid JSON");
    let fields = parsed.as_object().unwrap();
    assert!(fields
        .iter()
        .any(|(name, v)| name == "adjusted" && *v == serde::Value::Bool(true)));
    let entries = fields
        .iter()
        .find(|(name, _)| name == "entries")
        .and_then(|(_, v)| v.as_array())
        .expect("entries array");
    assert_eq!(entries.len(), 6);
}

#[test]
fn compare_and_scenario_and_systems_emit_json() {
    let (code, out, _) = run(&["compare", "polaris", "frontier", "--json"]);
    assert_eq!(code, 0);
    assert!(out.contains("\"bands_overlap\""));
    let (code, out, _) = run(&["scenario", "fugaku", "--json"]);
    assert_eq!(code, 0);
    assert!(out.contains("\"100% Coal Usage\""));
    let (code, out, _) = run(&["systems", "--json"]);
    assert_eq!(code, 0);
    assert!(out.contains("\"elcapitan\""));
}

#[test]
fn seed_rejects_garbage_like_the_http_api() {
    // `?seed=20x3` is a 400 on the server; the CLI twin must not
    // silently serve the default year instead.
    let (code, _, err) = run(&["footprint", "polaris", "--seed", "20x3"]);
    assert_eq!(code, 2);
    assert!(err.contains("--seed"), "{err}");
    let (code, _, _) = run(&["rank", "--seed", "7"]);
    assert_eq!(code, 0);
}

#[test]
fn serve_rejects_bad_flags_without_binding() {
    let (code, _, err) = run(&["serve", "--workers", "zero"]);
    assert_eq!(code, 2);
    assert!(err.contains("--workers"));
    let (code, _, err) = run(&["serve", "--port", "80"]);
    assert_eq!(code, 2);
    assert!(err.contains("unknown serve flag"));
}

#[test]
fn compare_emits_uncertainty_verdict() {
    let (code, out, _) = run(&["compare", "polaris", "frontier"]);
    assert_eq!(code, 0);
    assert!(out.contains("operational bands"));
    assert!(out.contains("bands are disjoint") || out.contains("bands OVERLAP"));
}
