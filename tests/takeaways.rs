//! One test per paper Takeaway (1–10): the reproduction's headline
//! claims, each pinned to the mechanism that produces it.

use thirstyflops::carbon;
use thirstyflops::catalog::hardware::Medium;
use thirstyflops::catalog::{SystemId, SystemSpec};
use thirstyflops::core::embodied::capacity_water;
use thirstyflops::core::{
    EmbodiedBreakdown, RatioGrid, ScarcityAdjustment, SystemYear, WaterIntensity,
};
use thirstyflops::grid::{EnergySource, Scenario};
use thirstyflops::scheduler::capping::SourceOffer;
use thirstyflops::scheduler::{StartTimeOptimizer, WaterCapPlanner};
use thirstyflops::units::{
    Gigabytes, KilowattHours, Liters, LitersPerKilowattHour, Petabytes, Pue, WaterScarcityIndex,
};

fn years() -> Vec<std::sync::Arc<SystemYear>> {
    SystemId::PAPER
        .iter()
        .map(|&id| SystemYear::simulate(id, 2023))
        .collect()
}

/// Takeaway 1: HDD-heavy systems have HDD-dominated embodied *water*;
/// SSDs are water-favorable per GB — the exact opposite of the embodied
/// *carbon* ranking.
#[test]
fn takeaway_01_storage_ranks_oppositely_on_water_and_carbon() {
    let cap: Gigabytes = Petabytes::new(100.0).into();
    assert!(capacity_water(Medium::Ssd, cap).value() < capacity_water(Medium::Hdd, cap).value());
    assert!(
        carbon::capacity_carbon(Medium::Ssd, cap).value()
            > carbon::capacity_carbon(Medium::Hdd, cap).value()
    );
    // System level: Frontier's HDD tier dominates its embodied water.
    let b = EmbodiedBreakdown::for_system(&SystemSpec::reference(SystemId::Frontier));
    assert!(b.memory_and_storage().value() > b.processors().value());
}

/// Takeaway 2: a fab in a water-scarce region plus a datacenter in a
/// water-secure region can make embodied exceed operational.
#[test]
fn takeaway_02_manufacturing_site_wsi_can_flip_dominance() {
    let grid = RatioGrid::sweep(Liters::new(5e7), Liters::new(2e9), 5.0, 16).unwrap();
    // At equal WSIs operational dominates…
    assert!(grid.at(8, 8) < 1.0);
    // …at scarce-fab/wet-site corners, embodied dominates.
    assert!(grid.at(15, 0) > 1.0);
}

/// Takeaway 3: low-carbon sources can be highly water-intensive, with
/// >50 % temporal variation in regional EWF.
#[test]
fn takeaway_03_green_energy_can_be_thirsty_and_volatile() {
    assert!(EnergySource::Hydro.carbon_intensity().value() < 50.0);
    assert!(EnergySource::Hydro.ewf().value() > EnergySource::Coal.ewf().value());
    let marconi = &years()[0];
    let summary = marconi.ewf.summary();
    assert!(
        summary.range() / summary.median > 0.5,
        "EWF variation {}",
        summary.range() / summary.median
    );
}

/// Takeaway 4: indirect operational water is comparable to direct.
#[test]
fn takeaway_04_indirect_water_is_material() {
    for year in years() {
        let op = year.operational();
        assert!(
            op.indirect_share().value() > 0.40,
            "{}: indirect {:.0}%",
            year.spec.id,
            op.indirect_share().percent()
        );
    }
}

/// Takeaway 5: under a shared water budget, hotter weather (higher WUE)
/// forces the grid toward low-water sources at a carbon cost.
#[test]
fn takeaway_05_water_capping_couples_cooling_and_generation() {
    let planner = WaterCapPlanner::new(Pue::new(1.2).unwrap());
    let offers = vec![
        SourceOffer {
            source: EnergySource::Hydro,
            capacity_kwh: 1000.0,
        },
        SourceOffer {
            source: EnergySource::Nuclear,
            capacity_kwh: 1000.0,
        },
        SourceOffer {
            source: EnergySource::Gas,
            capacity_kwh: 1000.0,
        },
    ];
    let budget = Liters::new(6000.0);
    let mild = planner
        .dispatch(
            KilowattHours::new(1000.0),
            LitersPerKilowattHour::new(1.0),
            &offers,
            budget,
        )
        .unwrap();
    let hot = planner
        .dispatch(
            KilowattHours::new(1000.0),
            LitersPerKilowattHour::new(3.5),
            &offers,
            budget,
        )
        .unwrap();
    assert!(hot.carbon_g > mild.carbon_g);
    assert!(hot.generation_water.value() < mild.generation_water.value());
}

/// Takeaway 6: WSI varies at sub-state scale, and the indirect WSI
/// depends on which plants supply the center.
#[test]
fn takeaway_06_kilometer_scale_wsi_matters() {
    use thirstyflops::catalog::wsi::CountyWsiField;
    let il = CountyWsiField::generate("IL", 102, 2023).unwrap();
    assert!(il.relative_spread() > 0.3);
    // Two plausible fleets for the same site give different effective WI.
    let wi = WaterIntensity::new(
        LitersPerKilowattHour::new(3.5),
        Pue::new(1.65).unwrap(),
        LitersPerKilowattHour::new(1.9),
    );
    let near = ScarcityAdjustment {
        direct_wsi: WaterScarcityIndex::new(0.55).unwrap(),
        indirect_wsi: WaterScarcityIndex::new(il.min()).unwrap(),
    };
    let far = ScarcityAdjustment {
        direct_wsi: WaterScarcityIndex::new(0.55).unwrap(),
        indirect_wsi: WaterScarcityIndex::new(il.max()).unwrap(),
    };
    let spread = (far.adjust(wi).value() - near.adjust(wi).value()) / near.adjust(wi).value();
    assert!(spread > 0.1, "plant choice moves effective WI by {spread}");
}

/// Takeaway 7: energy-aware operation is not water-optimal.
#[test]
fn takeaway_07_energy_optimal_is_not_water_optimal() {
    use thirstyflops::scheduler::{GeoBalancer, Policy, SiteSeries};
    let ys = years();
    let sites: Vec<SiteSeries> = ys.iter().map(|y| SiteSeries::from_year(y)).collect();
    let balancer = GeoBalancer::new(sites).unwrap();
    let energy = balancer.run_year(1000.0, Policy::EnergyOnly);
    let water = balancer.run_year(1000.0, Policy::WaterOnly);
    assert!(energy.water.value() > water.water.value());
}

/// Takeaway 8: carbon and water sometimes align, sometimes compete —
/// Marconi's summer is the competing case.
#[test]
fn takeaway_08_carbon_water_interactions_are_mixed() {
    let ys = years();
    let mut correlations = Vec::new();
    for y in &ys {
        let wi = y.water_intensity().monthly_mean();
        let ci = y.carbon.monthly_mean();
        correlations.push(wi.pearson(&ci));
    }
    // Marconi competes (negative), at least one other system aligns
    // (positive) — both regimes exist, as the paper stresses.
    assert!(correlations[0] < -0.2, "Marconi {correlations:?}");
    assert!(
        correlations.iter().any(|&c| c > 0.2),
        "no synergistic system: {correlations:?}"
    );
}

/// Takeaway 9: programmers optimize energy; *schedulers* must know that
/// water- and carbon-optimal times differ.
#[test]
fn takeaway_09_water_and_carbon_optimal_times_differ() {
    let frontier = &years()[3];
    let opt = StartTimeOptimizer::new(
        frontier.water_intensity(),
        frontier.carbon.clone(),
        frontier.spec.pue,
    );
    let candidates: Vec<usize> = (0..7).map(|i| 190 * 24 + i * 3).collect();
    let impacts = opt
        .evaluate(&candidates, 3, KilowattHours::new(1000.0))
        .unwrap();
    let bw = StartTimeOptimizer::best_for_water(&impacts);
    let bc = StartTimeOptimizer::best_for_carbon(&impacts);
    assert_ne!(bw.start_hour, bc.start_hour);
}

/// Takeaway 10: nuclear saves carbon everywhere but its water impact
/// flips sign with location.
#[test]
fn takeaway_10_nuclear_water_impact_is_location_dependent() {
    let ys = years();
    let mut water_deltas = Vec::new();
    for y in &ys {
        let ewf_mix = LitersPerKilowattHour::new(y.ewf.mean());
        let wue = y.wue.mean();
        let pue = y.spec.pue.value();
        let wi_mix = wue + pue * ewf_mix.value();
        let wi_nuclear = wue + pue * Scenario::AllNuclear.ewf(ewf_mix).value();
        water_deltas.push((wi_mix - wi_nuclear) / wi_mix);
        // Carbon always saves big.
        let ci_mix = y.carbon.mean();
        let saving = (ci_mix - 12.0) / ci_mix;
        assert!(saving > 0.8, "{}: carbon saving {saving}", y.spec.id);
    }
    assert!(water_deltas.iter().any(|&d| d > 0.0), "{water_deltas:?}");
    assert!(water_deltas.iter().any(|&d| d < 0.0), "{water_deltas:?}");
}
