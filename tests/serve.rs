//! Integration tests of the HTTP serving layer: real TCP sockets against
//! an in-process server on an ephemeral port.
//!
//! The contract under test (docs/SERVING.md):
//! * every endpoint family answers with JSON byte-identical to the
//!   corresponding CLI `--json` invocation;
//! * identical requests return byte-identical bodies at any worker
//!   count, from any mix of concurrent clients, cached or uncached;
//! * a repeated query is answered from the cache (visible in
//!   `/v1/cache/stats`) — the 8760-hour simulation never re-runs.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::Command;

use thirstyflops::serve::{Server, ServerConfig};

fn start(workers: usize) -> Server {
    Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        ..ServerConfig::default()
    })
    .expect("binding port 0 always succeeds")
}

/// Issues one GET over a real socket; returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    http_request(addr, "GET", path, None)
}

/// Issues one POST with a body; returns (status, body).
fn http_post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    http_request(addr, "POST", path, Some(body))
}

fn http_request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("server is listening");
    match body {
        None => write!(stream, "{method} {path} HTTP/1.1\r\nHost: test\r\n\r\n"),
        Some(b) => write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{b}",
            b.len()
        ),
    }
    .expect("request writes");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response reads");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .expect("response has a blank line");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line has a code");
    // Content-Length must frame the body exactly.
    let declared: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.parse().ok())
        .expect("Content-Length header present");
    assert_eq!(declared, body.len(), "Content-Length frames the body");
    (status, body.to_string())
}

fn cli_stdout(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_thirstyflops"))
        .args(args)
        .output()
        .expect("CLI binary runs");
    assert!(out.status.success(), "CLI {args:?} failed: {out:?}");
    String::from_utf8(out.stdout).expect("CLI emits UTF-8")
}

#[test]
fn healthz_and_404_shapes() {
    let server = start(2);
    let addr = server.local_addr();
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\": \"ok\""));
    let (status, body) = http_get(addr, "/v2/nothing");
    assert_eq!(status, 404);
    assert!(body.contains("\"status\": 404"));
    let (status, _) = http_get(addr, "/v1/footprint/polaris?seed=abc");
    assert_eq!(status, 400);
    server.shutdown();
}

/// The endpoint families vs their CLI `--json` twins, byte for byte
/// (including the `/v1/compare` route over `api::compare_payload`).
#[test]
fn endpoint_bodies_match_cli_json_bytes() {
    let server = start(2);
    let addr = server.local_addr();
    let cases: [(&str, &[&str]); 7] = [
        ("/v1/systems", &["systems", "--json"]),
        (
            "/v1/footprint/polaris?seed=7",
            &["footprint", "polaris", "--seed", "7", "--json"],
        ),
        (
            "/v1/compare?a=polaris&b=frontier&seed=7",
            &["compare", "polaris", "frontier", "--seed", "7", "--json"],
        ),
        ("/v1/rank?seed=7", &["rank", "--seed", "7", "--json"]),
        (
            "/v1/rank?adjusted=true&seed=7",
            &["rank", "--adjusted", "--seed", "7", "--json"],
        ),
        (
            "/v1/scenario/fugaku?seed=7",
            &["scenario", "fugaku", "--seed", "7", "--json"],
        ),
        ("/v1/experiments/fig05", &["experiments", "fig05", "--json"]),
    ];
    for (path, cli_args) in cases {
        let (status, body) = http_get(addr, path);
        assert_eq!(status, 200, "{path}");
        let cli = cli_stdout(cli_args);
        assert_eq!(body, cli, "{path} vs thirstyflops {cli_args:?}");
        assert!(body.ends_with('\n'), "{path} body keeps the CLI newline");
    }
    server.shutdown();
}

/// `/v1/compare` canonicalizes its cache key through `SystemId::from_str`:
/// aliases and a defaulted seed land on one entry.
#[test]
fn compare_aliases_share_one_cache_entry() {
    let server = start(2);
    let addr = server.local_addr();
    let (status, canonical) = http_get(addr, "/v1/compare?a=polaris&b=elcapitan&seed=2023");
    assert_eq!(status, 200);
    let (_, aliased) = http_get(addr, "/v1/compare?a=Polaris&b=el-capitan");
    assert_eq!(canonical, aliased, "alias + defaulted seed hit the cache");
    let stats = server.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    // Order matters: b-vs-a is a different (valid) comparison.
    let (status, swapped) = http_get(addr, "/v1/compare?a=elcapitan&b=polaris");
    assert_eq!(status, 200);
    assert_ne!(canonical, swapped);
    server.shutdown();
}

/// Eight client threads hammering a mixed path set: within one server
/// every path's responses agree, and a 1-worker server serves the exact
/// same bytes as an 8-worker server.
#[test]
fn concurrent_bodies_identical_across_worker_counts() {
    let paths = [
        "/v1/footprint/marconi?seed=11",
        "/v1/rank?seed=11",
        "/v1/scenario/polaris?seed=11",
        "/v1/systems",
    ];

    // path → the one body every request of that path produced.
    let mut per_worker_count: Vec<BTreeMap<String, String>> = Vec::new();
    for workers in [1usize, 8] {
        let server = start(workers);
        assert_eq!(server.workers(), workers);
        let addr = server.local_addr();
        let responses: Vec<(String, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|client| {
                    scope.spawn(move || {
                        let mut seen = Vec::new();
                        // Stagger which path each client starts with so
                        // cold-cache computes genuinely race.
                        for turn in 0..paths.len() {
                            let path = paths[(client + turn) % paths.len()];
                            let (status, body) = http_get(addr, path);
                            assert_eq!(status, 200, "{path}");
                            seen.push((path.to_string(), body));
                        }
                        seen
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        let mut agreed: BTreeMap<String, String> = BTreeMap::new();
        for (path, body) in responses {
            match agreed.get(&path) {
                None => {
                    agreed.insert(path, body);
                }
                Some(first) => assert_eq!(
                    first, &body,
                    "{path} answered differently across concurrent clients ({workers} workers)"
                ),
            }
        }
        assert_eq!(agreed.len(), paths.len());
        server.shutdown();
        per_worker_count.push(agreed);
    }
    assert_eq!(
        per_worker_count[0], per_worker_count[1],
        "bodies must not depend on the worker count"
    );
}

/// A repeated footprint query must be a cache hit — the second request
/// skips SystemYear::simulate, observable through /v1/cache/stats.
#[test]
fn repeated_query_hits_the_cache() {
    let server = start(2);
    let addr = server.local_addr();
    let (_, first) = http_get(addr, "/v1/footprint/frontier?seed=3");
    let (_, second) = http_get(addr, "/v1/footprint/frontier?seed=3");
    assert_eq!(first, second, "cached body is byte-identical");

    let (status, stats_body) = http_get(addr, "/v1/cache/stats");
    assert_eq!(status, 200);
    let stats: thirstyflops::serve::api::CacheStatsPayload =
        serde_json::from_str(&stats_body).expect("stats parse");
    assert_eq!(stats.body.misses, 1, "one cold compute");
    assert_eq!(stats.body.hits, 1, "one cache hit — simulate was skipped");
    assert_eq!(stats.body.entries, 1);
    assert_eq!(stats.body.capacity, 4096, "default bound is in place");
    assert_eq!(stats.body.evictions, 0);
    // The simulation cache is observable through the same endpoint: the
    // one cold body computed exactly one system year, and its grid/WUE
    // sub-simulations ran at most once each.
    assert!(stats.simulation.enabled);
    assert!(stats.simulation.system_years.misses >= 1);
    assert!(stats.simulation.grid_years.entries >= 1);
    assert!(stats.simulation.wue_series.entries >= 1);
    // The in-process view agrees with the endpoint.
    assert_eq!(server.cache_stats(), stats.body);
    server.shutdown();
}

/// Distinct parameters must never share a cache entry.
#[test]
fn different_params_get_different_bodies() {
    let server = start(2);
    let addr = server.local_addr();
    let (_, seed3) = http_get(addr, "/v1/footprint/aurora?seed=3");
    let (_, seed4) = http_get(addr, "/v1/footprint/aurora?seed=4");
    assert_ne!(seed3, seed4, "seeds decorrelate years");
    let (_, plain) = http_get(addr, "/v1/rank");
    let (_, adjusted) = http_get(addr, "/v1/rank?adjusted=true");
    assert_ne!(plain, adjusted);
    assert_eq!(server.cache_stats().entries, 4);
    server.shutdown();
}

/// The acceptance-criteria POST path: a scenario spec uploaded to
/// `/v1/scenarios/run` is answered, byte-identical to the CLI, and a
/// repeat is served from the body cache — observable in
/// `/v1/cache/stats`, including the new per-endpoint counters.
#[test]
fn repeated_scenario_post_is_answered_from_the_body_cache() {
    let spec_path = format!(
        "{}/examples/scenarios/drought_grid.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let spec = std::fs::read_to_string(&spec_path).expect("spec ships");
    let server = start(2);
    let addr = server.local_addr();
    let (status, first) = http_post(addr, "/v1/scenarios/run", &spec);
    assert_eq!(status, 200, "{first}");
    let (_, second) = http_post(addr, "/v1/scenarios/run", &spec);
    assert_eq!(first, second, "cached body is byte-identical");
    // Byte-identical to the CLI twin.
    let cli = cli_stdout(&["scenario", "run", &spec_path, "--json"]);
    assert_eq!(first, cli, "POST /v1/scenarios/run vs scenario run --json");

    let (status, stats_body) = http_get(addr, "/v1/cache/stats");
    assert_eq!(status, 200);
    let stats: thirstyflops::serve::api::CacheStatsPayload =
        serde_json::from_str(&stats_body).expect("stats parse");
    assert_eq!(stats.body.misses, 1, "one cold evaluation");
    assert_eq!(stats.body.hits, 1, "the repeat skipped the engine");
    let run_stats = stats
        .endpoints
        .iter()
        .find(|e| e.endpoint == "scenarios_run")
        .expect("per-endpoint counters include scenarios_run");
    assert_eq!(run_stats.requests, 2);
    assert_eq!(run_stats.cache_hits, 1);
    server.shutdown();
}

/// A reformatted but semantically identical spec shares the cache entry
/// (the key is the canonical spec, not the body bytes), while a changed
/// spec gets its own.
#[test]
fn scenario_cache_keys_are_canonical_not_textual() {
    let server = start(2);
    let addr = server.local_addr();
    let original = r#"{"name": "dry", "base": "polaris",
                       "overrides": {"climate": {"wue_scale": 0.5}}}"#;
    let respelled = r#"{
        "seed": 2023,
        "name": "dry",
        "base": "Polaris",
        "overrides": {"climate": {"preset": null, "wue_scale": 0.5}}
    }"#;
    let changed = r#"{"name": "dry", "base": "polaris",
                      "overrides": {"climate": {"wue_scale": 0.6}}}"#;
    let (_, a) = http_post(addr, "/v1/scenarios/run", original);
    let (_, b) = http_post(addr, "/v1/scenarios/run", respelled);
    let (_, c) = http_post(addr, "/v1/scenarios/run", changed);
    assert_eq!(a, b, "respelling shares the canonical entry");
    assert_ne!(a, c);
    let stats = server.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
    // Bad specs are 400s with the parser's message.
    let (status, err_body) = http_post(addr, "/v1/scenarios/run", "{\"nope\": 1}");
    assert_eq!(status, 400);
    assert!(err_body.contains("\"status\": 400"));
    server.shutdown();
}

/// `serve --log` writes one line per request (method, path, status,
/// bytes, µs, cache verdict) to stderr.
#[test]
fn serve_log_flag_emits_request_lines() {
    use std::io::BufRead;
    let mut child = Command::new(env!("CARGO_BIN_EXE_thirstyflops"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "1", "--log"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("serve starts");
    let stdout = child.stdout.take().expect("stdout piped");
    let banner = std::io::BufReader::new(stdout)
        .lines()
        .next()
        .expect("serve prints a banner")
        .expect("banner reads");
    let addr: SocketAddr = banner
        .split_whitespace()
        .find_map(|w| w.strip_prefix("http://"))
        .expect("banner names the address")
        .parse()
        .expect("address parses");
    let (status, _) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    let (status, _) = http_get(addr, "/v1/systems");
    assert_eq!(status, 200);
    let (status, _) = http_get(addr, "/v1/systems");
    assert_eq!(status, 200);
    child.kill().expect("serve stops on signal");
    let _ = child.wait();
    let mut log = String::new();
    child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut log)
        .expect("stderr reads");
    assert!(
        log.contains("GET /healthz 200"),
        "log line for healthz: {log:?}"
    );
    let systems_lines: Vec<&str> = log
        .lines()
        .filter(|l| l.contains("GET /v1/systems 200"))
        .collect();
    assert_eq!(systems_lines.len(), 2, "{log:?}");
    assert!(systems_lines[0].contains("miss"), "{log:?}");
    assert!(systems_lines[1].contains("hit"), "{log:?}");
    for line in log.lines().filter(|l| l.starts_with("GET ")) {
        assert!(line.contains("us "), "latency field present: {line:?}");
        assert!(line.contains('B'), "byte count present: {line:?}");
    }
}

/// `serve` on the CLI prints the bound ephemeral address and serves.
#[test]
fn cli_serve_reports_ephemeral_port_and_answers() {
    use std::io::BufRead;
    let mut child = Command::new(env!("CARGO_BIN_EXE_thirstyflops"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve starts");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("serve prints a banner")
        .expect("banner reads");
    let addr: SocketAddr = banner
        .split_whitespace()
        .find_map(|w| w.strip_prefix("http://"))
        .expect("banner names the address")
        .parse()
        .expect("address parses");
    assert_ne!(addr.port(), 0, "port 0 resolves to a real port");
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\": \"ok\""));
    child.kill().expect("serve stops on signal");
    let _ = child.wait();
}
