//! Integration tests of the HTTP serving layer: real TCP sockets against
//! an in-process server on an ephemeral port.
//!
//! The contract under test (docs/SERVING.md):
//! * every endpoint family answers with JSON byte-identical to the
//!   corresponding CLI `--json` invocation;
//! * identical requests return byte-identical bodies at any worker
//!   count, from any mix of concurrent clients, cached or uncached;
//! * a repeated query is answered from the cache (visible in
//!   `/v1/cache/stats`) — the 8760-hour simulation never re-runs.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::Command;

use thirstyflops::serve::{Server, ServerConfig};

fn start(workers: usize) -> Server {
    Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        ..ServerConfig::default()
    })
    .expect("binding port 0 always succeeds")
}

/// Issues one GET over a real socket; returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    http_request(addr, "GET", path, None)
}

/// Issues one POST with a body; returns (status, body).
fn http_post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    http_request(addr, "POST", path, Some(body))
}

fn http_request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("server is listening");
    // One-shot client: `Connection: close` keeps read_to_string finite
    // now that the server defaults to keep-alive.
    match body {
        None => write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
        ),
        Some(b) => write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{b}",
            b.len()
        ),
    }
    .expect("request writes");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response reads");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .expect("response has a blank line");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line has a code");
    // Content-Length must frame the body exactly.
    let declared: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.parse().ok())
        .expect("Content-Length header present");
    assert_eq!(declared, body.len(), "Content-Length frames the body");
    (status, body.to_string())
}

fn cli_stdout(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_thirstyflops"))
        .args(args)
        .output()
        .expect("CLI binary runs");
    assert!(out.status.success(), "CLI {args:?} failed: {out:?}");
    String::from_utf8(out.stdout).expect("CLI emits UTF-8")
}

/// Extracts the "shed" family's request count from a `/v1/cache/stats`
/// body. Relies on the documented field order of `EndpointStats`:
/// `requests` is the field right after `endpoint`.
fn shed_requests(stats: &str) -> u64 {
    let family = stats
        .find("\"endpoint\": \"shed\"")
        .map(|i| &stats[i..])
        .expect("stats lists the shed family");
    family
        .find("\"requests\": ")
        .and_then(|i| {
            family[i + 12..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .ok()
        })
        .expect("shed family has a requests count")
}

#[test]
fn healthz_and_404_shapes() {
    let server = start(2);
    let addr = server.local_addr();
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\": \"ok\""));
    assert!(body.contains("\"uptime_seconds\""), "{body}");
    assert!(body.contains("\"requests_total\""), "{body}");
    let (status, body) = http_get(addr, "/v2/nothing");
    assert_eq!(status, 404);
    assert!(body.contains("\"status\": 404"));
    let (status, _) = http_get(addr, "/v1/footprint/polaris?seed=abc");
    assert_eq!(status, 400);
    server.shutdown();
}

/// Satellite: `/healthz` reports the request total so external probes
/// can detect a silent restart (the count resets with the process).
#[test]
fn healthz_request_total_grows_between_polls() {
    let server = start(1);
    let addr = server.local_addr();
    let (_, first) = http_get(addr, "/healthz");
    let (_, _) = http_get(addr, "/v1/systems");
    let (_, second) = http_get(addr, "/healthz");
    let health: thirstyflops::serve::handlers::HealthBody =
        serde_json::from_str(&second).expect("healthz parses");
    assert_eq!(health.status, "ok");
    // The second poll has seen at least the first poll + the systems
    // request (recording happens after each response is written, so the
    // in-flight request itself may not be counted yet).
    assert!(health.requests_total >= 2, "{second}");
    let first: thirstyflops::serve::handlers::HealthBody =
        serde_json::from_str(&first).expect("healthz parses");
    assert!(health.requests_total > first.requests_total);
    server.shutdown();
}

/// Tentpole: `GET /v1/metrics` serves Prometheus text exposition over
/// real TCP — serve's per-endpoint table plus the global registry's
/// simcache and batch families, with the right Content-Type.
#[test]
fn metrics_endpoint_serves_prometheus_text_over_tcp() {
    let server = start(1);
    let addr = server.local_addr();
    let (_, _) = http_get(addr, "/v1/rank?seed=9");
    let mut stream = TcpStream::connect(addr).expect("server is listening");
    write!(
        stream,
        "GET /v1/metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("request writes");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response reads");
    let (head, body) = raw.split_once("\r\n\r\n").expect("framed response");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(
        head.contains("Content-Type: text/plain; version=0.0.4"),
        "{head}"
    );
    // Per-endpoint table: the rank request above is visible.
    assert!(body.contains("# TYPE thirstyflops_http_requests_total counter"));
    assert!(body.contains("thirstyflops_http_requests_total{endpoint=\"rank\"} 1\n"));
    assert!(body.contains("# TYPE thirstyflops_http_request_duration_micros histogram"));
    assert!(body.contains(
        "thirstyflops_http_request_duration_micros_bucket{endpoint=\"rank\",le=\"+Inf\"} 1\n"
    ));
    // Global registry families, exposed even in a fresh process.
    assert!(body.contains("# TYPE thirstyflops_simcache_hits_total counter"));
    assert!(body.contains("thirstyflops_simcache_hits_total{cache=\"system_years\"}"));
    assert!(body.contains("# TYPE thirstyflops_batch_lanes_total counter"));
    // Well-formed exposition: every non-comment line is `name[{labels}] value`.
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(!series.is_empty(), "{line}");
        assert!(
            value.parse::<f64>().is_ok(),
            "sample value parses as a number: {line}"
        );
    }
    server.shutdown();
}

/// The endpoint families vs their CLI `--json` twins, byte for byte
/// (including the `/v1/compare` route over `api::compare_payload`).
#[test]
fn endpoint_bodies_match_cli_json_bytes() {
    let server = start(2);
    let addr = server.local_addr();
    let cases: [(&str, &[&str]); 7] = [
        ("/v1/systems", &["systems", "--json"]),
        (
            "/v1/footprint/polaris?seed=7",
            &["footprint", "polaris", "--seed", "7", "--json"],
        ),
        (
            "/v1/compare?a=polaris&b=frontier&seed=7",
            &["compare", "polaris", "frontier", "--seed", "7", "--json"],
        ),
        ("/v1/rank?seed=7", &["rank", "--seed", "7", "--json"]),
        (
            "/v1/rank?adjusted=true&seed=7",
            &["rank", "--adjusted", "--seed", "7", "--json"],
        ),
        (
            "/v1/scenario/fugaku?seed=7",
            &["scenario", "fugaku", "--seed", "7", "--json"],
        ),
        ("/v1/experiments/fig05", &["experiments", "fig05", "--json"]),
    ];
    for (path, cli_args) in cases {
        let (status, body) = http_get(addr, path);
        assert_eq!(status, 200, "{path}");
        let cli = cli_stdout(cli_args);
        assert_eq!(body, cli, "{path} vs thirstyflops {cli_args:?}");
        assert!(body.ends_with('\n'), "{path} body keeps the CLI newline");
    }
    server.shutdown();
}

/// `/v1/compare` canonicalizes its cache key through `SystemId::from_str`:
/// aliases and a defaulted seed land on one entry.
#[test]
fn compare_aliases_share_one_cache_entry() {
    let server = start(2);
    let addr = server.local_addr();
    let (status, canonical) = http_get(addr, "/v1/compare?a=polaris&b=elcapitan&seed=2023");
    assert_eq!(status, 200);
    let (_, aliased) = http_get(addr, "/v1/compare?a=Polaris&b=el-capitan");
    assert_eq!(canonical, aliased, "alias + defaulted seed hit the cache");
    let stats = server.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    // Order matters: b-vs-a is a different (valid) comparison.
    let (status, swapped) = http_get(addr, "/v1/compare?a=elcapitan&b=polaris");
    assert_eq!(status, 200);
    assert_ne!(canonical, swapped);
    server.shutdown();
}

/// Eight client threads hammering a mixed path set: within one server
/// every path's responses agree, and a 1-worker server serves the exact
/// same bytes as an 8-worker server.
#[test]
fn concurrent_bodies_identical_across_worker_counts() {
    let paths = [
        "/v1/footprint/marconi?seed=11",
        "/v1/rank?seed=11",
        "/v1/scenario/polaris?seed=11",
        "/v1/systems",
    ];

    // path → the one body every request of that path produced.
    let mut per_worker_count: Vec<BTreeMap<String, String>> = Vec::new();
    for workers in [1usize, 8] {
        let server = start(workers);
        assert_eq!(server.workers(), workers);
        let addr = server.local_addr();
        let responses: Vec<(String, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|client| {
                    scope.spawn(move || {
                        let mut seen = Vec::new();
                        // Stagger which path each client starts with so
                        // cold-cache computes genuinely race.
                        for turn in 0..paths.len() {
                            let path = paths[(client + turn) % paths.len()];
                            let (status, body) = http_get(addr, path);
                            assert_eq!(status, 200, "{path}");
                            seen.push((path.to_string(), body));
                        }
                        seen
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        let mut agreed: BTreeMap<String, String> = BTreeMap::new();
        for (path, body) in responses {
            match agreed.get(&path) {
                None => {
                    agreed.insert(path, body);
                }
                Some(first) => assert_eq!(
                    first, &body,
                    "{path} answered differently across concurrent clients ({workers} workers)"
                ),
            }
        }
        assert_eq!(agreed.len(), paths.len());
        server.shutdown();
        per_worker_count.push(agreed);
    }
    assert_eq!(
        per_worker_count[0], per_worker_count[1],
        "bodies must not depend on the worker count"
    );
}

/// A repeated footprint query must be a cache hit — the second request
/// skips SystemYear::simulate, observable through /v1/cache/stats.
#[test]
fn repeated_query_hits_the_cache() {
    let server = start(2);
    let addr = server.local_addr();
    let (_, first) = http_get(addr, "/v1/footprint/frontier?seed=3");
    let (_, second) = http_get(addr, "/v1/footprint/frontier?seed=3");
    assert_eq!(first, second, "cached body is byte-identical");

    let (status, stats_body) = http_get(addr, "/v1/cache/stats");
    assert_eq!(status, 200);
    let stats: thirstyflops::serve::api::CacheStatsPayload =
        serde_json::from_str(&stats_body).expect("stats parse");
    assert_eq!(stats.body.misses, 1, "one cold compute");
    assert_eq!(stats.body.hits, 1, "one cache hit — simulate was skipped");
    assert_eq!(stats.body.entries, 1);
    assert_eq!(stats.body.capacity, 4096, "default bound is in place");
    assert_eq!(stats.body.evictions, 0);
    // The simulation cache is observable through the same endpoint: the
    // one cold body computed exactly one system year, and its grid/WUE
    // sub-simulations ran at most once each.
    assert!(stats.simulation.enabled);
    assert!(stats.simulation.system_years.misses >= 1);
    assert!(stats.simulation.grid_years.entries >= 1);
    assert!(stats.simulation.wue_series.entries >= 1);
    // The in-process view agrees with the endpoint.
    assert_eq!(server.cache_stats(), stats.body);
    server.shutdown();
}

/// Distinct parameters must never share a cache entry.
#[test]
fn different_params_get_different_bodies() {
    let server = start(2);
    let addr = server.local_addr();
    let (_, seed3) = http_get(addr, "/v1/footprint/aurora?seed=3");
    let (_, seed4) = http_get(addr, "/v1/footprint/aurora?seed=4");
    assert_ne!(seed3, seed4, "seeds decorrelate years");
    let (_, plain) = http_get(addr, "/v1/rank");
    let (_, adjusted) = http_get(addr, "/v1/rank?adjusted=true");
    assert_ne!(plain, adjusted);
    assert_eq!(server.cache_stats().entries, 4);
    server.shutdown();
}

/// The acceptance-criteria POST path: a scenario spec uploaded to
/// `/v1/scenarios/run` is answered, byte-identical to the CLI, and a
/// repeat is served from the body cache — observable in
/// `/v1/cache/stats`, including the new per-endpoint counters.
#[test]
fn repeated_scenario_post_is_answered_from_the_body_cache() {
    let spec_path = format!(
        "{}/examples/scenarios/drought_grid.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let spec = std::fs::read_to_string(&spec_path).expect("spec ships");
    let server = start(2);
    let addr = server.local_addr();
    let (status, first) = http_post(addr, "/v1/scenarios/run", &spec);
    assert_eq!(status, 200, "{first}");
    let (_, second) = http_post(addr, "/v1/scenarios/run", &spec);
    assert_eq!(first, second, "cached body is byte-identical");
    // Byte-identical to the CLI twin.
    let cli = cli_stdout(&["scenario", "run", &spec_path, "--json"]);
    assert_eq!(first, cli, "POST /v1/scenarios/run vs scenario run --json");

    let (status, stats_body) = http_get(addr, "/v1/cache/stats");
    assert_eq!(status, 200);
    let stats: thirstyflops::serve::api::CacheStatsPayload =
        serde_json::from_str(&stats_body).expect("stats parse");
    assert_eq!(stats.body.misses, 1, "one cold evaluation");
    assert_eq!(stats.body.hits, 1, "the repeat skipped the engine");
    let run_stats = stats
        .endpoints
        .iter()
        .find(|e| e.endpoint == "scenarios_run")
        .expect("per-endpoint counters include scenarios_run");
    assert_eq!(run_stats.requests, 2);
    assert_eq!(run_stats.cache_hits, 1);
    server.shutdown();
}

/// A reformatted but semantically identical spec shares the cache entry
/// (the key is the canonical spec, not the body bytes), while a changed
/// spec gets its own.
#[test]
fn scenario_cache_keys_are_canonical_not_textual() {
    let server = start(2);
    let addr = server.local_addr();
    let original = r#"{"name": "dry", "base": "polaris",
                       "overrides": {"climate": {"wue_scale": 0.5}}}"#;
    let respelled = r#"{
        "seed": 2023,
        "name": "dry",
        "base": "Polaris",
        "overrides": {"climate": {"preset": null, "wue_scale": 0.5}}
    }"#;
    let changed = r#"{"name": "dry", "base": "polaris",
                      "overrides": {"climate": {"wue_scale": 0.6}}}"#;
    let (_, a) = http_post(addr, "/v1/scenarios/run", original);
    let (_, b) = http_post(addr, "/v1/scenarios/run", respelled);
    let (_, c) = http_post(addr, "/v1/scenarios/run", changed);
    assert_eq!(a, b, "respelling shares the canonical entry");
    assert_ne!(a, c);
    let stats = server.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
    // Bad specs are 400s with the parser's message.
    let (status, err_body) = http_post(addr, "/v1/scenarios/run", "{\"nope\": 1}");
    assert_eq!(status, 400);
    assert!(err_body.contains("\"status\": 400"));
    server.shutdown();
}

/// Satellite: `POST /v1/scenarios/sweep` enforces the expansion ceiling
/// with a structured JSON 400 naming the limit and the fix — never a
/// hang, never an unstructured body.
#[test]
fn oversized_sweep_post_gets_structured_json_400() {
    let server = start(1);
    let addr = server.local_addr();
    // 20^3 = 8000 cells, no top_n: over the 4096 materialization cap.
    let oversized = r#"{"name": "big", "base": "polaris", "axes": {
        "climate.wue_scale": [0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4,
                              1.5, 1.6, 1.7, 1.8, 1.9, 2.0, 2.1, 2.2, 2.3, 2.4],
        "pue": [1.05, 1.06, 1.07, 1.08, 1.09, 1.10, 1.11, 1.12, 1.13, 1.14,
                1.15, 1.16, 1.17, 1.18, 1.19, 1.20, 1.21, 1.22, 1.23, 1.24],
        "wsi.site": [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50,
                     0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.82, 0.84, 0.86, 0.88]
    }}"#;
    let (status, body) = http_post(addr, "/v1/scenarios/sweep", oversized);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"status\": 400"), "structured: {body}");
    assert!(body.contains("8000"), "names the expansion: {body}");
    assert!(body.contains("4096"), "names the limit: {body}");
    assert!(body.contains("top_n"), "names the fix: {body}");
    // The server stays healthy and the error was never cached.
    let (status, _) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(server.cache_stats().entries, 0);
    server.shutdown();
}

/// An in-body `top_n` streams over HTTP: the report keeps N rows, is
/// byte-identical to the CLI `--top` twin, and the batch kernel's
/// counters surface in `/v1/cache/stats`.
#[test]
fn top_n_sweep_post_streams_and_batch_stats_surface() {
    let spec_path = format!(
        "{}/examples/scenarios/sweep_siting.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&spec_path).expect("spec ships");
    let streaming = text.replacen('{', "{\"top_n\": 5,", 1);
    let server = start(2);
    let addr = server.local_addr();
    let (status, body) = http_post(addr, "/v1/scenarios/sweep", &streaming);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"top_n\": 5"), "{body}");
    assert!(
        body.contains("\"rank_by\": \"operational_water_l\""),
        "{body}"
    );
    assert!(body.contains("\"scenario_count\": 25"), "{body}");
    assert_eq!(body.matches("\"deltas\"").count(), 5, "five kept rows");
    // Byte-identical to the CLI twin (`--top` is the same override).
    let cli = cli_stdout(&["scenario", "sweep", &spec_path, "--top", "5", "--json"]);
    assert_eq!(body, cli, "POST with top_n vs scenario sweep --top 5");

    let (status, stats_body) = http_get(addr, "/v1/cache/stats");
    assert_eq!(status, 200);
    let stats: thirstyflops::serve::api::CacheStatsPayload =
        serde_json::from_str(&stats_body).expect("stats parse");
    assert!(stats.batch.enabled, "the kernel defaults on");
    assert!(stats.batch.lanes >= 1, "sweep lanes were aggregated");
    assert!(stats.batch.chunks >= 1, "at least one kernel pass ran");
    assert!(stats.batch.topn_rows >= 5, "top-N pushes were counted");
    server.shutdown();
}

/// `serve --log` writes one line per request (method, path, status,
/// bytes, µs, cache verdict) to stderr.
#[test]
fn serve_log_flag_emits_request_lines() {
    use std::io::BufRead;
    let mut child = Command::new(env!("CARGO_BIN_EXE_thirstyflops"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "1", "--log"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("serve starts");
    let stdout = child.stdout.take().expect("stdout piped");
    let banner = std::io::BufReader::new(stdout)
        .lines()
        .next()
        .expect("serve prints a banner")
        .expect("banner reads");
    let addr: SocketAddr = banner
        .split_whitespace()
        .find_map(|w| w.strip_prefix("http://"))
        .expect("banner names the address")
        .parse()
        .expect("address parses");
    let (status, _) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    let (status, _) = http_get(addr, "/v1/systems");
    assert_eq!(status, 200);
    let (status, _) = http_get(addr, "/v1/systems");
    assert_eq!(status, 200);
    child.kill().expect("serve stops on signal");
    let _ = child.wait();
    let mut log = String::new();
    child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut log)
        .expect("stderr reads");
    assert!(
        log.contains("GET /healthz 200"),
        "log line for healthz: {log:?}"
    );
    let systems_lines: Vec<&str> = log
        .lines()
        .filter(|l| l.contains("GET /v1/systems 200"))
        .collect();
    assert_eq!(systems_lines.len(), 2, "{log:?}");
    assert!(systems_lines[0].contains("miss"), "{log:?}");
    assert!(systems_lines[1].contains("hit"), "{log:?}");
    for line in log.lines().filter(|l| l.starts_with("GET ")) {
        assert!(line.contains("us "), "latency field present: {line:?}");
        assert!(line.contains('B'), "byte count present: {line:?}");
    }
}

/// `serve` on the CLI prints the bound ephemeral address and serves.
#[test]
fn cli_serve_reports_ephemeral_port_and_answers() {
    use std::io::BufRead;
    let mut child = Command::new(env!("CARGO_BIN_EXE_thirstyflops"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve starts");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("serve prints a banner")
        .expect("banner reads");
    let addr: SocketAddr = banner
        .split_whitespace()
        .find_map(|w| w.strip_prefix("http://"))
        .expect("banner names the address")
        .parse()
        .expect("address parses");
    assert_ne!(addr.port(), 0, "port 0 resolves to a real port");
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\": \"ok\""));
    child.kill().expect("serve stops on signal");
    let _ = child.wait();
}

// ---------------------------------------------------------------------
// Keep-alive, pipelining, adversarial input, shedding, shutdown.
// ---------------------------------------------------------------------

/// A persistent-connection client: sends requests down one socket and
/// reads `Content-Length`-framed responses, without closing in between.
struct KeepAlive {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl KeepAlive {
    fn connect(addr: SocketAddr) -> KeepAlive {
        let stream = TcpStream::connect(addr).expect("server is listening");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(20)))
            .expect("read timeout sets");
        KeepAlive {
            stream,
            carry: Vec::new(),
        }
    }

    /// One request/response exchange; the connection stays open.
    fn get(&mut self, path: &str) -> (u16, String) {
        write!(
            self.stream,
            "GET {path} HTTP/1.1\r\nHost: keepalive\r\n\r\n"
        )
        .expect("request writes");
        self.read_response()
    }

    fn read_response(&mut self) -> (u16, String) {
        let (status, body, connection) = read_framed(&mut self.stream, &mut self.carry);
        assert_eq!(
            connection.as_deref(),
            Some("keep-alive"),
            "a keep-alive exchange advertises keep-alive"
        );
        (status, body)
    }
}

/// Reads exactly one framed response off `stream`, using `carry` to
/// hold bytes of any pipelined responses that arrived in the same read;
/// returns (status, body, Connection header value).
fn read_framed(stream: &mut TcpStream, carry: &mut Vec<u8>) -> (u16, String, Option<String>) {
    let (status, body, connection, _) = read_framed_full(stream, carry);
    (status, body, connection)
}

/// [`read_framed`], additionally returning the `Retry-After` header
/// value (for the shed/deadline assertions).
fn read_framed_full(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
) -> (u16, String, Option<String>, Option<String>) {
    let mut chunk = [0u8; 2048];
    let head_end = loop {
        if let Some(pos) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("response head reads");
        assert!(n > 0, "connection closed before a full response head");
        carry.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(carry[..head_end].to_vec()).expect("UTF-8 head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line has a code");
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.parse().ok())
        .expect("Content-Length header present");
    let connection = head
        .lines()
        .find_map(|l| l.strip_prefix("Connection: "))
        .map(str::to_string);
    let retry_after = head
        .lines()
        .find_map(|l| l.strip_prefix("Retry-After: "))
        .map(str::to_string);
    let body_start = head_end + 4;
    while carry.len() < body_start + length {
        let n = stream.read(&mut chunk).expect("response body reads");
        assert!(n > 0, "connection closed mid-body");
        carry.extend_from_slice(&chunk[..n]);
    }
    let body =
        String::from_utf8(carry[body_start..body_start + length].to_vec()).expect("UTF-8 body");
    carry.drain(..body_start + length);
    (status, body, connection, retry_after)
}

/// True once the peer has closed: a read yields EOF — or a reset, for
/// connections the server abandoned with unread request bytes — within
/// the timeout, instead of blocking or yielding data.
fn peer_closed(stream: &mut TcpStream) -> bool {
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .expect("read timeout sets");
    let mut byte = [0u8; 1];
    match stream.read(&mut byte) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) => !matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
    }
}

/// Satellite: N requests down one persistent connection produce the
/// same bytes as N one-shot connections — at 1 worker and at 8.
/// (`/healthz` is excluded: its uptime/request counters are
/// legitimately volatile — see `docs/SERVING.md`.)
#[test]
fn keep_alive_bodies_match_one_shot_bodies_across_worker_counts() {
    let paths = [
        "/v1/experiments",
        "/v1/footprint/polaris?seed=5",
        "/v1/systems",
        "/v1/footprint/polaris?seed=5", // repeat: served from cache
        "/v1/rank?seed=5",
        "/v1/experiments", // repeat: served from cache
    ];
    let mut per_worker_count: Vec<Vec<String>> = Vec::new();
    for workers in [1usize, 8] {
        let server = start(workers);
        let addr = server.local_addr();
        let mut conn = KeepAlive::connect(addr);
        let persistent: Vec<String> = paths
            .iter()
            .map(|path| {
                let (status, body) = conn.get(path);
                assert_eq!(status, 200, "{path} ({workers} workers)");
                body
            })
            .collect();
        let one_shot: Vec<String> = paths
            .iter()
            .map(|path| {
                let (status, body) = http_get(addr, path);
                assert_eq!(status, 200, "{path} one-shot ({workers} workers)");
                body
            })
            .collect();
        assert_eq!(
            persistent, one_shot,
            "persistent and one-shot connections must serve identical bytes ({workers} workers)"
        );
        server.shutdown();
        per_worker_count.push(persistent);
    }
    assert_eq!(
        per_worker_count[0], per_worker_count[1],
        "keep-alive bodies must not depend on the worker count"
    );
}

/// Pipelined requests — several written before any response is read —
/// are answered in order on one connection.
#[test]
fn pipelined_requests_are_answered_in_order() {
    let server = start(1);
    let addr = server.local_addr();
    let (_, rank) = http_get(addr, "/v1/rank?seed=2");
    let (_, systems) = http_get(addr, "/v1/systems");

    let mut stream = TcpStream::connect(addr).expect("server is listening");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(20)))
        .expect("read timeout sets");
    // Three requests in one write; the last one asks to close.
    write!(
        stream,
        "GET /v1/rank?seed=2 HTTP/1.1\r\nHost: p\r\n\r\n\
         GET /v1/systems HTTP/1.1\r\nHost: p\r\n\r\n\
         GET /v1/rank?seed=2 HTTP/1.1\r\nHost: p\r\nConnection: close\r\n\r\n"
    )
    .expect("pipelined burst writes");
    let expectations = [
        (&rank, "keep-alive"),
        (&systems, "keep-alive"),
        (&rank, "close"),
    ];
    let mut carry = Vec::new();
    for (i, (expected_body, expected_connection)) in expectations.iter().enumerate() {
        let (status, body, connection) = read_framed(&mut stream, &mut carry);
        assert_eq!(status, 200, "pipelined response #{i}");
        assert_eq!(&&body, expected_body, "pipelined response #{i} bytes");
        assert_eq!(connection.as_deref(), Some(*expected_connection), "#{i}");
    }
    assert!(carry.is_empty(), "no bytes beyond the three responses");
    assert!(peer_closed(&mut stream), "close honored after the burst");
    server.shutdown();
}

/// Satellite: adversarial requests get the right 4xx and a closed
/// connection — never a panic, never a hang.
#[test]
fn adversarial_requests_get_4xx_and_close() {
    let server = start(1);
    let addr = server.local_addr();

    // (raw bytes to send, expected status, label)
    let cases: Vec<(Vec<u8>, u16, &str)> = vec![
        (b"BLARGH\r\n\r\n".to_vec(), 400, "garbage request line"),
        (
            b"GET /healthz HTTP/4.0\r\n\r\n".to_vec(),
            400,
            "unsupported version",
        ),
        (
            b"POST /v1/scenarios/run HTTP/1.1\r\nContent-Length: banana\r\n\r\n".to_vec(),
            400,
            "garbage Content-Length",
        ),
        (
            b"POST /v1/scenarios/run HTTP/1.1\r\nContent-Length: 300000\r\n\r\n".to_vec(),
            413,
            "declared body over 256 KiB",
        ),
        (
            {
                // An actual body over the limit, declared honestly.
                let body = vec![b'x'; 300_000];
                let mut raw = format!(
                    "POST /v1/scenarios/run HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    body.len()
                )
                .into_bytes();
                raw.extend_from_slice(&body);
                raw
            },
            413,
            "oversized body bytes",
        ),
        (
            {
                let mut raw = b"GET /".to_vec();
                raw.extend(std::iter::repeat(b'a').take(9000));
                raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
                raw
            },
            431,
            "head over 8 KiB",
        ),
    ];
    for (raw, expected_status, label) in cases {
        let mut stream = TcpStream::connect(addr).expect("server is listening");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(20)))
            .expect("read timeout sets");
        stream.write_all(&raw).expect("adversarial bytes write");
        let (status, body, connection, retry_after) =
            read_framed_full(&mut stream, &mut Vec::new());
        assert_eq!(status, expected_status, "{label}");
        assert!(
            body.contains(&format!("\"status\": {expected_status}")),
            "{label}: {body}"
        );
        assert_eq!(connection.as_deref(), Some("close"), "{label}");
        // Satellite: over-cap rejections invite a (within-cap) retry;
        // plain parse failures do not.
        let expected_retry = matches!(expected_status, 413 | 431).then(|| "1".to_string());
        assert_eq!(retry_after, expected_retry, "{label}: Retry-After");
        assert!(peer_closed(&mut stream), "{label}: connection must close");
    }

    // A truncated head (client gives up mid-request) earns a 400.
    let mut stream = TcpStream::connect(addr).expect("server is listening");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(20)))
        .expect("read timeout sets");
    stream
        .write_all(b"GET /healthz HTT")
        .expect("partial head writes");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let (status, _, _) = read_framed(&mut stream, &mut Vec::new());
    assert_eq!(status, 400, "truncated head");

    // Pipelined garbage after a valid request: the first answer is
    // normal, the garbage earns a 400, then the connection closes.
    let mut stream = TcpStream::connect(addr).expect("server is listening");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(20)))
        .expect("read timeout sets");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: p\r\n\r\nNONSENSE\r\n\r\n")
        .expect("valid-then-garbage writes");
    let mut carry = Vec::new();
    let (status, _, connection) = read_framed(&mut stream, &mut carry);
    assert_eq!(status, 200, "the valid request is answered first");
    assert_eq!(connection.as_deref(), Some("keep-alive"));
    let (status, _, connection) = read_framed(&mut stream, &mut carry);
    assert_eq!(status, 400, "the pipelined garbage earns a 400");
    assert_eq!(connection.as_deref(), Some("close"));
    assert!(peer_closed(&mut stream), "parse failure closes");

    // The server is still healthy after all of it.
    let (status, _) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "server survives adversarial clients");

    // Satellite: the two over-cap 413s and the 431 above all count into
    // the "shed" metrics family (truncated heads and garbage stay in
    // "other").
    let (status, stats) = http_get(addr, "/v1/cache/stats");
    assert_eq!(status, 200);
    assert_eq!(shed_requests(&stats), 3, "{stats}");
    server.shutdown();
}

/// A request whose declared body never arrives earns a 408 once the
/// read timeout expires — the slowloris guard.
#[test]
fn stalled_body_gets_408_after_the_read_timeout() {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        limits: thirstyflops::serve::Limits {
            idle_timeout: std::time::Duration::from_millis(400),
            read_timeout: std::time::Duration::from_millis(400),
            ..Default::default()
        },
        ..ServerConfig::default()
    })
    .expect("binding port 0 always succeeds");
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).expect("server is listening");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(20)))
        .expect("read timeout sets");
    stream
        .write_all(b"POST /v1/scenarios/run HTTP/1.1\r\nContent-Length: 50\r\n\r\n")
        .expect("head writes");
    // ... and never send the 50 body bytes.
    let (status, body, connection) = read_framed(&mut stream, &mut Vec::new());
    assert_eq!(status, 408, "{body}");
    assert_eq!(connection.as_deref(), Some("close"));
    assert!(peer_closed(&mut stream));
    server.shutdown();
}

/// An idle keep-alive connection closes once the idle timeout passes,
/// freeing its worker for the next connection.
#[test]
fn idle_keep_alive_connections_time_out() {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        limits: thirstyflops::serve::Limits {
            idle_timeout: std::time::Duration::from_millis(300),
            read_timeout: std::time::Duration::from_secs(10),
            ..Default::default()
        },
        ..ServerConfig::default()
    })
    .expect("binding port 0 always succeeds");
    let addr = server.local_addr();
    let mut conn = KeepAlive::connect(addr);
    let (status, _) = conn.get("/healthz");
    assert_eq!(status, 200);
    // Sit idle past the limit: the server closes without a response.
    assert!(
        peer_closed(&mut conn.stream),
        "idle connection closes quietly"
    );
    // The freed worker serves the next client.
    let (status, _) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    server.shutdown();
}

/// Satellite: over-limit connections are shed with a well-formed JSON
/// 503 while an existing keep-alive connection keeps its slot; closing
/// it frees the slot for the next client.
#[test]
fn over_limit_connections_get_json_503() {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        max_connections: 1,
        ..ServerConfig::default()
    })
    .expect("binding port 0 always succeeds");
    let addr = server.local_addr();

    // The one allowed connection, held open.
    let mut holder = KeepAlive::connect(addr);
    let (status, _) = holder.get("/healthz");
    assert_eq!(status, 200);

    // The second concurrent connection is shed with a JSON 503.
    let mut over = TcpStream::connect(addr).expect("connect still accepted");
    over.set_read_timeout(Some(std::time::Duration::from_secs(20)))
        .expect("read timeout sets");
    over.write_all(b"GET /healthz HTTP/1.1\r\nHost: s\r\n\r\n")
        .expect("request writes");
    let (status, body, connection, retry_after) = read_framed_full(&mut over, &mut Vec::new());
    assert_eq!(status, 503);
    assert!(body.contains("\"status\": 503"), "{body}");
    assert!(body.contains("connection limit"), "{body}");
    assert_eq!(connection.as_deref(), Some("close"));
    // Satellite: the shed 503 tells well-behaved clients when to come
    // back instead of letting them hammer the limit.
    assert_eq!(retry_after.as_deref(), Some("1"), "shed 503 Retry-After");
    assert!(peer_closed(&mut over), "shed connection closes");

    // Satellite: the shed is visible in the per-endpoint metrics — the
    // 503 above landed in the dedicated "shed" family, not "other".
    let (status, stats) = holder.get("/v1/cache/stats");
    assert_eq!(status, 200);
    assert!(shed_requests(&stats) >= 1, "{stats}");

    // Releasing the held connection frees the slot (within the worker's
    // ~100 ms poll slice); the next client is served normally.
    drop(holder);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let mut probe = TcpStream::connect(addr).expect("connect");
        probe
            .set_read_timeout(Some(std::time::Duration::from_secs(20)))
            .expect("read timeout sets");
        probe
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: s\r\nConnection: close\r\n\r\n")
            .expect("request writes");
        let (status, _, _) = read_framed(&mut probe, &mut Vec::new());
        if status == 200 {
            break;
        }
        assert_eq!(status, 503);
        assert!(
            std::time::Instant::now() < deadline,
            "slot never freed after the holder closed"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    server.shutdown();
}

// ---------------------------------------------------------------------
// Fault injection & hardened serving (docs/ROBUSTNESS.md)
// ---------------------------------------------------------------------

/// Builds a per-instance (non-global) injector from plan JSON, so each
/// test chaoses its own server without touching the process-wide slot.
fn injector(plan_json: &str) -> std::sync::Arc<thirstyflops::faults::FaultInjector> {
    std::sync::Arc::new(thirstyflops::faults::FaultInjector::new(
        thirstyflops::faults::FaultPlan::from_json(plan_json).expect("test plan parses"),
    ))
}

/// `/readyz` answers readiness over a real socket, separately from
/// `/healthz` (which keeps reporting liveness during a drain).
#[test]
fn readyz_reports_ready_over_tcp() {
    let server = start(1);
    let addr = server.local_addr();
    let (status, ready) = http_get(addr, "/readyz");
    assert_eq!(status, 200);
    assert_eq!(ready, "{\n  \"ready\": true\n}\n");
    let (status, health) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_ne!(ready, health, "readiness and liveness are distinct probes");
    server.shutdown();
}

/// Satellite: a panicking handler (here: an injected panic firing on
/// every request) yields a well-formed JSON 500 and a clean close — and
/// the server keeps serving new connections afterwards.
#[test]
fn injected_handler_panic_yields_json_500_and_the_server_survives() {
    let server = Server::bind_with_faults(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            ..ServerConfig::default()
        },
        Some(injector(
            r#"{"name": "always-panic", "seed": 7,
                "faults": [{"site": "handler_panic", "rate": 1.0}]}"#,
        )),
    )
    .expect("binding port 0 always succeeds");
    let addr = server.local_addr();
    for round in 0..2 {
        let mut stream = TcpStream::connect(addr).expect("server is listening");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(20)))
            .expect("read timeout sets");
        stream
            .write_all(b"GET /v1/systems HTTP/1.1\r\nHost: chaos\r\n\r\n")
            .expect("request writes");
        let (status, body, connection, _) = read_framed_full(&mut stream, &mut Vec::new());
        assert_eq!(status, 500, "round {round}");
        assert!(body.contains("\"status\": 500"), "round {round}: {body}");
        assert!(body.contains("panicked"), "round {round}: {body}");
        assert_eq!(connection.as_deref(), Some("close"), "round {round}");
        assert!(peer_closed(&mut stream), "round {round}: clean close");
    }
    server.shutdown();
}

/// Satellite: injected latency that blows the per-request deadline is
/// converted into a JSON 504 with `Retry-After`, never a stale body.
#[test]
fn injected_latency_past_the_deadline_becomes_a_504() {
    let server = Server::bind_with_faults(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            limits: thirstyflops::serve::Limits {
                request_timeout: Some(std::time::Duration::from_millis(50)),
                ..Default::default()
            },
            ..ServerConfig::default()
        },
        Some(injector(
            r#"{"name": "always-slow", "seed": 7,
                "faults": [{"site": "response_latency", "rate": 1.0, "delay_ms": 200}]}"#,
        )),
    )
    .expect("binding port 0 always succeeds");
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).expect("server is listening");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(20)))
        .expect("read timeout sets");
    stream
        .write_all(b"GET /v1/systems HTTP/1.1\r\nHost: slow\r\n\r\n")
        .expect("request writes");
    let (status, body, connection, retry_after) = read_framed_full(&mut stream, &mut Vec::new());
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("\"status\": 504"), "{body}");
    assert!(body.contains("deadline"), "{body}");
    assert_eq!(retry_after.as_deref(), Some("1"), "504 carries Retry-After");
    assert_eq!(connection.as_deref(), Some("close"));
    assert!(peer_closed(&mut stream));
    server.shutdown();
}

/// An injected truncate cuts the response visibly short (a framing
/// violation the client detects), never silently-wrong bytes: the 200
/// head declares more body than ever arrives, then the peer closes.
#[test]
fn injected_truncate_cuts_the_response_short_never_corrupts_it() {
    let server = Server::bind_with_faults(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            ..ServerConfig::default()
        },
        Some(injector(
            r#"{"name": "always-truncate", "seed": 7,
                "faults": [{"site": "write_truncate", "rate": 1.0}]}"#,
        )),
    )
    .expect("binding port 0 always succeeds");
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).expect("server is listening");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(20)))
        .expect("read timeout sets");
    stream
        .write_all(b"GET /v1/systems HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("request writes");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("reads until the close");
    let raw = String::from_utf8(raw).expect("UTF-8 half-response");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .expect("half the wire image still covers the head");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let declared: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.parse().ok())
        .expect("Content-Length header present");
    assert!(
        body.len() < declared,
        "truncation must be detectable: got {} of {declared} declared bytes",
        body.len()
    );
    server.shutdown();
}

/// Satellite (slow clients): a client dribbling its request one byte at
/// a time — well inside the read timeout — is served the exact same
/// bytes as a normal client.
#[test]
fn byte_at_a_time_requests_are_served_in_full() {
    let server = start(1);
    let addr = server.local_addr();
    let (status, expected) = http_get(addr, "/v1/systems");
    assert_eq!(status, 200);

    let mut stream = TcpStream::connect(addr).expect("server is listening");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(20)))
        .expect("read timeout sets");
    for byte in b"GET /v1/systems HTTP/1.1\r\nHost: drip\r\nConnection: close\r\n\r\n" {
        stream.write_all(&[*byte]).expect("one byte writes");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let (status, body, connection, _) = read_framed_full(&mut stream, &mut Vec::new());
    assert_eq!(status, 200);
    assert_eq!(body, expected, "dribbled request gets identical bytes");
    assert_eq!(connection.as_deref(), Some("close"));
    server.shutdown();
}

/// Satellite (slow clients): a slowloris peer that starts a request
/// head and then goes silent gets its 408 once the read timeout fires —
/// and the worker slot is reclaimed for the next client.
#[test]
fn slow_header_trickle_gets_408_and_frees_the_worker() {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        limits: thirstyflops::serve::Limits {
            read_timeout: std::time::Duration::from_millis(300),
            ..Default::default()
        },
        ..ServerConfig::default()
    })
    .expect("binding port 0 always succeeds");
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).expect("server is listening");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(20)))
        .expect("read timeout sets");
    // An unfinished head, then silence: the read timeout must fire.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nX-Slow: ")
        .expect("partial head writes");
    let (status, body, connection, _) = read_framed_full(&mut stream, &mut Vec::new());
    assert_eq!(status, 408, "{body}");
    assert!(body.contains("\"status\": 408"), "{body}");
    assert_eq!(connection.as_deref(), Some("close"));
    assert!(peer_closed(&mut stream));
    // The lone worker is free again.
    let (status, _) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "worker slot reclaimed after the slowloris");
    server.shutdown();
}

/// Satellite (slow clients): a client that disconnects mid-body gets a
/// 400 for the half-request, and the worker slot is reclaimed.
#[test]
fn mid_body_disconnect_gets_400_and_frees_the_worker() {
    let server = start(1);
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).expect("server is listening");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(20)))
        .expect("read timeout sets");
    stream
        .write_all(b"POST /v1/scenarios/run HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"name\"")
        .expect("head and partial body write");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let (status, body, connection) = read_framed(&mut stream, &mut Vec::new());
    assert_eq!(status, 400, "{body}");
    assert_eq!(connection.as_deref(), Some("close"));
    assert!(peer_closed(&mut stream));
    // The lone worker is free again.
    let (status, _) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "worker slot reclaimed after the disconnect");
    server.shutdown();
}

/// Satellite: a bounded drain answers every request in flight — byte-
/// identically at 1 worker and at 8 — and late connects are cleanly
/// refused because the listener is closed, not left queueing.
#[test]
fn drain_answers_in_flight_requests_identically_across_worker_counts() {
    let paths = [
        "/v1/systems",
        "/v1/rank?seed=7",
        "/v1/footprint/polaris?seed=7",
        "/v1/experiments",
    ];
    let mut per_worker_count: Vec<Vec<String>> = Vec::new();
    for workers in [1usize, 8] {
        // Injected latency on every response keeps the requests in
        // flight when the drain begins.
        let server = Server::bind_with_faults(
            &ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers,
                ..ServerConfig::default()
            },
            Some(injector(
                r#"{"name": "drain-hold", "seed": 7,
                    "faults": [{"site": "response_latency", "rate": 1.0, "delay_ms": 150}]}"#,
            )),
        )
        .expect("binding port 0 always succeeds");
        let addr = server.local_addr();
        let mut streams: Vec<TcpStream> = paths
            .iter()
            .map(|path| {
                let mut stream = TcpStream::connect(addr).expect("server is listening");
                stream
                    .set_read_timeout(Some(std::time::Duration::from_secs(20)))
                    .expect("read timeout sets");
                write!(stream, "GET {path} HTTP/1.1\r\nHost: drain\r\n\r\n")
                    .expect("request writes");
                stream
            })
            .collect();
        // Let the accept loop adopt all four connections before the
        // drain closes the listener.
        std::thread::sleep(std::time::Duration::from_millis(300));
        assert!(
            server.drain(std::time::Duration::from_secs(10)),
            "drain must complete within the bound ({workers} workers)"
        );
        // Every in-flight request was answered before its close; the
        // responses sit buffered in the sockets.
        let bodies: Vec<String> = streams
            .iter_mut()
            .zip(paths)
            .map(|(stream, path)| {
                let (status, body, _) = read_framed(stream, &mut Vec::new());
                assert_eq!(status, 200, "{path} during drain ({workers} workers)");
                assert!(
                    peer_closed(stream),
                    "{path}: drained connection closes ({workers} workers)"
                );
                body
            })
            .collect();
        // Late connects get a clean refusal: the listener is gone. (If
        // the kernel still completes a handshake, no bytes ever come.)
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut late) => {
                late.set_read_timeout(Some(std::time::Duration::from_secs(5)))
                    .expect("read timeout sets");
                let _ = late.write_all(b"GET /healthz HTTP/1.1\r\nHost: late\r\n\r\n");
                assert!(
                    peer_closed(&mut late),
                    "a late connection must be refused, not served or hung"
                );
            }
        }
        per_worker_count.push(bodies);
    }
    assert_eq!(
        per_worker_count[0], per_worker_count[1],
        "drained in-flight bodies must not depend on the worker count"
    );
}

/// Acceptance: two `loadgen --chaos` replays of the same plan + seed
/// produce bit-identical chaos accounting at different worker counts,
/// with zero verification failures — the whole-stack determinism check
/// (`./ci.sh chaos-smoke` runs the bigger version).
#[test]
fn cli_chaos_replays_are_bit_identical_across_worker_counts() {
    let run = |workers: &str| {
        cli_stdout(&[
            "loadgen",
            "--mix",
            "examples/loadmix/bench.json",
            "--requests",
            "120",
            "--connections",
            "4",
            "--workers",
            workers,
            "--retries",
            "32",
            "--request-timeout",
            "2000",
            "--chaos",
            "examples/faults/smoke.json",
            "--json",
        ])
    };
    let one = run("1");
    let eight = run("8");
    for out in [&one, &eight] {
        assert!(out.contains("\"mismatches\": 0"), "{out}");
        assert!(out.contains("\"errors\": 0"), "{out}");
        assert!(out.contains("\"unrecovered\": 0"), "{out}");
    }
    let chaos_of = |out: &str| {
        out.split("\"chaos\"")
            .nth(1)
            .expect("combined JSON has a chaos section")
            .to_string()
    };
    assert_eq!(
        chaos_of(&one),
        chaos_of(&eight),
        "chaos accounting must be bit-identical across worker counts"
    );
}

/// Satellite: shutdown drains keep-alive connections — the request in
/// flight is answered (with `Connection: close`), idle connections are
/// closed, and shutdown returns promptly instead of waiting out the
/// idle timeout.
#[test]
fn shutdown_drains_keep_alive_connections_promptly() {
    let server = start(2);
    let addr = server.local_addr();
    let mut conn = KeepAlive::connect(addr);
    let (status, _) = conn.get("/v1/systems");
    assert_eq!(status, 200);

    // The connection now sits idle (default idle timeout: 5 s).
    let started = std::time::Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < std::time::Duration::from_secs(3),
        "shutdown must not wait out the idle timeout, took {:?}",
        started.elapsed()
    );
    assert!(
        peer_closed(&mut conn.stream),
        "the idle keep-alive connection was closed by shutdown"
    );
}
