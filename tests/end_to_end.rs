//! Cross-crate end-to-end tests: the full pipeline over every cataloged
//! system, determinism, and consistency identities between independently
//! computed quantities.

use thirstyflops::carbon;
use thirstyflops::catalog::SystemId;
use thirstyflops::core::{AnnualReport, FootprintModel, SystemYear};
use thirstyflops::scheduler::{GeoBalancer, Policy, SiteSeries};
use thirstyflops::units::Liters;

#[test]
fn every_cataloged_system_produces_a_sane_report() {
    for id in SystemId::ALL {
        let report = FootprintModel::reference(id).annual_report(42);
        assert!(report.embodied_total().value() > 1e5, "{id} embodied tiny");
        assert!(
            report.operational_total().value() > 1e6,
            "{id} operational tiny"
        );
        assert!(report.mean_wue.value() > 0.0, "{id}");
        assert!(report.mean_ewf.value() > 0.0, "{id}");
        // Eq. 8 identity at annual means.
        let expected_wi = report.mean_wue.value()
            + FootprintModel::reference(id).spec().pue.value() * report.mean_ewf.value();
        assert!(
            (report.mean_wi.value() - expected_wi).abs() < 1e-9,
            "{id}: WI identity"
        );
        // Shares in range.
        let d = report.direct_share.value();
        assert!((0.0..=1.0).contains(&d), "{id}: direct share {d}");
    }
}

#[test]
fn operational_water_equals_energy_times_intensity() {
    // W_operational = E·WI only holds exactly when intensity is constant;
    // with hourly covariance the series total and the means product must
    // still agree within the covariance term (< 15 % here).
    let year = SystemYear::simulate(SystemId::Marconi, 1);
    let op = year.operational().total().value();
    let means_product = year.energy.total() * year.water_intensity().mean();
    let rel = (op - means_product).abs() / op;
    assert!(rel < 0.15, "covariance term {rel}");
}

#[test]
fn reports_are_bit_deterministic() {
    let a = FootprintModel::reference(SystemId::Polaris).annual_report(2023);
    let b = FootprintModel::reference(SystemId::Polaris).annual_report(2023);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

#[test]
fn different_years_change_energy_not_embodied() {
    let a = FootprintModel::reference(SystemId::Marconi).annual_report(2022);
    let b = FootprintModel::reference(SystemId::Marconi).annual_report(2023);
    assert_ne!(a.energy, b.energy);
    assert_eq!(a.embodied, b.embodied);
}

#[test]
fn carbon_and_water_pipelines_share_the_same_energy() {
    let year = SystemYear::simulate(SystemId::Frontier, 5);
    let water = year.operational();
    let co2 = carbon::system_year_carbon(&year);
    // Facility energy from the carbon side must equal PUE × IT energy.
    let expected = year.annual_energy().value() * year.spec.pue.value();
    assert!((co2.facility_energy.value() - expected).abs() < 1e-6 * expected);
    assert!(water.total().value() > 0.0 && co2.total.value() > 0.0);
}

#[test]
fn geo_balancer_over_real_system_years_respects_policy_order() {
    let frontier = SiteSeries::from_year(&SystemYear::simulate(SystemId::Frontier, 3));
    let polaris = SiteSeries::from_year(&SystemYear::simulate(SystemId::Polaris, 3));
    let balancer = GeoBalancer::new(vec![frontier, polaris]).unwrap();
    let water = balancer.run_year(500.0, Policy::WaterOnly);
    let carbon = balancer.run_year(500.0, Policy::CarbonOnly);
    assert!(water.water.value() <= carbon.water.value() + 1e-6);
    assert!(carbon.carbon.value() <= water.carbon.value() + 1e-6);
}

#[test]
fn embodied_water_is_megaliter_scale() {
    // The paper's Frontier anecdotes put HDD-tier water at tens of
    // megaliters; the full machine lands between 10 and 100 ML.
    let report = FootprintModel::reference(SystemId::Frontier).annual_report(1);
    let total: Liters = report.embodied_total();
    assert!(
        (1e7..1e8).contains(&total.value()),
        "Frontier embodied {} L",
        total.value()
    );
}

#[test]
fn synthetic_fleet_runs_through_the_pipeline() {
    // §6(b): arbitrary approximated systems use the same models.
    let fleet = thirstyflops::catalog::synthesize_fleet(3, 77);
    for spec in fleet {
        let nodes = spec.nodes;
        let year = SystemYear::simulate_spec(spec, 1);
        assert_eq!(year.spec.nodes, nodes, "custom node count must be honored");
        let report = AnnualReport::from_year(&year);
        assert!(report.operational_total().value() > 0.0);
        assert!(report.embodied_total().value() > 0.0);
    }
}

#[test]
fn custom_spec_changes_the_simulation() {
    // Regression test: FootprintModel::from_spec must simulate the
    // *custom* spec, not fall back to the reference system.
    let mut spec = thirstyflops::catalog::SystemSpec::reference(SystemId::Polaris);
    spec.nodes = 100;
    let custom = FootprintModel::from_spec(spec).annual_report(3);
    let reference = FootprintModel::reference(SystemId::Polaris).annual_report(3);
    assert!(
        custom.energy.value() < 0.5 * reference.energy.value(),
        "100-node system must consume far less than the 560-node reference"
    );
}

#[test]
fn extension_systems_are_usable() {
    // §6: Aurora and El Capitan run through the same pipeline.
    for id in [SystemId::Aurora, SystemId::ElCapitan] {
        let report = AnnualReport::from_year(&SystemYear::simulate(id, 9));
        assert!(report.operational_total().value() > 0.0, "{id}");
        assert!(report.adjusted_wi.value() > 0.0, "{id}");
    }
}
