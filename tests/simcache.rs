//! Correctness tests for the memoized simulation substrate
//! (`core::simcache`): the cached paths must be *observably faster*
//! (Arc sharing, counters) while producing *byte-identical* results to
//! the fully uncached reference path, at every thread count.
//!
//! Counter-sensitive tests serialize on [`lock`] because the caches are
//! process-wide and the test harness runs `#[test]`s concurrently.

use std::process::Command;
use std::sync::{Arc, Mutex, MutexGuard};

use thirstyflops::catalog::{SystemId, SystemSpec};
use thirstyflops::core::{simcache, AnnualReport, SystemYear};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs the CLI with the given args and env, returning stdout bytes.
fn cli_stdout(args: &[&str], envs: &[(&str, &str)]) -> Vec<u8> {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_thirstyflops"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("CLI binary runs");
    assert!(out.status.success(), "CLI {args:?} failed: {out:?}");
    out.stdout
}

/// A repeated `SystemYear::simulate(id, seed)` is an `Arc` clone of the
/// first result — no re-simulation — asserted via both pointer identity
/// and the cache counters.
#[test]
fn repeated_simulate_is_an_arc_clone() {
    let _guard = lock();
    let seed = 990_001; // unique to this test ⇒ guaranteed cold
    let before = simcache::stats();
    let first = SystemYear::simulate(SystemId::Fugaku, seed);
    let second = SystemYear::simulate(SystemId::Fugaku, seed);
    assert!(Arc::ptr_eq(&first, &second), "repeat must share storage");
    let after = simcache::stats();
    assert_eq!(
        after.system_years.misses - before.system_years.misses,
        1,
        "exactly one simulation ran"
    );
    assert_eq!(
        after.system_years.hits - before.system_years.hits,
        1,
        "the repeat was a cache hit"
    );
}

/// Two systems in the same grid region share one `GridYear`
/// computation: simulating both consults the grid layer twice but
/// computes at most once (Polaris and Aurora are both Northern
/// Illinois).
#[test]
fn same_region_systems_share_one_grid_computation() {
    let _guard = lock();
    let seed = 990_002;
    let before = simcache::stats();
    let polaris = SystemYear::simulate(SystemId::Polaris, seed);
    let aurora = SystemYear::simulate(SystemId::Aurora, seed);
    assert_eq!(polaris.spec.region, aurora.spec.region);
    let after = simcache::stats();
    let hits = after.grid_years.hits - before.grid_years.hits;
    let misses = after.grid_years.misses - before.grid_years.misses;
    assert_eq!(hits + misses, 2, "both cold years consulted the layer");
    assert!(misses <= 1, "the region simulated at most once");
    assert!(hits >= 1, "the second system reused the first's grid year");
    // And the shared series are byte-identical across the two systems.
    assert_eq!(polaris.ewf.values(), aurora.ewf.values());
    assert_eq!(polaris.carbon.values(), aurora.carbon.values());
}

/// Single-flight: eight threads racing on one cold key compute it
/// exactly once and all share the winner's `Arc`.
#[test]
fn racing_first_touches_compute_once() {
    let _guard = lock();
    let seed = 990_003;
    let before = simcache::stats();
    let years: Vec<Arc<SystemYear>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| scope.spawn(move || SystemYear::simulate(SystemId::Marconi, seed)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(years.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
    let after = simcache::stats();
    assert_eq!(
        after.system_years.misses - before.system_years.misses,
        1,
        "single-flight: one compute under 8 racing threads"
    );
    assert_eq!(after.system_years.hits - before.system_years.hits, 7);
}

/// The cached path and the fully uncached reference path produce
/// byte-identical telemetry, reports, and figure frames.
#[test]
fn cached_and_uncached_results_are_bit_identical() {
    let _guard = lock();
    let seed = 990_004;
    for id in [SystemId::Polaris, SystemId::ElCapitan] {
        let cached = SystemYear::simulate(id, seed);
        let uncached = SystemYear::simulate_uncached(SystemSpec::reference(id), seed);
        assert_eq!(cached.utilization.values(), uncached.utilization.values());
        assert_eq!(cached.energy.values(), uncached.energy.values());
        assert_eq!(cached.wue.values(), uncached.wue.values());
        assert_eq!(cached.ewf.values(), uncached.ewf.values());
        assert_eq!(cached.carbon.values(), uncached.carbon.values());
        // Reports and frame exports (the figure inputs) agree exactly.
        assert_eq!(
            AnnualReport::from_year(&cached),
            AnnualReport::from_year(&uncached)
        );
        assert_eq!(
            cached.hourly_frame().to_csv(),
            uncached.hourly_frame().to_csv()
        );
        assert_eq!(
            cached.monthly_frame().to_csv(),
            uncached.monthly_frame().to_csv()
        );
    }
}

/// CLI `--json` bodies are byte-identical with and without
/// `--no-sim-cache` (and with the env-var spelling), at
/// `THIRSTYFLOPS_THREADS=1` and `8`. This is the end-to-end determinism
/// contract: caching is invisible in the bytes.
#[test]
fn cli_json_bodies_identical_with_and_without_cache() {
    let cases: [&[&str]; 3] = [
        &["footprint", "polaris", "--seed", "7", "--json"],
        &["scenario", "fugaku", "--seed", "7", "--json"],
        &["experiments", "fig07", "--json"],
    ];
    for args in cases {
        let mut bodies: Vec<Vec<u8>> = Vec::new();
        for threads in ["1", "8"] {
            let env = [("THIRSTYFLOPS_THREADS", threads)];
            let cached = cli_stdout(args, &env);
            let uncached = {
                let mut flagged = args.to_vec();
                flagged.push("--no-sim-cache");
                cli_stdout(&flagged, &env)
            };
            let env_disabled = cli_stdout(
                args,
                &[
                    ("THIRSTYFLOPS_THREADS", threads),
                    ("THIRSTYFLOPS_NO_SIM_CACHE", "1"),
                ],
            );
            assert_eq!(cached, uncached, "{args:?} at {threads} threads");
            assert_eq!(cached, env_disabled, "{args:?} env spelling");
            assert!(!cached.is_empty());
            bodies.push(cached);
        }
        assert_eq!(
            bodies[0], bodies[1],
            "{args:?} must not depend on the thread count"
        );
    }
}

/// `--no-sim-cache` really bypasses the memo layers: repeated simulates
/// allocate fresh storage (still identical bytes).
#[test]
fn disabled_cache_recomputes() {
    let _guard = lock();
    simcache::set_enabled(false);
    let a = SystemYear::simulate(SystemId::Frontier, 990_005);
    let b = SystemYear::simulate(SystemId::Frontier, 990_005);
    simcache::set_enabled(true);
    assert!(!Arc::ptr_eq(&a, &b), "disabled cache must compute twice");
    assert_eq!(a.energy.values(), b.energy.values());
    assert_eq!(a.ewf.values(), b.ewf.values());
}
