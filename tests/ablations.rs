//! Accuracy ablations for the design choices DESIGN.md calls out: what is
//! actually lost by coarser accounting, a simpler scheduler policy, or
//! the uniform scarcity form.

use thirstyflops::catalog::SystemId;
use thirstyflops::core::{OperationalBreakdown, ScarcityAdjustment, SystemYear, WaterIntensity};
use thirstyflops::timeseries::Month;
use thirstyflops::units::{KilowattHours, LitersPerKilowattHour, WaterScarcityIndex};
use thirstyflops::workload::{ClusterSim, TraceConfig, TraceGenerator};

/// Operational water from (a) hourly series, (b) monthly aggregates,
/// (c) annual means. Monthly must sit between hourly and annual in error.
#[test]
fn accounting_granularity_error_ordering() {
    for id in [SystemId::Marconi, SystemId::Frontier] {
        let year = SystemYear::simulate(id, 11);
        let hourly =
            OperationalBreakdown::from_series(&year.energy, &year.wue, year.spec.pue, &year.ewf)
                .total()
                .value();

        let e_m = year.energy.monthly_sum();
        let wue_m = year.wue.monthly_mean();
        let ewf_m = year.ewf.monthly_mean();
        let monthly: f64 = Month::ALL
            .iter()
            .map(|&m| e_m.get(m) * (wue_m.get(m) + year.spec.pue.value() * ewf_m.get(m)))
            .sum();

        let annual = OperationalBreakdown::from_totals(
            KilowattHours::new(year.energy.total()),
            LitersPerKilowattHour::new(year.wue.mean()),
            year.spec.pue,
            LitersPerKilowattHour::new(year.ewf.mean()),
        )
        .total()
        .value();

        let err_monthly = (monthly - hourly).abs() / hourly;
        let err_annual = (annual - hourly).abs() / hourly;
        // Coarser accounting loses the energy-intensity covariance; the
        // monthly view recovers most of it.
        assert!(
            err_monthly <= err_annual + 1e-9,
            "{id}: monthly {err_monthly} vs annual {err_annual}"
        );
        assert!(
            err_annual < 0.2,
            "{id}: annual error {err_annual} too large to trust the sim"
        );
        assert!(err_monthly < 0.05, "{id}: monthly error {err_monthly}");
    }
}

/// EASY backfill recovers utilization and slashes waits vs plain FCFS on
/// a contended trace.
#[test]
fn backfill_recovers_utilization() {
    let cfg = TraceConfig {
        cluster_nodes: 512,
        target_utilization: 0.85,
        mean_duration_hours: 8.0,
        mean_width_fraction: 0.06,
        seed: 17,
    };
    let jobs = TraceGenerator::new(cfg).unwrap().generate_year();
    let (_, easy) = ClusterSim::new(512).unwrap().simulate_year(&jobs);
    let (_, fcfs) = ClusterSim::with_backfill(512, false)
        .unwrap()
        .simulate_year(&jobs);
    assert!(easy.mean_utilization >= fcfs.mean_utilization);
    assert!(
        easy.mean_wait_hours <= fcfs.mean_wait_hours,
        "EASY waits {} vs FCFS {}",
        easy.mean_wait_hours,
        fcfs.mean_wait_hours
    );
}

/// The uniform Eq. 9 form misprices systems whose plant fleet sits in a
/// different scarcity context than the site — quantified.
#[test]
fn uniform_wsi_mispricing() {
    // Frontier-like: wet site (0.10) fed partly by plants at 0.14.
    let wi = WaterIntensity::new(
        LitersPerKilowattHour::new(4.6),
        thirstyflops::units::Pue::new(1.05).unwrap(),
        LitersPerKilowattHour::new(3.9),
    );
    let split = ScarcityAdjustment {
        direct_wsi: WaterScarcityIndex::new(0.10).unwrap(),
        indirect_wsi: WaterScarcityIndex::new(0.30).unwrap(),
    };
    let split_value = split.adjust(wi).value();
    let uniform_site =
        ScarcityAdjustment::adjust_uniform(wi, WaterScarcityIndex::new(0.10).unwrap()).value();
    // Using only the site WSI underprices the indirect component.
    assert!(split_value > uniform_site);
    let underpricing = 1.0 - uniform_site / split_value;
    assert!(
        underpricing > 0.2,
        "uniform form underprices by only {underpricing}"
    );
}

/// Heat-wave injection: a one-week +8 °C event measurably raises annual
/// direct water, and July's direct intensity specifically.
#[test]
fn heat_wave_raises_direct_water() {
    let year = SystemYear::simulate(SystemId::Frontier, 13);
    let spec = &year.spec;
    let base_climate = spec.climate.generate();
    let hot_climate = base_climate.with_heat_wave(190, 7, 8.0).unwrap();
    let wue_model = spec.climate.wue_model();
    let base_wue = wue_model.hourly_series(&base_climate);
    let hot_wue = wue_model.hourly_series(&hot_climate);

    let base_direct = year.energy.mul(&base_wue).total();
    let hot_direct = year.energy.mul(&hot_wue).total();
    assert!(hot_direct > base_direct);
    // July mean WUE rises by a visible margin.
    let base_july = base_wue.monthly_mean().get(Month::July);
    let hot_july = hot_wue.monthly_mean().get(Month::July);
    assert!(
        hot_july > base_july * 1.05,
        "July WUE {base_july} -> {hot_july}"
    );
    // No other month changed.
    assert_eq!(
        base_wue.monthly_mean().get(Month::March),
        hot_wue.monthly_mean().get(Month::March)
    );
}

/// Grid outage injection: losing hydro during the melt season makes
/// Marconi's water cheaper but its carbon dearer — the capping trade-off
/// arising from a failure instead of a policy.
#[test]
fn hydro_outage_trades_water_for_carbon() {
    use thirstyflops::grid::{EnergySource, GridRegion, RegionId};
    let region = GridRegion::preset(RegionId::EmiliaRomagna);
    let base = region.simulate_year();
    let out = region
        .simulate_year_with_outage(EnergySource::Hydro, 120 * 24, 150 * 24)
        .unwrap();
    assert!(out.ewf().mean() < base.ewf().mean());
    assert!(out.carbon().mean() > base.carbon().mean());
}
