//! Determinism and export tests for the causal tracing layer
//! (docs/OBSERVABILITY.md).
//!
//! The contract: tracing must never change a command's output, and the
//! span-tree *shape* — folded stack paths and their counts — must be
//! bit-identical across thread counts and cache modes. Durations are
//! wall-clock and exempt. The Chrome `trace_event` export must be valid
//! JSON with only complete-span (`"X"`) and fault-instant (`"i"`)
//! events, and the serving layer must echo `X-Request-Id` and answer
//! `GET /v1/trace` with parseable JSON under concurrent load.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Command, Output, Stdio};

use thirstyflops::obs::report::ProfileReport;
use thirstyflops::serve::{Server, ServerConfig};

const SWEEP: [&str; 3] = ["scenario", "sweep", "examples/scenarios/sweep_siting.json"];

fn run(args: &[&str]) -> Output {
    let out = Command::new(env!("CARGO_BIN_EXE_thirstyflops"))
        .args(args)
        .output()
        .expect("CLI binary runs");
    assert!(out.status.success(), "CLI {args:?} failed: {out:?}");
    out
}

/// Parses the `--profile --json` stderr payload.
fn profile(out: &Output) -> ProfileReport {
    let stderr = String::from_utf8(out.stderr.clone()).expect("stderr is UTF-8");
    serde_json::from_str(&stderr).expect("stderr is a profile report")
}

/// The deterministic half of the folded rollup: `(path, count)` pairs
/// with the wall-clock `self_ns` dropped.
fn shape(report: &ProfileReport) -> Vec<(String, u64)> {
    report
        .folded
        .iter()
        .map(|f| (f.stack.clone(), f.count))
        .collect()
}

/// A scratch path under the target-adjacent temp dir, unique per test.
fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "thirstyflops_trace_{}_{tag}.json",
        std::process::id()
    ))
}

/// Tree-shape contract, thread axis: the folded stacks — every span's
/// ancestor path and the number of spans closed on it — are identical
/// at 1 and 8 threads, because chunk workers attach to the trace
/// context captured before the fan-out (docs/CONCURRENCY.md, rule 7).
#[test]
fn folded_shape_is_identical_across_thread_counts() {
    let one = run(&[&SWEEP[..], &["--json", "--profile", "--threads", "1"]].concat());
    let eight = run(&[&SWEEP[..], &["--json", "--profile", "--threads", "8"]].concat());
    assert_eq!(one.stdout, eight.stdout, "sweep output depends on threads");
    let shape_1 = shape(&profile(&one));
    let shape_8 = shape(&profile(&eight));
    assert_eq!(shape_1, shape_8, "span-tree shape depends on thread count");
    // The rollup actually attributed the workload sub-stages, with
    // their causal parents in the path.
    assert!(
        shape_1
            .iter()
            .any(|(path, n)| path.ends_with("trace_gen") && path.contains(';') && *n > 0),
        "{shape_1:?}"
    );
    assert!(
        shape_1
            .iter()
            .any(|(path, n)| path.ends_with("cluster_sim") && *n > 0),
        "{shape_1:?}"
    );
}

/// Tree-shape contract, cache axis: memoization elides repeated
/// computation but never re-parents or duplicates the spans that do
/// run, so the folded shape matches with the cache on and off.
#[test]
fn folded_shape_is_identical_across_cache_modes() {
    let cached = run(&[&SWEEP[..], &["--json", "--profile"]].concat());
    let uncached = run(&[&SWEEP[..], &["--json", "--profile", "--no-sim-cache"]].concat());
    assert_eq!(cached.stdout, uncached.stdout, "cache mode altered output");
    assert_eq!(
        shape(&profile(&cached)),
        shape(&profile(&uncached)),
        "span-tree shape depends on cache mode"
    );
}

/// Tentpole acceptance: tracing off, recording, and sampled must all
/// produce byte-identical stdout — the trace goes to a file, never
/// into command output.
#[test]
fn stdout_is_byte_identical_with_tracing_off_on_and_sampled() {
    let on_path = scratch("on");
    let sampled_path = scratch("sampled");
    let off = run(&["rank", "--json"]);
    let on = run(&["rank", "--json", "--trace-out", on_path.to_str().unwrap()]);
    let sampled = run(&[
        "rank",
        "--json",
        "--trace-out",
        sampled_path.to_str().unwrap(),
        "--trace-sample",
        "1/4",
    ]);
    assert_eq!(off.stdout, on.stdout, "--trace-out altered stdout");
    assert_eq!(off.stdout, sampled.stdout, "--trace-sample altered stdout");
    assert!(off.stderr.is_empty(), "no stderr without tracing");
    // The CLI's root trace is ordinal 0, so it records at every
    // sampling rate — both files hold a real trace.
    for path in [&on_path, &sampled_path] {
        let text = std::fs::read_to_string(path).expect("trace file written");
        assert!(text.contains("\"traceEvents\""), "{path:?}: {text}");
        std::fs::remove_file(path).ok();
    }
}

/// The exported file is valid Chrome `trace_event` JSON (object
/// format): only complete-span and instant events, every event carries
/// the causal ids, and the workload sub-stages are attributed.
#[test]
fn trace_export_is_valid_chrome_json() {
    let path = scratch("chrome");
    run(&["rank", "--profile", "--trace-out", path.to_str().unwrap()]);
    let text = std::fs::read_to_string(&path).expect("trace file written");
    std::fs::remove_file(&path).ok();
    let value: serde::Value = serde_json::from_str(&text).expect("trace file is valid JSON");
    let top = value.as_object().expect("trace is a JSON object");
    let keys: Vec<&str> = top.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, ["displayTimeUnit", "otherData", "traceEvents"]);
    let events = top
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, v)| v.as_array())
        .expect("traceEvents is an array");
    assert!(!events.is_empty(), "a cold rank records spans");
    let mut names = Vec::new();
    for event in events {
        let fields = event.as_object().expect("events are objects");
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let (name, ph) = match (get("name"), get("ph")) {
            (Some(serde::Value::Str(name)), Some(serde::Value::Str(ph))) => (name, ph),
            other => panic!("event missing name/ph: {other:?}"),
        };
        assert!(ph == "X" || ph == "i", "unexpected phase {ph:?} on {name}");
        if ph == "X" {
            assert!(get("dur").is_some(), "span {name} has no duration");
        }
        for key in ["ts", "pid", "tid", "args"] {
            assert!(get(key).is_some(), "event {name} missing {key}");
        }
        names.push(name.clone());
    }
    for stage in ["trace_gen", "cluster_sim", "power_model", "workload_sim"] {
        assert!(
            names.iter().any(|n| n == stage),
            "cold rank trace attributes {stage}: {names:?}"
        );
    }
}

/// Issues one GET with an optional `X-Request-Id`; returns the raw
/// head and the body.
fn http_get(addr: SocketAddr, path: &str, request_id: Option<&str>) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("server is listening");
    let id_line = request_id.map_or(String::new(), |id| format!("X-Request-Id: {id}\r\n"));
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\n{id_line}Connection: close\r\n\r\n"
    )
    .expect("request writes");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response reads");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .expect("response has a blank line");
    (head.to_string(), body.to_string())
}

/// Extracts the echoed `X-Request-Id` header from a response head.
fn echoed_id(head: &str) -> Option<String> {
    head.lines()
        .find_map(|l| l.strip_prefix("X-Request-Id: "))
        .map(str::to_string)
}

/// `GET /v1/trace` answers valid Chrome JSON under concurrent load,
/// client-supplied request ids are echoed verbatim, and server-minted
/// ids are echoed when the client sends none.
#[test]
fn trace_endpoint_and_request_id_echo_under_concurrent_load() {
    thirstyflops::obs::trace::set_enabled(true);
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("binding port 0 always succeeds");
    let addr = server.local_addr();

    // A client-supplied id round-trips verbatim; a missing one gets a
    // server-minted `tf-` ordinal id.
    let (head, _) = http_get(addr, "/healthz", Some("it-echo-1"));
    assert_eq!(echoed_id(&head).as_deref(), Some("it-echo-1"), "{head}");
    let (head, _) = http_get(addr, "/healthz", None);
    let minted = echoed_id(&head).expect("server mints a request id");
    assert!(minted.starts_with("tf-"), "{minted}");

    let handles: Vec<_> = (0..4)
        .map(|client| {
            std::thread::spawn(move || {
                for i in 0..4 {
                    let id = format!("it-{client}-{i}");
                    let (head, _) = http_get(addr, "/v1/rank?seed=42", Some(&id));
                    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
                    assert_eq!(echoed_id(&head).as_deref(), Some(id.as_str()), "{head}");
                    let (head, body) = http_get(addr, "/v1/trace?last=64", Some(&id));
                    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
                    let value: serde::Value =
                        serde_json::from_str(&body).expect("trace body is valid JSON");
                    let keys: Vec<&str> = value
                        .as_object()
                        .expect("trace body is an object")
                        .iter()
                        .map(|(k, _)| k.as_str())
                        .collect();
                    assert_eq!(keys, ["displayTimeUnit", "otherData", "traceEvents"]);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client threads succeed");
    }
    server.shutdown();
}

/// The ring is bounded: at capacity it overwrites oldest-first and
/// counts the overwritten events instead of growing.
#[test]
fn ring_stays_bounded_at_capacity() {
    use thirstyflops::obs::{span, trace};
    trace::set_enabled(true);
    trace::set_capacity(64);
    {
        let _ctx = trace::begin(9_000, true);
        for _ in 0..200 {
            let _span = span::span(span::TRACE_GEN);
        }
    }
    let (events, _) = trace::events_snapshot(None);
    assert!(
        events.len() <= 64,
        "ring grew past capacity: {}",
        events.len()
    );
    assert!(trace::dropped() > 0, "overwritten events are counted");
    trace::set_capacity(trace::DEFAULT_CAPACITY);
}

/// End-to-end access log: `serve --log-json` emits one strict-JSON
/// line per request on stderr, keys in documented order, with the
/// echoed trace id first.
#[test]
fn serve_log_json_emits_strict_json_access_log() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_thirstyflops"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--log-json",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve subprocess starts");
    let mut banner = String::new();
    BufReader::new(child.stdout.take().expect("stdout piped"))
        .read_line(&mut banner)
        .expect("banner line reads");
    let addr: SocketAddr = banner
        .strip_prefix("listening on http://")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|hostport| hostport.parse().ok())
        .unwrap_or_else(|| panic!("banner names an address: {banner:?}"));

    let (head, _) = http_get(addr, "/healthz", Some("e2e-log-1"));
    assert_eq!(echoed_id(&head).as_deref(), Some("e2e-log-1"), "{head}");

    child.kill().expect("serve subprocess stops");
    child.wait().expect("serve subprocess reaps");
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut stderr)
        .expect("stderr reads");
    let line = stderr
        .lines()
        .find(|l| l.contains("\"trace\":\"e2e-log-1\""))
        .unwrap_or_else(|| panic!("access log line for the request: {stderr:?}"));
    let value: serde::Value = serde_json::from_str(line).expect("access log line is strict JSON");
    let keys: Vec<&str> = value
        .as_object()
        .expect("access log line is an object")
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(
        keys,
        ["trace", "endpoint", "status", "bytes", "micros", "cache", "shed", "faults"],
        "{line}"
    );
}
