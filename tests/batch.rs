//! The scalar-vs-batched differential suite (acceptance criteria).
//!
//! The batched K-lane kernel (`core::batch`) promises *bit identity*
//! with the scalar path, not approximate agreement: every lane of a
//! batch must reproduce, to the last IEEE bit, what the scalar oracle
//! `SystemYear::simulate_uncached` plus the fused scalar reductions
//! produce for the same spec and seed. These tests enforce that with
//! `assert_eq!` on raw `f64`s — no tolerances anywhere — across
//! proptest-random spec batches, thread counts, chunkings, and the
//! simulation cache on or off. The streaming top-N aggregator gets the
//! same treatment: its kept set must equal full-sort-then-truncate
//! under the (key, index) total order, independent of push or merge
//! order (docs/CONCURRENCY.md).

use std::process::Command;

use proptest::prelude::*;
use thirstyflops::catalog::{SystemId, SystemSpec};
use thirstyflops::core::batch::{BatchContext, LaneRequest, TopN};
use thirstyflops::core::SystemYear;
use thirstyflops::timeseries::Month;

/// A proptest-shaped spec perturbation: system pick, node count,
/// utilization, and seed. Kept in valid catalog ranges.
fn spec_for(pick: u64, nodes: u64, util: f64) -> SystemSpec {
    let mut spec = SystemSpec::reference(SystemId::PAPER[pick as usize % SystemId::PAPER.len()]);
    spec.nodes = 50 + (nodes % 2000) as u32;
    spec.mean_utilization = util;
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tentpole acceptance: random batches through `simulate_batch`
    /// reproduce the uncached scalar oracle series-for-series,
    /// bit-for-bit.
    #[test]
    fn batched_simulation_matches_the_uncached_oracle(
        lanes in collection::vec((0u64..4, 0u64..10_000, 0.30f64..0.95, 0u64..1_000_000), 1..6)
    ) {
        let ctx = BatchContext::new();
        let requests: Vec<(SystemSpec, u64)> = lanes
            .iter()
            .map(|&(pick, nodes, util, seed)| (spec_for(pick, nodes, util), seed))
            .collect();
        let batched = ctx.simulate_batch(&requests);
        prop_assert_eq!(batched.len(), requests.len());
        for ((spec, seed), year) in requests.iter().zip(&batched) {
            let oracle = SystemYear::simulate_uncached(spec.clone(), *seed);
            prop_assert_eq!(&year.utilization, &oracle.utilization);
            prop_assert_eq!(&year.energy, &oracle.energy);
            prop_assert_eq!(&year.wue, &oracle.wue);
            prop_assert_eq!(&year.ewf, &oracle.ewf);
            prop_assert_eq!(&year.carbon, &oracle.carbon);
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The K-lane annual reductions (totals, dots, means, monthly sums)
    /// with per-lane scaling factors equal the scalar expressions the
    /// engine's reference path computes — the exact `f64`s.
    #[test]
    fn batched_aggregates_match_the_scalar_reductions(
        lanes in collection::vec(
            (0u64..4, 0u64..10_000, 0.30f64..0.95, 0u64..1_000_000,
             0.2f64..3.0, 0.2f64..3.0),
            // Crossing 33 exercises the 32-lane per-pass block split.
            1..34,
        )
    ) {
        let ctx = BatchContext::new();
        let requests: Vec<LaneRequest> = lanes
            .iter()
            .enumerate()
            .map(|(i, &(pick, nodes, util, seed, wue_k, ewf_k))| LaneRequest {
                spec: spec_for(pick, nodes, util),
                seed,
                // Mix scaled and unscaled lanes in one batch: the
                // identity-vs-scaled decision is per lane.
                wue_scale: (i % 2 == 0).then_some(wue_k),
                ewf_scale: (i % 3 == 0).then_some(ewf_k),
                carbon_scale: (i % 5 == 0).then_some(ewf_k * 0.5),
            })
            .collect();
        let aggregates = ctx.aggregate(&requests);
        prop_assert_eq!(aggregates.len(), requests.len());
        for (req, agg) in requests.iter().zip(&aggregates) {
            let year = SystemYear::simulate_uncached(req.spec.clone(), req.seed);
            let wue = match req.wue_scale {
                Some(k) => year.wue.scale(k),
                None => year.wue.clone(),
            };
            let ewf = match req.ewf_scale {
                Some(k) => year.ewf.scale(k),
                None => year.ewf.clone(),
            };
            let carbon = match req.carbon_scale {
                Some(k) => year.carbon.scale(k),
                None => year.carbon.clone(),
            };
            prop_assert_eq!(agg.energy_kwh, year.energy.total());
            prop_assert_eq!(agg.direct_l, year.energy.dot(&wue));
            prop_assert_eq!(agg.indirect_per_pue_l, year.energy.dot(&ewf));
            prop_assert_eq!(agg.carbon_g, year.energy.dot(&carbon));
            prop_assert_eq!(agg.mean_wue, wue.mean());
            prop_assert_eq!(agg.mean_ewf, ewf.mean());
            prop_assert_eq!(agg.mean_carbon, carbon.mean());
            let monthly = year.energy.mul(&wue).monthly_sum();
            for (m, &month) in Month::ALL.iter().enumerate() {
                prop_assert_eq!(agg.monthly_direct_l[m], monthly.get(month));
            }
        }
    }
}

// ------------------------------------------------------------- top-N

/// The reference semantics: sort every (key, index) pair under the
/// same total order the heap uses, truncate to `n`.
fn sort_then_truncate(entries: &[(f64, u64)], n: usize) -> Vec<(f64, u64)> {
    let mut sorted = entries.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    sorted.truncate(n);
    sorted
}

fn drain(top: TopN<()>) -> Vec<(f64, u64)> {
    top.into_sorted()
        .into_iter()
        .map(|e| (e.key, e.index))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite: the streaming top-N equals full-sort-then-truncate —
    /// including duplicate keys, where the smaller index wins.
    #[test]
    fn topn_equals_full_sort_then_truncate(
        keys in collection::vec(0u64..12, 1..200),
        capacity in 1usize..24,
    ) {
        // Coarse integer keys force plenty of exact ties.
        let entries: Vec<(f64, u64)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k as f64 * 0.5, i as u64))
            .collect();
        let mut top = TopN::new(capacity);
        for &(key, index) in &entries {
            top.push(key, index, ());
        }
        prop_assert_eq!(drain(top), sort_then_truncate(&entries, capacity));
    }

    /// Satellite: the kept set is a property of the pushed set alone —
    /// any chunking of the stream into per-chunk heaps, merged in any
    /// order, yields identical results. This is the exact argument that
    /// makes sweep reports independent of thread count and chunk size.
    #[test]
    fn topn_is_invariant_under_chunking_and_merge_order(
        keys in collection::vec(0u64..9, 1..200),
        capacity in 1usize..16,
        chunk in 1usize..48,
    ) {
        let entries: Vec<(f64, u64)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k as f64, i as u64))
            .collect();
        let mut single = TopN::new(capacity);
        for &(key, index) in &entries {
            single.push(key, index, ());
        }
        // Chunked, merged in *reverse* chunk order.
        let mut chunked: Vec<TopN<()>> = entries
            .chunks(chunk)
            .map(|block| {
                let mut heap = TopN::new(capacity);
                for &(key, index) in block {
                    heap.push(key, index, ());
                }
                heap
            })
            .collect();
        let mut merged = chunked.pop().expect("at least one chunk");
        while let Some(heap) = chunked.pop() {
            merged.merge(heap);
        }
        prop_assert_eq!(drain(merged), drain(single));
    }
}

// ------------------------------------------------- sweep-level identity

fn spec_path(name: &str) -> String {
    format!("{}/examples/scenarios/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// A `top_n` sweep report carries exactly the rows a full evaluation
/// would keep after sorting on the rank metric (expansion order breaks
/// ties, which a stable sort preserves).
#[test]
fn streaming_top_n_rows_equal_sort_then_truncate_of_the_full_report() {
    let text = std::fs::read_to_string(spec_path("sweep_siting.json")).expect("spec ships");
    let full = thirstyflops::scenario::evaluate_sweep(
        &thirstyflops::scenario::SweepSpec::from_json(&text).expect("parses"),
    )
    .expect("full sweep evaluates");
    let streamed = thirstyflops::scenario::evaluate_sweep(
        &thirstyflops::scenario::SweepSpec::from_json_with_top(&text, Some(5)).expect("parses"),
    )
    .expect("streamed sweep evaluates");
    assert_eq!(streamed.rows.len(), 5);
    assert_eq!(streamed.top_n, Some(5));
    assert_eq!(streamed.rank_by.as_deref(), Some("operational_water_l"));
    let mut reference = full.rows.clone();
    reference.sort_by(|a, b| {
        a.scenario
            .operational_water_l
            .total_cmp(&b.scenario.operational_water_l)
    });
    reference.truncate(5);
    let render = |rows: &[thirstyflops::scenario::SweepRow]| {
        serde_json::to_string(&rows.to_vec()).expect("rows render")
    };
    assert_eq!(render(&streamed.rows), render(&reference));
}

/// CLI-level differential: `scenario sweep --json` emits byte-identical
/// reports batched and scalar (`--no-batch`), at 1 and 8 threads, with
/// the simulation cache on and off — every combination, one byte set.
#[test]
fn cli_sweep_bytes_identical_batched_vs_scalar_across_threads_and_cache() {
    let path = spec_path("sweep_siting.json");
    let mut bodies: Vec<Vec<u8>> = Vec::new();
    for threads in ["1", "8"] {
        for extra in [
            &[][..],
            &["--no-batch"][..],
            &["--no-batch", "--no-sim-cache"][..],
        ] {
            let mut args = vec!["scenario", "sweep", path.as_str(), "--json"];
            args.extend_from_slice(extra);
            let out = Command::new(env!("CARGO_BIN_EXE_thirstyflops"))
                .args(&args)
                .env("THIRSTYFLOPS_THREADS", threads)
                .output()
                .expect("CLI binary runs");
            assert!(out.status.success(), "{args:?} failed: {out:?}");
            bodies.push(out.stdout);
        }
    }
    for body in &bodies[1..] {
        assert_eq!(
            &bodies[0], body,
            "sweep bytes must not depend on batching, threads, or the cache"
        );
    }
}

/// The same differential over a *streaming* (top-N) sweep: a 600-cell
/// spec — more than one 512-row chunk, so chunked top-N merging runs —
/// produces one byte set batched vs scalar at both thread counts. The
/// scalar run is the expensive oracle; 600 cells keeps it tractable in
/// a debug test (the 101,250-cell spec is `./ci.sh batch-smoke`'s job).
#[test]
fn cli_streaming_sweep_bytes_identical_batched_vs_scalar() {
    let spec = r#"{
        "name": "streaming-differential", "base": "polaris", "top_n": 7,
        "rank_by": "scarcity_adjusted_water_l",
        "axes": {
            "climate.wue_scale": [0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4],
            "pue": [1.06, 1.10, 1.14, 1.18, 1.22, 1.26, 1.30, 1.34, 1.38, 1.42],
            "wsi.site": [0.05, 0.20, 0.35, 0.50, 0.65, 0.80]
        }
    }"#;
    let path = std::env::temp_dir().join("thirstyflops_streaming_differential.json");
    std::fs::write(&path, spec).expect("spec writes");
    let path = path.to_str().expect("temp path is UTF-8");
    let mut bodies: Vec<Vec<u8>> = Vec::new();
    for (threads, extra) in [("1", None), ("8", None), ("1", Some("--no-batch"))] {
        let mut args = vec!["scenario", "sweep", path, "--json"];
        if let Some(flag) = extra {
            args.push(flag);
        }
        let out = Command::new(env!("CARGO_BIN_EXE_thirstyflops"))
            .args(&args)
            .env("THIRSTYFLOPS_THREADS", threads)
            .output()
            .expect("CLI binary runs");
        assert!(out.status.success(), "{args:?} failed: {out:?}");
        bodies.push(out.stdout);
    }
    assert!(bodies[0].len() > 100, "report is non-trivial");
    assert_eq!(bodies[0], bodies[1], "thread count leaked into the bytes");
    assert_eq!(bodies[0], bodies[2], "batching leaked into the bytes");
}

/// The batch toggle round-trips through the environment: under
/// `THIRSTYFLOPS_NO_BATCH=1` the sweep still answers (scalar path) and
/// `/v1/cache/stats`' batch section reports the kernel disabled.
#[test]
fn no_batch_env_var_disables_the_kernel() {
    let path = spec_path("sweep_siting.json");
    let flagged = Command::new(env!("CARGO_BIN_EXE_thirstyflops"))
        .args(["scenario", "sweep", &path, "--json"])
        .env("THIRSTYFLOPS_NO_BATCH", "1")
        .output()
        .expect("CLI binary runs");
    assert!(flagged.status.success());
    let plain = Command::new(env!("CARGO_BIN_EXE_thirstyflops"))
        .args(["scenario", "sweep", &path, "--json"])
        .output()
        .expect("CLI binary runs");
    assert_eq!(
        flagged.stdout, plain.stdout,
        "the oracle agrees with the kernel"
    );
}
