//! Integration tests of the `loadgen` harness: the library against an
//! in-process server, and the CLI subcommand end to end.
//!
//! The contract (docs/SERVING.md, docs/CONCURRENCY.md): a replayed mix
//! produces zero body mismatches at any worker/connection count, over
//! keep-alive or one-shot connections, with or without the simulation
//! cache — the determinism promise measured on the wire.

use std::process::Command;

use thirstyflops::loadgen::{self, LoadReport, MixSpec, RunConfig};

fn smoke_mix() -> MixSpec {
    let path = format!("{}/examples/loadmix/smoke.json", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(path).expect("shipped smoke mix reads");
    MixSpec::from_json(&text).expect("shipped smoke mix parses")
}

fn run_cli(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_thirstyflops"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn shipped_mixes_parse_and_cover_multiple_endpoint_families() {
    for name in ["smoke", "bench"] {
        let path = format!(
            "{}/examples/loadmix/{name}.json",
            env!("CARGO_MANIFEST_DIR")
        );
        let text = std::fs::read_to_string(&path).expect("shipped mix reads");
        let mix = MixSpec::from_json(&text).expect("shipped mix parses");
        assert!(
            mix.templates.len() >= 5,
            "{name} exercises several endpoints"
        );
        assert!(mix.templates.iter().any(|t| t.method == "POST"), "{name}");
    }
}

/// The acceptance shape: the same mix replayed at `--workers 1` and
/// `--workers 8` produces zero mismatches, and the request plan (which
/// endpoint got how many requests) is identical — the plan depends only
/// on the seed, the replayed bytes only on the requests.
#[test]
fn replay_is_mismatch_free_at_one_and_eight_workers() {
    let mix = smoke_mix();
    let mut endpoint_counts = Vec::new();
    for workers in [1usize, 8] {
        let report = loadgen::run(
            &mix,
            &RunConfig {
                requests: 120,
                connections: 4,
                workers,
                ..RunConfig::default()
            },
        )
        .expect("run succeeds");
        assert_eq!(
            (report.mismatches, report.errors),
            (0, 0),
            "{workers} workers: {:?}",
            report.mismatch_samples
        );
        endpoint_counts.push(
            report
                .endpoints
                .iter()
                .map(|e| (e.endpoint.clone(), e.requests))
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(
        endpoint_counts[0], endpoint_counts[1],
        "the plan must not depend on the worker count"
    );
}

/// Keep-alive and one-shot disciplines replay the identical plan with
/// identical expectations — both mismatch-free.
#[test]
fn both_disciplines_are_mismatch_free() {
    let mix = smoke_mix();
    for keep_alive in [true, false] {
        let report = loadgen::run(
            &mix,
            &RunConfig {
                requests: 60,
                connections: 2,
                workers: 2,
                keep_alive,
                ..RunConfig::default()
            },
        )
        .expect("run succeeds");
        assert_eq!(
            (report.mismatches, report.errors),
            (0, 0),
            "keep_alive={keep_alive}: {:?}",
            report.mismatch_samples
        );
    }
}

/// A paced run still replays the exact same deterministic plan — pacing
/// shapes time, never bytes.
#[test]
fn paced_replay_is_mismatch_free() {
    let report = loadgen::run(
        &smoke_mix(),
        &RunConfig {
            requests: 40,
            connections: 2,
            workers: 2,
            rate: 200.0,
            ..RunConfig::default()
        },
    )
    .expect("run succeeds");
    assert_eq!((report.mismatches, report.errors), (0, 0));
    // 40 requests at 200/s take at least ~195 ms by construction.
    assert!(
        report.elapsed_micros >= 150_000,
        "pacing stretched the run: {} µs",
        report.elapsed_micros
    );
}

/// CLI: the smoke mix replays cleanly and reports it; `--json` renders
/// the report through the canonical serializer.
#[test]
fn cli_loadgen_smoke_mix_exits_zero() {
    let (code, out, err) = run_cli(&[
        "loadgen",
        "--mix",
        "examples/loadmix/smoke.json",
        "--requests",
        "50",
        "--connections",
        "2",
        "--workers",
        "2",
    ]);
    assert_eq!(code, 0, "stdout: {out}\nstderr: {err}");
    assert!(out.contains("0 mismatches"), "{out}");
    assert!(out.contains("footprint"), "{out}");

    let (code, out, err) = run_cli(&[
        "loadgen",
        "--mix",
        "examples/loadmix/smoke.json",
        "--requests",
        "30",
        "--connections",
        "2",
        "--json",
    ]);
    assert_eq!(code, 0, "stdout: {out}\nstderr: {err}");
    let report: LoadReport = serde_json::from_str(&out).expect("--json report parses");
    assert_eq!((report.mismatches, report.errors), (0, 0));
    assert_eq!(report.requests, 30);
    assert_eq!(report.discipline, "keep-alive");
}

/// CLI: the sim-cache escape hatch changes nothing on the wire — the
/// replay stays mismatch-free with every simulation recomputed, at one
/// worker and at eight.
#[test]
fn cli_loadgen_is_deterministic_without_the_sim_cache() {
    for workers in ["1", "8"] {
        let (code, out, err) = run_cli(&[
            "loadgen",
            "--no-sim-cache",
            "--mix",
            "examples/loadmix/smoke.json",
            "--requests",
            "40",
            "--connections",
            "2",
            "--workers",
            workers,
        ]);
        assert_eq!(code, 0, "workers {workers}: stdout: {out}\nstderr: {err}");
        assert!(out.contains("0 mismatches"), "workers {workers}: {out}");
    }
}

/// CLI: bad invocations fail with usage errors, not runs.
#[test]
fn cli_loadgen_rejects_bad_flags() {
    let (code, _, err) = run_cli(&["loadgen"]);
    assert_eq!(code, 2);
    assert!(err.contains("--mix"), "{err}");

    let (code, _, err) = run_cli(&[
        "loadgen",
        "--mix",
        "examples/loadmix/smoke.json",
        "--requets",
        "10",
    ]);
    assert_eq!(code, 2);
    assert!(err.contains("unknown loadgen flag"), "{err}");

    let (code, _, err) = run_cli(&[
        "loadgen",
        "--mix",
        "examples/loadmix/smoke.json",
        "--duration",
        "2",
    ]);
    assert_eq!(code, 2);
    assert!(err.contains("--rate"), "{err}");

    let (code, _, err) = run_cli(&["loadgen", "--mix", "no/such/mix.json"]);
    assert_eq!(code, 2);
    assert!(err.contains("cannot read"), "{err}");
}

/// CLI: `--bench-json` runs both disciplines and writes
/// `BENCH_serve.json` (baseline = one-shot, current = keep-alive), with
/// the recorded baseline preserved across reruns.
#[test]
fn cli_loadgen_bench_json_writes_and_preserves_baseline() {
    let dir =
        std::env::temp_dir().join(format!("thirstyflops_loadgen_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mix = format!("{}/examples/loadmix/smoke.json", env!("CARGO_MANIFEST_DIR"));

    let run_bench = || {
        let out = Command::new(env!("CARGO_BIN_EXE_thirstyflops"))
            .args([
                "loadgen",
                "--mix",
                &mix,
                "--requests",
                "30",
                "--connections",
                "2",
                "--workers",
                "2",
                "--bench-json",
            ])
            .current_dir(&dir)
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{out:?}");
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    let out = run_bench();
    assert!(out.contains("one-shot"), "{out}");
    assert!(out.contains("keep-alive"), "{out}");
    assert!(out.contains("wrote BENCH_serve.json"), "{out}");

    let path = dir.join("BENCH_serve.json");
    let text = std::fs::read_to_string(&path).expect("BENCH_serve.json exists");
    let value: serde::Value = serde_json::from_str(&text).expect("valid JSON");
    let top = value.as_object().expect("top-level object");
    let side = |name: &str| {
        top.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("{name} present in {text}"))
    };
    let discipline_of = |v: &serde::Value| {
        v.as_object()
            .and_then(|o| {
                o.iter()
                    .find(|(k, _)| k == "discipline")
                    .map(|(_, d)| d.clone())
            })
            .expect("discipline field")
    };
    assert_eq!(
        discipline_of(side("baseline")),
        serde::Value::Str("one-shot".into())
    );
    assert_eq!(
        discipline_of(side("current")),
        serde::Value::Str("keep-alive".into())
    );
    let baseline_first = serde_json::to_string(side("baseline")).expect("render");

    // Rerun: the baseline must survive verbatim.
    run_bench();
    let text = std::fs::read_to_string(&path).expect("BENCH_serve.json exists");
    let value: serde::Value = serde_json::from_str(&text).expect("valid JSON");
    let baseline_second = value
        .as_object()
        .unwrap()
        .iter()
        .find(|(k, _)| k == "baseline")
        .map(|(_, v)| serde_json::to_string(v).expect("render"))
        .expect("baseline present");
    assert_eq!(
        baseline_first, baseline_second,
        "recorded baseline preserved"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
