//! Determinism tests for the observability layer (docs/OBSERVABILITY.md).
//!
//! The contract: profiling must never change a command's output, and the
//! profiled *counts* — span invocations and registry counters — must be
//! bit-identical across thread counts and cache modes. Durations
//! (`*_ns` fields) are wall-clock and exempt. The simcache counter
//! families are exempt across cache modes in a specific way: under
//! `--no-sim-cache` they are never registered at all, so they are
//! filtered by name prefix before comparing.

use std::process::{Command, Output};

use thirstyflops::obs::report::ProfileReport;

const SWEEP: [&str; 3] = ["scenario", "sweep", "examples/scenarios/sweep_siting.json"];

fn run(args: &[&str]) -> Output {
    let out = Command::new(env!("CARGO_BIN_EXE_thirstyflops"))
        .args(args)
        .output()
        .expect("CLI binary runs");
    assert!(out.status.success(), "CLI {args:?} failed: {out:?}");
    out
}

/// Parses the `--profile --json` stderr payload.
fn profile(out: &Output) -> ProfileReport {
    let stderr = String::from_utf8(out.stderr.clone()).expect("stderr is UTF-8");
    serde_json::from_str(&stderr).expect("stderr is a profile report")
}

/// A named count: a stage's invocations or a counter's value.
type Counts = Vec<(String, u64)>;

/// The deterministic half of a profile: per-stage invocation counts and
/// counter values, durations dropped.
fn counts(report: &ProfileReport) -> (Counts, Counts) {
    (
        report
            .stages
            .iter()
            .map(|s| (s.stage.clone(), s.invocations))
            .collect(),
        report
            .counters
            .iter()
            .map(|c| (c.name.clone(), c.value))
            .collect(),
    )
}

/// Tentpole acceptance: enabling `--profile` must not change command
/// output by a single byte — the report goes to stderr, never stdout.
#[test]
fn stdout_is_byte_identical_with_profiling_on_and_off() {
    let plain = run(&[&SWEEP[..], &["--json"]].concat());
    let profiled = run(&[&SWEEP[..], &["--json", "--profile"]].concat());
    assert_eq!(plain.stdout, profiled.stdout, "--profile altered stdout");
    assert!(plain.stderr.is_empty(), "no stderr without --profile");
    assert!(!profiled.stderr.is_empty(), "--profile reports on stderr");

    // Same for the human-readable rendering.
    let plain = run(&SWEEP);
    let profiled = run(&[&SWEEP[..], &["--profile"]].concat());
    assert_eq!(plain.stdout, profiled.stdout, "--profile altered stdout");
}

/// Span invocation counts and registry counters are identical at 1 and
/// 8 threads — work is partitioned, never duplicated or dropped.
#[test]
fn profile_counts_are_identical_across_thread_counts() {
    let one = run(&[&SWEEP[..], &["--json", "--profile", "--threads", "1"]].concat());
    let eight = run(&[&SWEEP[..], &["--json", "--profile", "--threads", "8"]].concat());
    assert_eq!(one.stdout, eight.stdout, "sweep output depends on threads");
    let (stages_1, counters_1) = counts(&profile(&one));
    let (stages_8, counters_8) = counts(&profile(&eight));
    assert_eq!(stages_1, stages_8, "span counts depend on thread count");
    assert_eq!(counters_1, counters_8, "counters depend on thread count");
    // The sweep actually exercised the instrumented stages.
    assert!(
        stages_1
            .iter()
            .any(|(name, n)| name == "workload_sim" && *n > 0),
        "{stages_1:?}"
    );
    assert!(
        counters_1
            .iter()
            .any(|(name, n)| name == "thirstyflops_sweep_cells_total" && *n > 0),
        "{counters_1:?}"
    );
}

/// Span counts are identical with the simulation cache on and off; the
/// only counter difference is the absence of the `thirstyflops_simcache_*`
/// families (they are never registered when the cache is disabled).
#[test]
fn profile_counts_are_identical_across_cache_modes() {
    let cached = run(&[&SWEEP[..], &["--json", "--profile"]].concat());
    let uncached = run(&[&SWEEP[..], &["--json", "--profile", "--no-sim-cache"]].concat());
    assert_eq!(cached.stdout, uncached.stdout, "cache mode altered output");
    let (stages_c, counters_c) = counts(&profile(&cached));
    let (stages_u, counters_u) = counts(&profile(&uncached));
    assert_eq!(stages_c, stages_u, "span counts depend on cache mode");

    let strip = |counters: Counts| -> Counts {
        counters
            .into_iter()
            .filter(|(name, _)| !name.starts_with("thirstyflops_simcache_"))
            .collect()
    };
    assert!(
        counters_c
            .iter()
            .any(|(name, _)| name.starts_with("thirstyflops_simcache_")),
        "cached run registers simcache counters: {counters_c:?}"
    );
    assert!(
        counters_u
            .iter()
            .all(|(name, _)| !name.starts_with("thirstyflops_simcache_")),
        "--no-sim-cache must not register simcache counters: {counters_u:?}"
    );
    assert_eq!(
        strip(counters_c),
        strip(counters_u),
        "non-cache counters depend on cache mode"
    );
}
