//! The determinism contract (docs/CONCURRENCY.md), enforced: parallel
//! execution must produce **bit-identical** results at every thread
//! count, because every work item is a pure function of its index/seed
//! and per-chunk results merge in ascending index order.
//!
//! The whole workspace test suite doubles as a second enforcement layer:
//! `ci.sh` runs it under `THIRSTYFLOPS_THREADS=1` and the default count,
//! so any golden or shape test diverging across thread counts fails the
//! gate.

use thirstyflops::experiments as exp;
use thirstyflops::workload::miniamr::{run_with_threads, MiniAmrConfig};

fn kernel_config() -> MiniAmrConfig {
    MiniAmrConfig {
        base_grid: 3,
        block_cells: 6,
        max_level: 2,
        steps: 12,
        regrid_every: 4,
        sphere_radius: 0.2,
        sphere_orbits: 0.5,
        alpha: 0.1,
    }
}

#[test]
fn miniamr_footprint_is_bit_identical_from_1_to_8_threads() {
    let baseline = run_with_threads(kernel_config(), 1).expect("config is valid");
    for threads in [2, 4, 8] {
        let parallel = run_with_threads(kernel_config(), threads).expect("config is valid");
        assert_eq!(baseline.steps, parallel.steps, "{threads} threads");
        assert_eq!(
            baseline.cell_updates, parallel.cell_updates,
            "{threads} threads"
        );
        assert_eq!(baseline.flops, parallel.flops, "{threads} threads");
        assert_eq!(
            baseline.final_blocks, parallel.final_blocks,
            "{threads} threads"
        );
        assert_eq!(
            baseline.peak_blocks, parallel.peak_blocks,
            "{threads} threads"
        );
        assert_eq!(
            baseline.blocks_per_level, parallel.blocks_per_level,
            "{threads} threads"
        );
        // The checksum sums every cell of the final field: the strongest
        // witness that the stencil math ran identically. Bit equality,
        // not tolerance.
        assert_eq!(
            baseline.checksum.to_bits(),
            parallel.checksum.to_bits(),
            "{threads} threads: {} vs {}",
            baseline.checksum,
            parallel.checksum
        );
    }
}

/// Regenerates the golden-pinned figures inside an 8-worker pool and
/// checks them against the same constants `tests/golden.rs` pins for the
/// (sequential-calibrated) evaluation seed. This is the figure-level half
/// of the contract: an 8-thread sweep must reproduce the 1-thread
/// calibration exactly, including the shared telemetry context, which
/// this test computes under the pool (each integration-test binary is its
/// own process, so the context cannot have been warmed sequentially).
#[test]
fn experiments_under_8_worker_pool_match_sequential_goldens() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .expect("pool builds");
    let (all, fig07, fig08) = pool.install(|| (exp::all(), exp::fig07(), exp::fig08()));

    // Batch order is the paper order, independent of which worker
    // finished first.
    let ids: Vec<&str> = all.iter().map(|e| e.id).collect();
    assert_eq!(
        ids,
        vec![
            "fig01", "table01", "table02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08",
            "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "table03", "ext01", "ext02",
            "ext03", "ext04", "ext05",
        ]
    );

    // Golden values from tests/golden.rs — calibrated sequentially,
    // asserted here under 8 workers. On a deliberate recalibration
    // update these together with golden.rs (docs/GOLDENS.md step 2).
    let direct = fig07.frame.numbers("direct_pct").unwrap();
    for (i, (&actual, &golden)) in direct
        .iter()
        .zip(&[36.684, 58.025, 52.847, 53.944])
        .enumerate()
    {
        assert!(
            (actual - golden).abs() <= 0.01,
            "fig07 direct_pct[{i}]: got {actual}, golden {golden}"
        );
    }
    let wi = fig08.frame.numbers("water_intensity_l_per_kwh").unwrap();
    for (i, (&actual, &golden)) in wi.iter().zip(&[9.9466, 8.1164, 6.6330, 9.0420]).enumerate() {
        assert!(
            (actual - golden).abs() <= 0.001,
            "fig08 wi[{i}]: got {actual}, golden {golden}"
        );
    }
}

/// The same regenerator, same process, different pool sizes: the frames
/// must serialize to identical JSON (fig10 builds seeded county fields
/// and doesn't touch the shared context, so every run recomputes it).
#[test]
fn fig10_serializes_identically_across_pool_sizes() {
    let run = |threads: usize| -> String {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool builds");
        let e = pool.install(exp::fig10);
        serde_json::to_string(&e.frame).expect("frame serializes")
    };
    let sequential = run(1);
    for threads in [2, 8] {
        assert_eq!(sequential, run(threads), "{threads} threads");
    }
}
