//! Integration tests of the declarative scenario engine: the spec
//! library evaluates, sweeps expand to their full cartesian product, and
//! — the determinism contract — the same spec produces byte-identical
//! JSON at every thread count and with the simulation cache on or off
//! (the `tests/simcache.rs` pattern extended to the engine).

use std::process::Command;

use thirstyflops::scenario::{evaluate_sweep, ScenarioSpec, SweepSpec};

fn spec_path(name: &str) -> String {
    format!("{}/examples/scenarios/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Runs the CLI with the given args and env, returning stdout bytes.
fn cli_stdout(args: &[&str], envs: &[(&str, &str)]) -> Vec<u8> {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_thirstyflops"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("CLI binary runs");
    assert!(out.status.success(), "CLI {args:?} failed: {out:?}");
    out.stdout
}

/// The acceptance-criteria sweep: `sweep_siting.json` expands to 25
/// scenarios (≥ 24) and evaluates them all.
#[test]
fn siting_sweep_expands_to_25_scenarios_and_evaluates() {
    let text = std::fs::read_to_string(spec_path("sweep_siting.json")).expect("spec ships");
    let sweep = SweepSpec::from_json(&text).expect("sweep parses");
    let specs = sweep.expand().expect("sweep expands");
    assert!(specs.len() >= 24, "{} scenarios", specs.len());
    assert_eq!(specs.len(), 25, "5 climates x 5 regions");
    let report = evaluate_sweep(&sweep).expect("sweep evaluates");
    assert_eq!(report.scenario_count, 25);
    assert_eq!(report.rows.len(), 25);
    // Every row carries finite metrics and a real name.
    for row in &report.rows {
        assert!(
            row.name.starts_with("polaris-siting-sweep["),
            "{}",
            row.name
        );
        assert!(row.scenario.operational_water_l.is_finite());
        assert!(row.scenario.operational_water_l > 0.0);
    }
    // Rows are not all identical — the axes actually move the answer.
    let first = &report.rows[0];
    assert!(report
        .rows
        .iter()
        .any(|r| r.scenario.operational_water_l != first.scenario.operational_water_l));
}

/// Every shipped run spec parses, validates, and evaluates.
#[test]
fn shipped_spec_library_evaluates() {
    let dir = format!("{}/examples/scenarios", env!("CARGO_MANIFEST_DIR"));
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("examples/scenarios exists") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if !name.ends_with(".json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("spec reads");
        if name.starts_with("sweep_") {
            let sweep = SweepSpec::from_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!sweep.axes.is_empty());
        } else {
            let spec = ScenarioSpec::from_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            let outcome =
                thirstyflops::scenario::evaluate(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(outcome.scenario.operational_water_l > 0.0, "{name}");
        }
        seen += 1;
    }
    assert!(seen >= 9, "the spec library has ≥ 9 files, found {seen}");
}

/// The determinism contract end to end (acceptance criteria): `scenario
/// run` and `scenario sweep` emit byte-identical JSON at
/// `THIRSTYFLOPS_THREADS=1` vs `8`, and with the simulation cache
/// disabled vs memoized.
#[test]
fn run_and_sweep_json_identical_across_threads_and_cache() {
    let run_path = spec_path("drought_grid.json");
    let sweep_path = spec_path("sweep_siting.json");
    let cases: [&[&str]; 2] = [
        &["scenario", "run", &run_path, "--json"],
        &["scenario", "sweep", &sweep_path, "--json"],
    ];
    for args in cases {
        let mut bodies: Vec<Vec<u8>> = Vec::new();
        for threads in ["1", "8"] {
            let env = [("THIRSTYFLOPS_THREADS", threads)];
            let cached = cli_stdout(args, &env);
            let uncached = {
                let mut flagged = args.to_vec();
                flagged.push("--no-sim-cache");
                cli_stdout(&flagged, &env)
            };
            assert_eq!(
                cached, uncached,
                "{args:?} at {threads} threads: cache must be invisible in the bytes"
            );
            assert!(!cached.is_empty());
            bodies.push(cached);
        }
        assert_eq!(
            bodies[0], bodies[1],
            "{args:?} must not depend on the thread count"
        );
    }
}

/// Library-level thread-count determinism: the same sweep evaluated
/// under a 1-worker and an 8-worker pool serializes identically.
#[test]
fn sweep_report_identical_across_pool_sizes() {
    let text = std::fs::read_to_string(spec_path("sweep_siting.json")).expect("spec ships");
    let sweep = SweepSpec::from_json(&text).expect("sweep parses");
    let reports: Vec<String> = [1usize, 8]
        .iter()
        .map(|&n| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .expect("pool builds");
            let report = pool.install(|| evaluate_sweep(&sweep).expect("sweep evaluates"));
            serde_json::to_string(&report).expect("report renders")
        })
        .collect();
    assert_eq!(reports[0], reports[1]);
}

/// CLI error paths: missing files, invalid specs, and sweep/run
/// mix-ups exit 2 with a message.
#[test]
fn cli_rejects_bad_specs_loudly() {
    let run = |args: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_thirstyflops"))
            .args(args)
            .output()
            .expect("binary runs");
        (
            out.status.code().unwrap_or(-1),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let (code, err) = run(&["scenario", "run", "/nonexistent/spec.json"]);
    assert_eq!(code, 2);
    assert!(err.contains("cannot read"), "{err}");
    let (code, err) = run(&["scenario", "run"]);
    assert_eq!(code, 2);
    assert!(err.contains("missing <file>"), "{err}");
    // A sweep spec through `run` points at the sweep command.
    let (code, err) = run(&["scenario", "run", &spec_path("sweep_siting.json")]);
    assert_eq!(code, 2);
    assert!(err.contains("sweep"), "{err}");
    // A run spec through `sweep` asks for axes.
    let (code, err) = run(&["scenario", "sweep", &spec_path("all_nuclear.json")]);
    assert_eq!(code, 2);
    assert!(err.contains("axes"), "{err}");
    // Unknown keys are hard errors end to end.
    let bad = std::env::temp_dir().join("thirstyflops_bad_spec.json");
    std::fs::write(&bad, r#"{"name": "x", "base": "polaris", "overides": {}}"#).unwrap();
    let (code, err) = run(&["scenario", "run", bad.to_str().unwrap()]);
    assert_eq!(code, 2);
    assert!(err.contains("overides"), "{err}");
}

/// Satellite: the expansion ceiling is enforced in BOTH layers. The CLI
/// (parser layer) exits 2 with the limit in the message, and a sweep
/// built in code — bypassing the parser — is still refused by
/// `evaluate_sweep` (evaluation layer).
#[test]
fn sweep_ceiling_is_enforced_at_parse_and_at_evaluation() {
    // Parser layer, through the CLI: 20^3 = 8000 > 4096, no top_n.
    let oversized = r#"{"name": "big", "base": "polaris", "axes": {
        "climate.wue_scale": [0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4,
                              1.5, 1.6, 1.7, 1.8, 1.9, 2.0, 2.1, 2.2, 2.3, 2.4],
        "pue": [1.05, 1.06, 1.07, 1.08, 1.09, 1.10, 1.11, 1.12, 1.13, 1.14,
                1.15, 1.16, 1.17, 1.18, 1.19, 1.20, 1.21, 1.22, 1.23, 1.24],
        "wsi.site": [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50,
                     0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.82, 0.84, 0.86, 0.88]
    }}"#;
    let path = std::env::temp_dir().join("thirstyflops_oversized_sweep.json");
    std::fs::write(&path, oversized).expect("spec writes");
    let out = Command::new(env!("CARGO_BIN_EXE_thirstyflops"))
        .args(["scenario", "sweep", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "oversized sweep must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("8000"), "{err}");
    assert!(err.contains("4096"), "{err}");
    assert!(err.contains("top_n"), "the fix is named: {err}");

    // Evaluation layer, bypassing the parser: inflate a parsed axis in
    // code and hand the spec straight to evaluate_sweep.
    let text = std::fs::read_to_string(spec_path("sweep_siting.json")).expect("spec ships");
    let mut sweep = SweepSpec::from_json(&text).expect("parses");
    let clones: Vec<_> = std::iter::repeat(sweep.axes[0].values[0].clone())
        .take(2048)
        .collect();
    sweep.axes[0].values = clones;
    assert!(sweep.combination_count() > 4096);
    let err = evaluate_sweep(&sweep).expect_err("second layer must refuse");
    assert!(err.to_string().contains("4096"), "{err}");

    // With top_n the streaming ceiling applies instead — and is also
    // enforced at evaluation.
    sweep.top_n = Some(10);
    assert!(evaluate_sweep(&sweep).is_ok(), "10240 cells stream fine");
    let clones: Vec<_> = std::iter::repeat(sweep.axes[1].values[0].clone())
        .take(500_000)
        .collect();
    sweep.axes[1].values = clones;
    let err = evaluate_sweep(&sweep).expect_err("over the streaming ceiling");
    assert!(err.to_string().contains("1048576"), "{err}");
}

/// The HTTP twin of the CLI `--top` flag lives in the spec body; the
/// parser front door is shared, so `from_json_with_top`'s override and
/// the in-body field must agree.
#[test]
fn top_override_and_in_body_top_n_agree() {
    let text = std::fs::read_to_string(spec_path("sweep_siting.json")).expect("spec ships");
    let flagged = SweepSpec::from_json_with_top(&text, Some(4)).expect("parses");
    let mut in_body = SweepSpec::from_json(&text).expect("parses");
    in_body.top_n = Some(4);
    assert_eq!(flagged, in_body);
    let a = evaluate_sweep(&flagged).expect("evaluates");
    assert_eq!(a.rows.len(), 4);
    assert_eq!(a.rank_by.as_deref(), Some("operational_water_l"));
    // Bad rank metrics and zero top_n are parse errors with the menu.
    let with = |extra: &str| {
        let patched = text.replacen('{', &format!("{{{extra}",), 1);
        SweepSpec::from_json(&patched)
    };
    let err = with(r#""top_n": 3, "rank_by": "bogus","#).expect_err("unknown metric");
    assert!(err.to_string().contains("operational_water_l"), "{err}");
    let err = with(r#""top_n": 0,"#).expect_err("zero top_n");
    assert!(err.to_string().contains("at least 1"), "{err}");
    let err = with(r#""rank_by": "carbon_kg","#).expect_err("rank_by without top_n");
    assert!(err.to_string().contains("top_n"), "{err}");
}

/// The shipped 101,250-cell siting sweep: parses, streams under its
/// `top_n`, and the expansion arithmetic matches the axes. (Evaluation
/// of the full spec is `./ci.sh batch-smoke`'s release-build job.)
#[test]
fn shipped_large_sweep_parses_and_counts_101250_cells() {
    let text = std::fs::read_to_string(spec_path("sweep_siting_large.json")).expect("spec ships");
    let sweep = SweepSpec::from_json(&text).expect("large sweep parses");
    assert_eq!(sweep.combination_count(), 101_250, "50 x 45 x 45");
    assert_eq!(sweep.top_n, Some(24));
    assert_eq!(sweep.rank_by.as_deref(), Some("scarcity_adjusted_water_l"));
    assert!(sweep.combination_count() <= sweep.ceiling());
    // Without its top_n the same spec would be over the plain ceiling.
    let mut capped = sweep.clone();
    capped.top_n = None;
    capped.rank_by = None;
    assert!(capped.combination_count() > thirstyflops::scenario::MAX_SCENARIOS);
    assert!(evaluate_sweep(&capped).is_err());
    // Spot-check the mixed-radix indexing the streaming path uses: the
    // last combination carries every axis's last value.
    let last = sweep
        .combination(sweep.combination_count() - 1)
        .expect("last combination resolves");
    assert!(last.name.contains("wue_scale=2.38"), "{}", last.name);
    assert!(last.name.contains("pue=1.5"), "{}", last.name);
}

/// The engine's headline physics, end to end through shipped specs:
/// drought cuts water but costs carbon; the nuclear what-if saves
/// carbon; reclaimed supply cuts the scarcity-adjusted footprint.
#[test]
fn shipped_specs_tell_the_papers_story() {
    let eval = |name: &str| {
        let text = std::fs::read_to_string(spec_path(name)).expect("spec ships");
        thirstyflops::scenario::evaluate(&ScenarioSpec::from_json(&text).expect("parses"))
            .expect("evaluates")
    };
    let drought = eval("drought_grid.json");
    assert!(drought.deltas.operational_water_pct < -10.0);
    assert!(drought.deltas.carbon_pct > 5.0);

    let nuclear = eval("all_nuclear.json");
    assert!(
        nuclear.deltas.carbon_pct < -80.0,
        "{}",
        nuclear.deltas.carbon_pct
    );

    let reclaimed = eval("reclaimed_supply.json");
    assert_eq!(reclaimed.deltas.operational_water_l, 0.0);
    assert!(reclaimed.deltas.scarcity_adjusted_water_pct < -10.0);
    assert!(reclaimed.deltas.water_cost_usd < 0.0);

    let upgrade = eval("gpu_upgrade_path.json");
    let lc = upgrade.scenario.lifecycle.expect("lifecycle view present");
    assert!(lc.upgrade_embodied_l > 0.0);
    assert!(lc.embodied_share > 0.0 && lc.embodied_share < 0.5);
}
