//! Integration tests of the declarative scenario engine: the spec
//! library evaluates, sweeps expand to their full cartesian product, and
//! — the determinism contract — the same spec produces byte-identical
//! JSON at every thread count and with the simulation cache on or off
//! (the `tests/simcache.rs` pattern extended to the engine).

use std::process::Command;

use thirstyflops::scenario::{evaluate_sweep, ScenarioSpec, SweepSpec};

fn spec_path(name: &str) -> String {
    format!("{}/examples/scenarios/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Runs the CLI with the given args and env, returning stdout bytes.
fn cli_stdout(args: &[&str], envs: &[(&str, &str)]) -> Vec<u8> {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_thirstyflops"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("CLI binary runs");
    assert!(out.status.success(), "CLI {args:?} failed: {out:?}");
    out.stdout
}

/// The acceptance-criteria sweep: `sweep_siting.json` expands to 25
/// scenarios (≥ 24) and evaluates them all.
#[test]
fn siting_sweep_expands_to_25_scenarios_and_evaluates() {
    let text = std::fs::read_to_string(spec_path("sweep_siting.json")).expect("spec ships");
    let sweep = SweepSpec::from_json(&text).expect("sweep parses");
    let specs = sweep.expand().expect("sweep expands");
    assert!(specs.len() >= 24, "{} scenarios", specs.len());
    assert_eq!(specs.len(), 25, "5 climates x 5 regions");
    let report = evaluate_sweep(&sweep).expect("sweep evaluates");
    assert_eq!(report.scenario_count, 25);
    assert_eq!(report.rows.len(), 25);
    // Every row carries finite metrics and a real name.
    for row in &report.rows {
        assert!(
            row.name.starts_with("polaris-siting-sweep["),
            "{}",
            row.name
        );
        assert!(row.scenario.operational_water_l.is_finite());
        assert!(row.scenario.operational_water_l > 0.0);
    }
    // Rows are not all identical — the axes actually move the answer.
    let first = &report.rows[0];
    assert!(report
        .rows
        .iter()
        .any(|r| r.scenario.operational_water_l != first.scenario.operational_water_l));
}

/// Every shipped run spec parses, validates, and evaluates.
#[test]
fn shipped_spec_library_evaluates() {
    let dir = format!("{}/examples/scenarios", env!("CARGO_MANIFEST_DIR"));
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("examples/scenarios exists") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if !name.ends_with(".json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("spec reads");
        if name.starts_with("sweep_") {
            let sweep = SweepSpec::from_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!sweep.axes.is_empty());
        } else {
            let spec = ScenarioSpec::from_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            let outcome =
                thirstyflops::scenario::evaluate(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(outcome.scenario.operational_water_l > 0.0, "{name}");
        }
        seen += 1;
    }
    assert!(seen >= 9, "the spec library has ≥ 9 files, found {seen}");
}

/// The determinism contract end to end (acceptance criteria): `scenario
/// run` and `scenario sweep` emit byte-identical JSON at
/// `THIRSTYFLOPS_THREADS=1` vs `8`, and with the simulation cache
/// disabled vs memoized.
#[test]
fn run_and_sweep_json_identical_across_threads_and_cache() {
    let run_path = spec_path("drought_grid.json");
    let sweep_path = spec_path("sweep_siting.json");
    let cases: [&[&str]; 2] = [
        &["scenario", "run", &run_path, "--json"],
        &["scenario", "sweep", &sweep_path, "--json"],
    ];
    for args in cases {
        let mut bodies: Vec<Vec<u8>> = Vec::new();
        for threads in ["1", "8"] {
            let env = [("THIRSTYFLOPS_THREADS", threads)];
            let cached = cli_stdout(args, &env);
            let uncached = {
                let mut flagged = args.to_vec();
                flagged.push("--no-sim-cache");
                cli_stdout(&flagged, &env)
            };
            assert_eq!(
                cached, uncached,
                "{args:?} at {threads} threads: cache must be invisible in the bytes"
            );
            assert!(!cached.is_empty());
            bodies.push(cached);
        }
        assert_eq!(
            bodies[0], bodies[1],
            "{args:?} must not depend on the thread count"
        );
    }
}

/// Library-level thread-count determinism: the same sweep evaluated
/// under a 1-worker and an 8-worker pool serializes identically.
#[test]
fn sweep_report_identical_across_pool_sizes() {
    let text = std::fs::read_to_string(spec_path("sweep_siting.json")).expect("spec ships");
    let sweep = SweepSpec::from_json(&text).expect("sweep parses");
    let reports: Vec<String> = [1usize, 8]
        .iter()
        .map(|&n| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .expect("pool builds");
            let report = pool.install(|| evaluate_sweep(&sweep).expect("sweep evaluates"));
            serde_json::to_string(&report).expect("report renders")
        })
        .collect();
    assert_eq!(reports[0], reports[1]);
}

/// CLI error paths: missing files, invalid specs, and sweep/run
/// mix-ups exit 2 with a message.
#[test]
fn cli_rejects_bad_specs_loudly() {
    let run = |args: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_thirstyflops"))
            .args(args)
            .output()
            .expect("binary runs");
        (
            out.status.code().unwrap_or(-1),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let (code, err) = run(&["scenario", "run", "/nonexistent/spec.json"]);
    assert_eq!(code, 2);
    assert!(err.contains("cannot read"), "{err}");
    let (code, err) = run(&["scenario", "run"]);
    assert_eq!(code, 2);
    assert!(err.contains("missing <file>"), "{err}");
    // A sweep spec through `run` points at the sweep command.
    let (code, err) = run(&["scenario", "run", &spec_path("sweep_siting.json")]);
    assert_eq!(code, 2);
    assert!(err.contains("sweep"), "{err}");
    // A run spec through `sweep` asks for axes.
    let (code, err) = run(&["scenario", "sweep", &spec_path("all_nuclear.json")]);
    assert_eq!(code, 2);
    assert!(err.contains("axes"), "{err}");
    // Unknown keys are hard errors end to end.
    let bad = std::env::temp_dir().join("thirstyflops_bad_spec.json");
    std::fs::write(&bad, r#"{"name": "x", "base": "polaris", "overides": {}}"#).unwrap();
    let (code, err) = run(&["scenario", "run", bad.to_str().unwrap()]);
    assert_eq!(code, 2);
    assert!(err.contains("overides"), "{err}");
}

/// The engine's headline physics, end to end through shipped specs:
/// drought cuts water but costs carbon; the nuclear what-if saves
/// carbon; reclaimed supply cuts the scarcity-adjusted footprint.
#[test]
fn shipped_specs_tell_the_papers_story() {
    let eval = |name: &str| {
        let text = std::fs::read_to_string(spec_path(name)).expect("spec ships");
        thirstyflops::scenario::evaluate(&ScenarioSpec::from_json(&text).expect("parses"))
            .expect("evaluates")
    };
    let drought = eval("drought_grid.json");
    assert!(drought.deltas.operational_water_pct < -10.0);
    assert!(drought.deltas.carbon_pct > 5.0);

    let nuclear = eval("all_nuclear.json");
    assert!(
        nuclear.deltas.carbon_pct < -80.0,
        "{}",
        nuclear.deltas.carbon_pct
    );

    let reclaimed = eval("reclaimed_supply.json");
    assert_eq!(reclaimed.deltas.operational_water_l, 0.0);
    assert!(reclaimed.deltas.scarcity_adjusted_water_pct < -10.0);
    assert!(reclaimed.deltas.water_cost_usd < 0.0);

    let upgrade = eval("gpu_upgrade_path.json");
    let lc = upgrade.scenario.lifecycle.expect("lifecycle view present");
    assert!(lc.upgrade_embodied_l > 0.0);
    assert!(lc.embodied_share > 0.0 && lc.embodied_share < 0.5);
}
