//! Golden-value regression tests: the calibrated headline numbers for the
//! deterministic evaluation seed (2023). These pin the calibration — if a
//! refactor or data edit moves any of them, the diff should be a
//! deliberate recalibration, not an accident.
//!
//! Values are asserted to 3–4 significant figures (the printed precision
//! of the experiment report), not bit-exactness, so legitimate
//! floating-point reassociation doesn't trip them.

use thirstyflops::experiments as exp;

fn assert_close(actual: f64, golden: f64, tol: f64, what: &str) {
    assert!(
        (actual - golden).abs() <= tol,
        "{what}: got {actual}, golden {golden} (±{tol})"
    );
}

#[test]
fn golden_fig07_direct_shares() {
    // Paper: 37/58/53/54. Calibrated reproduction:
    let golden = [36.684, 58.025, 52.847, 53.944];
    let e = exp::fig07();
    let direct = e.frame.numbers("direct_pct").unwrap();
    for (i, (&actual, &g)) in direct.iter().zip(&golden).enumerate() {
        assert_close(actual, g, 0.01, &format!("fig07 direct_pct[{i}]"));
    }
}

#[test]
fn golden_fig08_intensities() {
    let e = exp::fig08();
    let wi = e.frame.numbers("water_intensity_l_per_kwh").unwrap();
    let adj = e
        .frame
        .numbers("adjusted_water_intensity_l_per_kwh")
        .unwrap();
    let golden_wi = [9.9466, 8.1164, 6.6330, 9.0420];
    let golden_adj = [3.4624, 1.0620, 3.6718, 0.9628];
    for i in 0..4 {
        assert_close(wi[i], golden_wi[i], 0.001, &format!("fig08 wi[{i}]"));
        assert_close(
            adj[i],
            golden_adj[i],
            0.001,
            &format!("fig08 adjusted[{i}]"),
        );
    }
}

#[test]
fn golden_fig03_embodied_totals() {
    let e = exp::fig03();
    let totals = e.frame.numbers("total_megaliters").unwrap();
    // Marconi, Fugaku, Polaris, Frontier — megaliters.
    let golden = [1.789, 30.946, 1.208, 57.228];
    for i in 0..4 {
        assert_close(totals[i], golden[i], 0.002, &format!("fig03 total[{i}]"));
    }
    // Polaris GPU share.
    assert_close(
        e.frame.numbers("gpu_pct").unwrap()[2],
        62.750,
        0.01,
        "fig03 Polaris GPU %",
    );
}

#[test]
fn golden_fig06_ewf_envelope() {
    let e = exp::fig06();
    assert_close(
        e.frame.numbers("ewf_max").unwrap()[0],
        10.99,
        0.02,
        "Marconi EWF max (paper: 10.59)",
    );
    assert_close(
        e.frame.numbers("ewf_min").unwrap()[2],
        1.81,
        0.02,
        "Polaris EWF min (paper: 1.52)",
    );
}
