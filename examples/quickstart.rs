//! Quickstart: estimate a supercomputer's full water footprint.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the whole pipeline for one system: embodied breakdown (Eq. 2–5),
//! a simulated telemetry year, operational footprint (Eq. 6–7), water
//! intensity (Eq. 8), and the scarcity-adjusted view (Eq. 9).

use thirstyflops::catalog::SystemId;
use thirstyflops::core::FootprintModel;
use thirstyflops::units::{Gallons, Liters};

fn ml(l: Liters) -> f64 {
    l.value() / 1e6
}

fn main() {
    let id = SystemId::Frontier;
    let model = FootprintModel::reference(id);
    let report = model.annual_report(2023);

    println!("=== ThirstyFLOPS quickstart: {id} ===\n");
    println!("Facility: {}", model.spec().location);
    println!(
        "Nodes: {}  |  PUE {}  |  peak IT power {:.1}",
        model.spec().nodes,
        model.spec().pue.value(),
        model.spec().peak_power()
    );

    println!("\n-- Embodied water (one-time, Eq. 2-5) --");
    let e = &report.embodied;
    println!("  CPU        {:>10.2} ML", ml(e.cpu));
    println!("  GPU        {:>10.2} ML", ml(e.gpu));
    println!("  DRAM       {:>10.2} ML", ml(e.dram));
    println!("  HDD        {:>10.2} ML", ml(e.hdd));
    println!("  SSD        {:>10.2} ML", ml(e.ssd));
    println!("  packaging  {:>10.2} ML", ml(e.packaging));
    println!("  TOTAL      {:>10.2} ML", ml(e.total()));

    println!("\n-- Operational water (simulated year, Eq. 6-7) --");
    println!(
        "  IT energy        {:>12.1} GWh",
        report.energy.value() / 1e6
    );
    println!(
        "  direct (cooling) {:>12.2} ML  ({:.0}%)",
        ml(report.operational.direct),
        report.direct_share.percent()
    );
    println!(
        "  indirect (grid)  {:>12.2} ML  ({:.0}%)",
        ml(report.operational.indirect),
        100.0 - report.direct_share.percent()
    );
    let gallons: Gallons = report.operational.total().into();
    println!(
        "  TOTAL            {:>12.2} ML  (≈ {:.0} million gallons)",
        ml(report.operational.total()),
        gallons.value() / 1e6
    );

    println!("\n-- Intensities (Eq. 8-9) --");
    println!("  mean WUE        {:>8.2}", report.mean_wue);
    println!("  mean EWF        {:>8.2}", report.mean_ewf);
    println!("  mean WI         {:>8.2}", report.mean_wi);
    println!("  WSI-adjusted WI {:>8.2}", report.adjusted_wi);

    println!(
        "\nEmbodied water equals {:.1}% of one year of operational water at this load.",
        100.0 * e.total().value() / report.operational.total().value()
    );
}
