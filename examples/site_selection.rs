//! Water-aware site selection (Takeaways 2 and 6).
//!
//! ```sh
//! cargo run --release --example site_selection
//! ```
//!
//! Sweeps candidate (climate × grid × scarcity) combinations for a
//! Frontier-class machine and ranks them by raw and scarcity-adjusted
//! water intensity — showing that the "cheapest water" site is not the
//! best site once regional scarcity is priced in.

use thirstyflops::core::intensity;
use thirstyflops::core::{ScarcityAdjustment, WaterIntensity};
use thirstyflops::grid::{GridRegion, RegionId};
use thirstyflops::units::{LitersPerKilowattHour, Pue, WaterScarcityIndex};
use thirstyflops::weather::ClimatePreset;

struct Candidate {
    label: &'static str,
    climate: ClimatePreset,
    region: RegionId,
    wsi: f64,
}

fn main() {
    let pue = Pue::new(1.1).expect("modern facility PUE");
    let candidates = [
        Candidate {
            label: "Bologna (IT grid)",
            climate: ClimatePreset::Bologna,
            region: RegionId::EmiliaRomagna,
            wsi: 0.35,
        },
        Candidate {
            label: "Kobe (Kansai grid)",
            climate: ClimatePreset::Kobe,
            region: RegionId::Kansai,
            wsi: 0.13,
        },
        Candidate {
            label: "Lemont (N-IL grid)",
            climate: ClimatePreset::Lemont,
            region: RegionId::NorthernIllinois,
            wsi: 0.55,
        },
        Candidate {
            label: "Oak Ridge (TVA grid)",
            climate: ClimatePreset::OakRidge,
            region: RegionId::Tennessee,
            wsi: 0.10,
        },
        Candidate {
            label: "Livermore (CA grid)",
            climate: ClimatePreset::Livermore,
            region: RegionId::California,
            wsi: 0.70,
        },
    ];

    println!("=== Water-aware site selection for a new HPC center ===\n");
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>7} {:>13}",
        "site", "WUE", "EWF", "WI", "WSI", "adjusted WI"
    );

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for c in &candidates {
        let climate = c.climate.generate();
        let wue_series = c.climate.wue_model().hourly_series(&climate);
        let grid = GridRegion::preset(c.region).simulate_year();
        let wi_series = intensity::hourly_water_intensity(&wue_series, pue, grid.ewf());
        let wi_mean = wi_series.mean();

        let wi = WaterIntensity::new(
            LitersPerKilowattHour::new(wue_series.mean()),
            pue,
            LitersPerKilowattHour::new(grid.ewf().mean()),
        );
        let wsi = WaterScarcityIndex::new(c.wsi).expect("static WSI");
        let adjusted = ScarcityAdjustment::uniform(wsi).adjust(wi).value();

        println!(
            "{:<22} {:>9.2} {:>9.2} {:>9.2} {:>7.2} {:>13.2}",
            c.label,
            wue_series.mean(),
            grid.ewf().mean(),
            wi_mean,
            c.wsi,
            adjusted
        );
        rows.push((c.label.to_string(), wi_mean, adjusted));
    }

    let best_raw = rows
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    let best_adj = rows
        .iter()
        .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
        .unwrap();
    println!("\nLowest raw water intensity     : {}", best_raw.0);
    println!("Lowest scarcity-adjusted WI    : {}", best_adj.0);
    if best_raw.0 != best_adj.0 {
        println!("\nThe rankings differ — volumetric water alone misleads site selection (Takeaway 2/6).");
    } else {
        println!("\nFor these candidates the two rankings agree — but only because the scarcity spread is small.");
    }
}
