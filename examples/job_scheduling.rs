//! Water/carbon-aware job scheduling (Fig. 13, Takeaways 7 and 9).
//!
//! ```sh
//! cargo run --release --example job_scheduling
//! ```
//!
//! 1. Runs the miniAMR kernel to obtain a fixed-energy job;
//! 2. ranks seven start times by water and by carbon (they differ);
//! 3. compares geo-distributed placement policies across two sites.

use thirstyflops::catalog::SystemId;
use thirstyflops::core::SystemYear;
use thirstyflops::scheduler::{
    GeoBalancer, MultiObjective, Policy, SiteSeries, StartTimeOptimizer,
};
use thirstyflops::units::KilowattHours;
use thirstyflops::workload::miniamr::{MiniAmr, MiniAmrConfig};

fn main() {
    println!("=== Part 1: when should the job start? (Fig. 13) ===\n");
    let report = MiniAmr::new(MiniAmrConfig::default())
        .expect("default config is valid")
        .run();
    println!(
        "miniAMR: {} sweeps over {} peak blocks, {:.1} MFLOP, {:.2} s wall",
        report.steps,
        report.peak_blocks,
        report.flops as f64 / 1e6,
        report.elapsed_seconds
    );

    let frontier = SystemYear::simulate(SystemId::Frontier, 2023);
    let node_energy = report.simulated_energy(&frontier.spec.node);
    // Scale the single-node kernel to a 512-node, 3-hour allocation.
    let job_energy = KilowattHours::new(node_energy.value().max(0.01) * 512.0 * 100.0);
    println!(
        "job energy (identical at every start time): {:.1}\n",
        job_energy
    );

    let optimizer = StartTimeOptimizer::new(
        frontier.water_intensity(),
        frontier.carbon.clone(),
        frontier.spec.pue,
    );
    let day = 190 * 24;
    let candidates: Vec<usize> = (0..7).map(|i| day + i * 3).collect();
    let impacts = optimizer
        .evaluate(&candidates, 3, job_energy)
        .expect("candidates valid");
    println!(
        "{:>6} {:>12} {:>11} {:>11} {:>12}",
        "start", "water (L)", "carbon (kg)", "water rank", "carbon rank"
    );
    for i in &impacts {
        println!(
            "{:>5}h {:>12.0} {:>11.1} {:>11} {:>12}",
            i.start_hour % 24,
            i.water.value(),
            i.carbon.value() / 1000.0,
            i.water_rank,
            i.carbon_rank
        );
    }
    let bw = StartTimeOptimizer::best_for_water(&impacts);
    let bc = StartTimeOptimizer::best_for_carbon(&impacts);
    println!(
        "\nBest for water: {:02}:00 — best for carbon: {:02}:00 (different!, Takeaway 9)\n",
        bw.start_hour % 24,
        bc.start_hour % 24
    );

    println!("=== Part 2: which site should run the load? (Takeaway 7) ===\n");
    let polaris = SystemYear::simulate(SystemId::Polaris, 2023);
    let sites = vec![
        SiteSeries::from_year(&frontier),
        SiteSeries::from_year(&polaris),
    ];
    let balancer = GeoBalancer::new(sites).expect("two sites");
    println!(
        "{:<14} {:>14} {:>14} {:>16}",
        "policy", "water (ML)", "carbon (t)", "facility (GWh)"
    );
    for (name, policy) in [
        ("energy-only", Policy::EnergyOnly),
        ("carbon-only", Policy::CarbonOnly),
        ("water-only", Policy::WaterOnly),
        (
            "co-optimize",
            Policy::CoOptimize(MultiObjective::new(0.0, 0.5, 0.5).expect("weights sum to 1")),
        ),
    ] {
        let p = balancer.run_year(1000.0, policy);
        println!(
            "{:<14} {:>14.2} {:>14.1} {:>16.2}",
            name,
            p.water.value() / 1e6,
            p.carbon.value() / 1e6,
            p.facility_energy.value() / 1e6
        );
    }
    println!(
        "\nEnergy-optimal placement is not water-optimal; the co-optimizer trades between them."
    );
}
