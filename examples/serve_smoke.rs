//! The CI `serve-smoke` probe: start the HTTP server on an ephemeral
//! port, exercise `/healthz`, a footprint query (twice, to prove the
//! cache), and `/v1/cache/stats`, then shut down cleanly — all through
//! `std::net::TcpStream`, no curl required.
//!
//! Run via `./ci.sh serve-smoke` or directly:
//!
//! ```sh
//! cargo run --release --example serve_smoke
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use thirstyflops::serve::{api::CacheStatsPayload, Server, ServerConfig};

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("server is listening");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n"
    )
    .expect("request writes");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response reads");
    let (head, body) = raw.split_once("\r\n\r\n").expect("well-formed response");
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, body.to_string())
}

fn main() {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("ephemeral bind");
    let addr = server.local_addr();

    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "healthz status");
    assert!(body.contains("\"status\": \"ok\""), "healthz body: {body}");

    let (status, first) = http_get(addr, "/v1/footprint/polaris?seed=7");
    assert_eq!(status, 200, "footprint status");
    assert!(first.contains("\"system\": \"polaris\""), "footprint body");
    let (_, second) = http_get(addr, "/v1/footprint/polaris?seed=7");
    assert_eq!(first, second, "cached response is byte-identical");

    let (status, stats_body) = http_get(addr, "/v1/cache/stats");
    assert_eq!(status, 200, "stats status");
    let stats: CacheStatsPayload = serde_json::from_str(&stats_body).expect("stats parse");
    assert_eq!(stats.body.hits, 1, "second footprint query hit the cache");
    assert_eq!(
        stats.body.misses, 1,
        "first footprint query was the only miss"
    );
    assert!(
        stats.simulation.system_years.misses >= 1,
        "the cold body computed through the simulation cache"
    );

    server.shutdown();
    println!(
        "serve smoke OK: healthz + footprint (body cache hits {}, misses {}; sim-cache year misses {}) on http://{addr}, clean shutdown",
        stats.body.hits, stats.body.misses, stats.simulation.system_years.misses
    );
}
