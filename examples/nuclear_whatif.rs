//! Nuclear-powered HPC what-if analysis (§5, Fig. 14) plus the
//! water-capping coordination of Takeaway 5.
//!
//! ```sh
//! cargo run --release --example nuclear_whatif
//! ```

use thirstyflops::catalog::SystemId;
use thirstyflops::core::SystemYear;
use thirstyflops::grid::{EnergySource, Scenario};
use thirstyflops::scheduler::capping::SourceOffer;
use thirstyflops::scheduler::WaterCapPlanner;
use thirstyflops::units::{GramsCo2PerKwh, KilowattHours, Liters, LitersPerKilowattHour};

fn main() {
    println!("=== Nuclear-powered HPC: carbon vs water (Fig. 14) ===\n");
    for id in SystemId::PAPER {
        let year = SystemYear::simulate(id, 2023);
        let ci_mix = GramsCo2PerKwh::new(year.carbon.mean());
        let ewf_mix = LitersPerKilowattHour::new(year.ewf.mean());
        let wue = year.wue.mean();
        let pue = year.spec.pue.value();
        let wi_mix = wue + pue * ewf_mix.value();

        println!("{id} ({}):", year.spec.location);
        for s in [
            Scenario::AllCoal,
            Scenario::AllNuclear,
            Scenario::OtherRenewable,
            Scenario::WaterIntensiveRenewable,
        ] {
            let d_carbon =
                100.0 * (ci_mix.value() - s.carbon_intensity(ci_mix).value()) / ci_mix.value();
            let wi_s = wue + pue * s.ewf(ewf_mix).value();
            let d_water = 100.0 * (wi_mix - wi_s) / wi_mix;
            println!(
                "  {:<40} carbon {:>+7.0}%   water {:>+7.0}%",
                s.label(),
                d_carbon,
                d_water
            );
        }
        println!();
    }
    println!("Nuclear saves carbon everywhere, but its *water* effect flips sign by location (Takeaway 10).\n");

    // Takeaway 5: on a hot day, a shared water budget forces the grid to
    // back off water-hungry generation.
    println!("=== Water capping: cooling vs generation (Takeaway 5) ===\n");
    let planner = WaterCapPlanner::new(thirstyflops::units::Pue::new(1.2).expect("static PUE"));
    let offers = vec![
        SourceOffer {
            source: EnergySource::Hydro,
            capacity_kwh: 800.0,
        },
        SourceOffer {
            source: EnergySource::Nuclear,
            capacity_kwh: 800.0,
        },
        SourceOffer {
            source: EnergySource::Gas,
            capacity_kwh: 800.0,
        },
        SourceOffer {
            source: EnergySource::Wind,
            capacity_kwh: 150.0,
        },
    ];
    let demand = KilowattHours::new(1000.0);
    let budget = Liters::new(6000.0);
    for (day, wue) in [("mild day (WUE 1.0)", 1.0), ("hot day (WUE 3.5)", 3.5)] {
        let out = planner
            .dispatch(demand, LitersPerKilowattHour::new(wue), &offers, budget)
            .expect("offers cover demand");
        println!("{day}: budget {budget}");
        println!(
            "  cooling {:>8.0} L | generation {:>8.0} L | carbon {:>8.1} kg | feasible: {}",
            out.cooling_water.value(),
            out.generation_water.value(),
            out.carbon_g / 1000.0,
            out.feasible
        );
        for (o, kwh) in offers.iter().zip(&out.dispatch_kwh) {
            if *kwh > 0.0 {
                println!("    {:<10} {:>7.0} kWh", o.source.name(), kwh);
            }
        }
    }
    println!("\nHotter weather eats the water budget, pushing generation toward low-EWF sources at a carbon cost.");
}
