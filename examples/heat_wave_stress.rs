//! Stress-testing a facility against compound events: a heat wave (WUE
//! spike) coinciding with a drought-curtailed hydro grid (EWF/carbon
//! shift) — the failure-injection surface of the framework.
//!
//! Exercises the paper's temporal-variation claims (Fig. 11–12: WUE and
//! EWF move with season and grid mix, so WI is a moving target) and the
//! Takeaway 5 water-capping coordination under the stressed peak: the
//! Eq. 8 identity `WI = WUE + PUE * EWF` is re-evaluated inside the
//! 10-day event window to show which effect dominates.
//!
//! ```sh
//! cargo run --release -p thirstyflops --example heat_wave_stress
//! ```

use thirstyflops::catalog::{SystemId, SystemSpec};
use thirstyflops::grid::{EnergySource, GridRegion};
use thirstyflops::scheduler::capping::SourceOffer;
use thirstyflops::scheduler::WaterCapPlanner;
use thirstyflops::timeseries::Month;
use thirstyflops::units::{KilowattHours, Liters, LitersPerKilowattHour};

fn main() {
    let spec = SystemSpec::reference(SystemId::Marconi);
    println!("=== Compound-event stress test: {} ===\n", spec.id);

    // Baseline July.
    let base_climate = spec.climate.generate();
    let wue_model = spec.climate.wue_model();
    let base_wue = wue_model.hourly_series(&base_climate);

    // Inject a 10-day, +9 °C heat wave in mid-July.
    let hot_climate = base_climate
        .with_heat_wave(193, 10, 9.0)
        .expect("window inside year");
    let hot_wue = wue_model.hourly_series(&hot_climate);

    // Simultaneously, drought curtails Alpine hydro for the same month.
    let region = GridRegion::preset(spec.region);
    let base_grid = region.simulate_year();
    let drought_grid = region
        .simulate_year_with_outage(EnergySource::Hydro, 193 * 24, 210 * 24)
        .expect("hydro is in the Italian mix");

    println!("July means (baseline -> compound event):");
    println!(
        "  WUE  {:>6.2} -> {:>6.2} L/kWh",
        base_wue.monthly_mean().get(Month::July),
        hot_wue.monthly_mean().get(Month::July)
    );
    println!(
        "  EWF  {:>6.2} -> {:>6.2} L/kWh  (hydro offline)",
        base_grid.ewf().monthly_mean().get(Month::July),
        drought_grid.ewf().monthly_mean().get(Month::July)
    );
    println!(
        "  CI   {:>6.0} -> {:>6.0} gCO2/kWh",
        base_grid.carbon().monthly_mean().get(Month::July),
        drought_grid.carbon().monthly_mean().get(Month::July)
    );

    // Event-window WI comparison.
    let wi = |wue: &thirstyflops::timeseries::HourlySeries,
              ewf: &thirstyflops::timeseries::HourlySeries| {
        let lo = 193 * 24;
        let hi = 203 * 24;
        let mut acc = 0.0;
        for h in lo..hi {
            acc += wue.get(h) + spec.pue.value() * ewf.get(h);
        }
        acc / (hi - lo) as f64
    };
    let base_wi = wi(&base_wue, base_grid.ewf());
    let event_wi = wi(&hot_wue, drought_grid.ewf());
    println!("\nevent-window water intensity: {base_wi:.2} -> {event_wi:.2} L/kWh");
    if event_wi < base_wi {
        println!("(the drought removes thirsty hydro faster than the heat adds cooling water)");
    } else {
        println!("(cooling demand outweighs the hydro curtailment)");
    }

    // What does the water-cap coordinator do at the event peak?
    println!("\n=== Water-cap dispatch at the event peak ===\n");
    let planner = WaterCapPlanner::new(spec.pue);
    let offers = vec![
        SourceOffer {
            source: EnergySource::Hydro,
            capacity_kwh: 400.0,
        }, // curtailed
        SourceOffer {
            source: EnergySource::Nuclear,
            capacity_kwh: 900.0,
        },
        SourceOffer {
            source: EnergySource::Gas,
            capacity_kwh: 1500.0,
        },
        SourceOffer {
            source: EnergySource::Wind,
            capacity_kwh: 200.0,
        },
    ];
    let peak_wue = LitersPerKilowattHour::new(hot_wue.monthly_mean().get(Month::July));
    for budget_l in [12_000.0, 8_000.0, 5_500.0] {
        let out = planner
            .dispatch(
                KilowattHours::new(1000.0),
                peak_wue,
                &offers,
                Liters::new(budget_l),
            )
            .expect("offers cover demand");
        println!(
            "budget {budget_l:>7.0} L: cooling {:>6.0} L | generation {:>6.0} L | carbon {:>6.1} kg | feasible {}",
            out.cooling_water.value(),
            out.generation_water.value(),
            out.carbon_g / 1000.0,
            out.feasible
        );
    }
    println!("\nTighter budgets push the dispatch off hydro and onto gas — carbon is the pressure-relief valve.");
}
