//! A "Water500" ranking (§6(b)): order cataloged systems — including the
//! §6 extension systems Aurora and El Capitan — by annual operational
//! water footprint and by scarcity-adjusted water intensity.
//!
//! ```sh
//! cargo run --release --example water500
//! ```

use thirstyflops::catalog::SystemId;
use thirstyflops::core::{AnnualReport, SystemYear};

fn main() {
    println!("=== Water500: water footprint ranking of cataloged systems ===\n");
    let mut reports: Vec<AnnualReport> = SystemId::ALL
        .iter()
        .map(|&id| AnnualReport::from_year(&SystemYear::simulate(id, 2023)))
        .collect();

    println!("-- By annual operational water (the classic 'who drinks most') --\n");
    reports.sort_by(|a, b| {
        b.operational_total()
            .value()
            .partial_cmp(&a.operational_total().value())
            .unwrap()
    });
    println!(
        "{:<4} {:<12} {:>12} {:>12} {:>10} {:>10}",
        "#", "system", "water (ML)", "energy (GWh)", "WI", "direct %"
    );
    for (i, r) in reports.iter().enumerate() {
        println!(
            "{:<4} {:<12} {:>12.1} {:>12.1} {:>10.2} {:>10.0}",
            i + 1,
            r.id.to_string(),
            r.operational_total().value() / 1e6,
            r.energy.value() / 1e6,
            r.mean_wi.value(),
            r.direct_share.percent()
        );
    }

    println!(
        "\n-- By scarcity-adjusted water intensity (who strains their basin most per kWh) --\n"
    );
    reports.sort_by(|a, b| {
        b.adjusted_wi
            .value()
            .partial_cmp(&a.adjusted_wi.value())
            .unwrap()
    });
    println!(
        "{:<4} {:<12} {:>14} {:>10}",
        "#", "system", "adjusted WI", "raw WI"
    );
    for (i, r) in reports.iter().enumerate() {
        println!(
            "{:<4} {:<12} {:>14.2} {:>10.2}",
            i + 1,
            r.id.to_string(),
            r.adjusted_wi.value(),
            r.mean_wi.value()
        );
    }
    println!(
        "\nThe two orderings differ: volume and scarcity-weighted impact are different questions."
    );
}
