//! A minimal, vendored stand-in for `serde_json` (offline build shim).
//!
//! Serializes and parses the [`serde::Value`] tree of the vendored serde
//! shim. Output conventions match serde_json where this workspace's tests
//! can observe them:
//!
//! * floats always carry a decimal point or exponent (`2.0`, not `2`), via
//!   Rust's shortest-roundtrip `{:?}` formatting (serde_json uses ryu,
//!   which produces the same shortest representations);
//! * integers print without a decimal point, so `u64` round-trips exactly;
//! * object entries keep insertion order (deterministic output);
//! * non-finite floats serialize as `null` (serde_json's lossy default).

use std::fmt::Write as _;

pub use serde::Error;
use serde::Value;

/// Serializes a value to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes a value to a 2-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------- writing

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Int(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{:?}` is Rust's shortest round-trip form: whole numbers keep a
        // trailing `.0` (`2.0`), which the round-trip tests rely on.
        let _ = write!(out, "{x:?}");
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))?;
        self.pos += 1;
        Ok(b)
    }

    fn eat_digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::custom(format!(
                "expected {:?}, got {:?}",
                b as char, got as char
            )));
        }
        Ok(())
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "invalid JSON literal, expected {lit}"
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self
            .peek()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))?
        {
            b'n' => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bump()? {
                        b',' => continue,
                        b']' => return Ok(Value::Array(items)),
                        other => {
                            return Err(Error::custom(format!(
                                "expected ',' or ']', got {:?}",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.bump()? {
                        b',' => continue,
                        b'}' => return Ok(Value::Object(pairs)),
                        other => {
                            return Err(Error::custom(format!(
                                "expected ',' or '}}', got {:?}",
                                other as char
                            )))
                        }
                    }
                }
            }
            _ => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in JSON string"))?,
            );
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{08}'),
                    b'f' => out.push('\u{0c}'),
                    b'u' => {
                        let code = self.parse_hex4()?;
                        // Surrogate pairs.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                    }
                    other => {
                        return Err(Error::custom(format!("invalid escape \\{}", other as char)))
                    }
                },
                _ => unreachable!("scanner stops only at quote or backslash"),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::custom("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        // Strict JSON grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
        // (no leading '+', no leading zeros, no bare '.5' or '1.').
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.eat_digits();
        if int_digits == 0 {
            return Err(Error::custom("invalid JSON number"));
        }
        if int_digits > 1 && self.bytes[self.pos - int_digits] == b'0' {
            return Err(Error::custom("JSON numbers may not have leading zeros"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if self.eat_digits() == 0 {
                return Err(Error::custom("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.eat_digits() == 0 {
                return Err(Error::custom("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::UInt(x));
            }
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::Int(x));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid JSON number {text:?}")))
    }
}
