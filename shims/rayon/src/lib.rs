//! A minimal, vendored stand-in for `rayon` (offline build shim).
//!
//! `par_iter()` returns the plain sequential slice iterator, which supports
//! the same `map`/`zip`/`collect` chains the workspace uses — results are
//! identical, only the parallel speedup is absent. Replacing this shim with
//! a real work-stealing pool (or a `std::thread::scope` chunked bridge) is
//! a known open item in ROADMAP.md.

use std::fmt;

/// Import surface mirroring `rayon::prelude`.
pub mod prelude {
    /// Adds `par_iter` to slices and anything that derefs to a slice
    /// (`Vec`, arrays). Sequential in this shim.
    pub trait ParallelSliceExt<T> {
        /// Iterates "in parallel" (sequentially here) over shared items.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
    }

    impl<T> ParallelSliceExt<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }
}

/// Builder for a scoped thread pool (mirrors `rayon::ThreadPoolBuilder`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a worker count (recorded but unused in this shim).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            _num_threads: self.num_threads,
        })
    }
}

/// A "thread pool" that runs closures inline.
#[derive(Debug)]
pub struct ThreadPool {
    _num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` within the pool (directly, in this shim).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }
}

/// Error building a thread pool (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}
