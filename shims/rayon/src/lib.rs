//! A minimal, vendored stand-in for `rayon` (offline build shim) with
//! **real multi-threaded execution**.
//!
//! Parallel operations split their index range into contiguous chunks,
//! hand the chunks to scoped worker threads through a shared claim
//! counter (dynamic load balancing — an idle worker "steals" the next
//! unclaimed chunk), and merge per-chunk results **in ascending index
//! order**. Because every item is computed by a pure function of its
//! index and the merge order is fixed, results are bit-identical to a
//! sequential run at every thread count — the workspace's determinism
//! contract (see `docs/CONCURRENCY.md` at the repo root).
//!
//! Thread-count resolution, first match wins:
//!
//! 1. an enclosing [`ThreadPool::install`] (per-thread override),
//! 2. a pool built with [`ThreadPoolBuilder::build_global`],
//! 3. the `THIRSTYFLOPS_THREADS` environment variable,
//! 4. the `RAYON_NUM_THREADS` environment variable,
//! 5. [`std::thread::available_parallelism`].
//!
//! With one worker every operation runs inline on the calling thread —
//! no threads are spawned, so single-threaded runs pay no overhead.
//!
//! Fidelity gaps vs. real rayon (recorded in `shims/README.md`): no
//! adaptive splitting (chunk granularity is fixed at ~4 chunks per
//! worker), no persistent global pool (workers are scoped threads
//! spawned per top-level operation), and no nested-pool tuning (a
//! parallel operation started *from inside* a worker thread falls back
//! to the global/default thread count rather than the enclosing pool's).

use std::cell::Cell;
use std::env;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, OnceLock};

/// Import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{FromParallelIterator, ParallelIterator, ParallelSliceExt};
}

// ---------------------------------------------------------------------------
// Thread-count resolution
// ---------------------------------------------------------------------------

/// The process-wide default worker count, set at most once (by
/// [`ThreadPoolBuilder::build_global`] or lazily from the environment).
static GLOBAL_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Worker count installed on this thread by [`ThreadPool::install`];
    /// 0 means "no override".
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Reads a positive integer from an environment variable.
fn env_threads(var: &str) -> Option<usize> {
    env::var(var)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The environment fallback chain shared by the global default and
/// auto-configured pool builders.
fn env_or_hardware_threads() -> usize {
    env_threads("THIRSTYFLOPS_THREADS")
        .or_else(|| env_threads("RAYON_NUM_THREADS"))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The process default (env vars, then hardware parallelism).
fn default_threads() -> usize {
    *GLOBAL_THREADS.get_or_init(env_or_hardware_threads)
}

/// The worker count a parallel operation started on this thread will use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed > 0 {
        installed
    } else {
        default_threads()
    }
}

// ---------------------------------------------------------------------------
// The chunked scoped executor
// ---------------------------------------------------------------------------

/// Runs `produce(i)` for every `i in 0..len` across the current worker
/// count and returns the results **in index order**, regardless of which
/// worker computed what. The workhorse behind `collect`/`for_each`/`sum`.
fn run_indexed<R, F>(len: usize, threads: usize, produce: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.clamp(1, len.max(1));
    if threads <= 1 || len <= 1 {
        return (0..len).map(produce).collect();
    }

    // ~4 chunks per worker: coarse enough to amortize claim/send
    // overhead, fine enough that a slow chunk doesn't serialize the tail.
    let chunk = len.div_ceil(threads * 4).max(1);
    let n_chunks = len.div_ceil(chunk);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Vec<R>)>();

    let drain_chunks = |tx: mpsc::Sender<(usize, Vec<R>)>| loop {
        let c = next.fetch_add(1, Ordering::Relaxed);
        if c >= n_chunks {
            break;
        }
        let lo = c * chunk;
        let hi = (lo + chunk).min(len);
        let items: Vec<R> = (lo..hi).map(&produce).collect();
        if tx.send((c, items)).is_err() {
            break;
        }
    };
    std::thread::scope(|scope| {
        // The calling thread is worker 0 (so `threads` configured means
        // `threads` running, and one fewer spawn per operation); panics
        // from the spawned workers propagate when the scope joins them.
        for _ in 1..threads {
            let tx = tx.clone();
            let drain_chunks = &drain_chunks;
            scope.spawn(move || drain_chunks(tx));
        }
        drain_chunks(tx.clone());
    });
    drop(tx);

    let mut parts: Vec<Option<Vec<R>>> = (0..n_chunks).map(|_| None).collect();
    for (c, items) in rx {
        parts[c] = Some(items);
    }
    let mut out = Vec::with_capacity(len);
    for part in parts {
        out.extend(part.expect("every claimed chunk is delivered"));
    }
    out
}

/// Runs two closures, potentially on two threads (mirrors `rayon::join`).
///
/// `oper_a` always runs on the calling thread; with more than one worker
/// configured, `oper_b` runs concurrently on a scoped thread. Both
/// results are always returned as `(ra, rb)`, so the output is identical
/// at every thread count.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        (ra, rb)
    } else {
        std::thread::scope(|scope| {
            let handle = scope.spawn(oper_b);
            let ra = oper_a();
            let rb = handle
                .join()
                .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
            (ra, rb)
        })
    }
}

// ---------------------------------------------------------------------------
// Parallel iterators
// ---------------------------------------------------------------------------

/// A parallel iterator over exactly-indexed items (every iterator this
/// shim produces knows its length, like rayon's `IndexedParallelIterator`).
///
/// Implementors supply random access (`par_len` + `par_index`); the
/// provided combinators (`map`, `zip`, `collect`, `for_each`, `sum`)
/// execute across the current thread count with deterministic,
/// index-ordered results.
pub trait ParallelIterator: Sized + Sync {
    /// The produced item type.
    type Item: Send;

    /// Exact number of items.
    fn par_len(&self) -> usize;

    /// Produces item `i` (must be a pure function of `i` for the
    /// determinism contract to hold).
    fn par_index(&self, i: usize) -> Self::Item;

    /// Maps each item through `f` (applied on the worker threads).
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Pairs items positionally with `other` (length = the shorter side).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Executes in parallel and gathers the items in index order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Executes `f` on every item in parallel (no output).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _: Vec<()> = run_indexed(self.par_len(), current_num_threads(), |i| {
            f(self.par_index(i))
        });
    }

    /// Sums the items; the reduction runs in ascending index order, so
    /// floating-point results match a sequential sum bit for bit.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item>,
    {
        run_indexed(self.par_len(), current_num_threads(), |i| self.par_index(i))
            .into_iter()
            .sum()
    }
}

/// Conversion from a parallel iterator (mirrors
/// `rayon::iter::FromParallelIterator`).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds `Self` from the iterator's items in index order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        run_indexed(iter.par_len(), current_num_threads(), |i| iter.par_index(i))
    }
}

/// Borrowing parallel iterator over a slice (`par_iter()`).
#[derive(Debug, Clone, Copy)]
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn par_index(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Parallel iterator over contiguous sub-slices (`par_chunks(n)`).
#[derive(Debug, Clone, Copy)]
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn par_index(&self, i: usize) -> &'a [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.slice.len());
        &self.slice[lo..hi]
    }
}

/// `map` adapter.
#[derive(Debug, Clone, Copy)]
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn par_index(&self, i: usize) -> R {
        (self.f)(self.base.par_index(i))
    }
}

/// `zip` adapter.
#[derive(Debug, Clone, Copy)]
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);

    fn par_len(&self) -> usize {
        self.a.par_len().min(self.b.par_len())
    }

    fn par_index(&self, i: usize) -> (A::Item, B::Item) {
        (self.a.par_index(i), self.b.par_index(i))
    }
}

/// Adds `par_iter`/`par_chunks` to slices and anything that derefs to a
/// slice (`Vec`, arrays).
pub trait ParallelSliceExt<T: Sync> {
    /// Parallel iterator over shared references to the items.
    fn par_iter(&self) -> ParIter<'_, T>;

    /// Parallel iterator over contiguous chunks of at most `chunk_size`
    /// items (the last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSliceExt<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks {
            slice: self,
            size: chunk_size,
        }
    }
}

// ---------------------------------------------------------------------------
// Thread pools
// ---------------------------------------------------------------------------

/// Builder for a thread pool (mirrors `rayon::ThreadPoolBuilder`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with default settings (auto-detected workers).
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a worker count; 0 means auto-detect.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds a pool handle. Workers are scoped threads spawned per
    /// operation, so building never allocates OS resources and never
    /// fails.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.resolved(),
        })
    }

    /// Installs this configuration as the process-wide default.
    ///
    /// Fails (like rayon) if the default was already initialized — by an
    /// earlier `build_global` or by any parallel operation that already
    /// resolved the environment defaults.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS
            .set(self.resolved())
            .map_err(|_| ThreadPoolBuildError(()))
    }

    fn resolved(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            env_or_hardware_threads()
        }
    }
}

/// A pool handle: a worker count that [`ThreadPool::install`] applies to
/// every parallel operation started inside it.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count installed for all nested
    /// parallel operations on the calling thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|cell| {
            let previous = cell.replace(self.num_threads);
            let guard = InstallGuard { previous };
            let result = op();
            drop(guard);
            result
        })
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Restores the caller's thread-count override even if `op` panics.
struct InstallGuard {
    previous: usize,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED_THREADS.with(|cell| cell.set(self.previous));
    }
}

/// Error building a thread pool (produced only by a repeated
/// [`ThreadPoolBuilder::build_global`]).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("the global thread pool has already been initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn map_collect_preserves_index_order_at_every_thread_count() {
        let input: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = input.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 3, 8, 16] {
            let got: Vec<u64> =
                pool(threads).install(|| input.par_iter().map(|&x| x * x).collect());
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn float_sum_is_bit_identical_across_thread_counts() {
        let input: Vec<f64> = (0..10_000).map(|i| (i as f64).sin() * 1e-3).collect();
        let seq: f64 = input.iter().sum();
        for threads in [1, 4, 9] {
            let par: f64 = pool(threads).install(|| input.par_iter().sum());
            assert_eq!(seq.to_bits(), par.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn zip_pairs_positionally() {
        let a: Vec<i32> = (0..257).collect();
        let b: Vec<i32> = (0..257).rev().collect();
        let got: Vec<i32> =
            pool(4).install(|| a.par_iter().zip(b.par_iter()).map(|(x, y)| x + y).collect());
        assert!(got.iter().all(|&s| s == 256), "{got:?}");
        assert_eq!(got.len(), 257);
    }

    #[test]
    fn par_chunks_covers_the_slice_in_order() {
        let input: Vec<u32> = (0..103).collect();
        let sums: Vec<u32> = pool(4).install(|| {
            input
                .par_chunks(10)
                .map(|chunk| chunk.iter().sum::<u32>())
                .collect()
        });
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<u32>(), input.iter().sum::<u32>());
        // First chunk is 0+1+..+9, deterministically in slot 0.
        assert_eq!(sums[0], 45);
        assert_eq!(*sums.last().unwrap(), 102 + 101 + 100);
    }

    #[test]
    fn join_returns_both_results_in_order() {
        let (a, b) = pool(2).install(|| join(|| 2 + 2, || "b"));
        assert_eq!((a, b), (4, "b"));
        let (a, b) = pool(1).install(|| join(|| 2 + 2, || "b"));
        assert_eq!((a, b), (4, "b"));
    }

    #[test]
    fn install_overrides_nest_and_restore() {
        pool(7).install(|| {
            assert_eq!(current_num_threads(), 7);
            pool(2).install(|| assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 7);
        });
    }

    #[test]
    fn for_each_visits_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let hits = AtomicU64::new(0);
        let input: Vec<u64> = (1..=100).collect();
        pool(4).install(|| {
            input.par_iter().for_each(|&x| {
                hits.fetch_add(x, Ordering::Relaxed);
            })
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        let empty: Vec<u8> = Vec::new();
        let got: Vec<u8> = pool(8).install(|| empty.par_iter().map(|&x| x).collect());
        assert!(got.is_empty());
        let one = [42u8];
        let got: Vec<u8> = pool(8).install(|| one.par_iter().map(|&x| x + 1).collect());
        assert_eq!(got, vec![43]);
    }
}
