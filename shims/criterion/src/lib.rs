//! A minimal, vendored stand-in for `criterion` (offline build shim).
//!
//! Provides the macro/type surface the `crates/bench` suites use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `BenchmarkId`, `black_box` — and times each benchmark
//! with a simple fixed-iteration wall-clock loop. There is no warm-up
//! management, outlier rejection, or statistical analysis; printed numbers
//! are mean wall-clock time per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to each benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a parameter's display form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this bencher's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // One untimed warm-up pass, then the timed loop.
    let mut warmup = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warmup);
    let mut bencher = Bencher {
        iterations: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / sample_size as f64;
    println!(
        "{name:<50} {:>12.3} µs/iter ({sample_size} iters)",
        per_iter * 1e6
    );
}

/// Declares a benchmark group function (both criterion forms supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
