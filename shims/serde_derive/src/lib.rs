//! Minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! vendored serde shim, written against `proc_macro` directly (no
//! syn/quote — those would themselves need the network to fetch).
//!
//! Supported shapes — exactly what this workspace uses:
//!
//! * structs with named fields, tuple structs, unit structs;
//! * `#[serde(transparent)]` single-field structs (serialize as the inner
//!   value, like serde);
//! * enums with unit, newtype, tuple, and struct variants (externally
//!   tagged: unit variants as a bare string, payload variants as a
//!   one-entry object, like serde's default representation);
//! * plain type generics (`struct ParetoPoint<T> { ... }`).
//!
//! Generated code calls the `to_value`/`from_value` methods of the shim's
//! concrete [`Value`](../serde/struct.Value.html) data model.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of item the derive is attached to.
enum Kind {
    /// `struct S { a: A, b: B }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct S(A, B);` — field count.
    TupleStruct(usize),
    /// `struct S;`
    UnitStruct,
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

/// One enum variant.
struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Parsed derive input.
struct Input {
    name: String,
    generics: Vec<String>,
    transparent: bool,
    kind: Kind,
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_serialize(&item)
        .parse()
        .expect("derive(Serialize): generated code parses")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_deserialize(&item)
        .parse()
        .expect("derive(Deserialize): generated code parses")
}

// ---------------------------------------------------------------- parsing

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(id) if id.to_string() == s)
}

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;

    // Outer attributes (doc comments, #[allow], #[serde(transparent)], ...).
    while i < tokens.len() && is_punct(&tokens[i], '#') {
        if let TokenTree::Group(g) = &tokens[i + 1] {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if inner.len() == 2
                && is_ident(&inner[0], "serde")
                && matches!(&inner[1], TokenTree::Group(args)
                    if args.stream().to_string().contains("transparent"))
            {
                transparent = true;
            }
        }
        i += 2;
    }

    // Visibility.
    if i < tokens.len() && is_ident(&tokens[i], "pub") {
        i += 1;
        if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
            i += 1;
        }
    }

    let is_enum = if is_ident(&tokens[i], "struct") {
        false
    } else if is_ident(&tokens[i], "enum") {
        true
    } else {
        panic!("derive: expected `struct` or `enum`, got {:?}", tokens[i]);
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected item name, got {other:?}"),
    };
    i += 1;

    // Generic parameters: only plain `<T, U>` type parameters are supported.
    let mut generics = Vec::new();
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        i += 1;
        let mut depth = 1usize;
        let mut expect_param = true;
        while depth > 0 {
            let t = &tokens[i];
            if is_punct(t, '<') {
                depth += 1;
            } else if is_punct(t, '>') {
                depth -= 1;
            } else if is_punct(t, ',') && depth == 1 {
                expect_param = true;
            } else if depth == 1 && expect_param {
                if let TokenTree::Ident(id) = t {
                    generics.push(id.to_string());
                }
                expect_param = false;
            }
            i += 1;
        }
    }

    let kind = if is_enum {
        let body = match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("derive: expected enum body, got {other:?}"),
        };
        Kind::Enum(parse_variants(body))
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(split_top_level(g.stream()).len())
            }
            Some(t) if is_punct(t, ';') => Kind::UnitStruct,
            other => panic!("derive: expected struct body, got {other:?}"),
        }
    };

    Input {
        name,
        generics,
        transparent,
        kind,
    }
}

/// Splits a token stream at top-level commas, tracking `<...>` nesting so
/// commas inside generic arguments (e.g. `BTreeMap<K, V>`) don't split.
/// `->` arrows are skipped so their `>` doesn't unbalance the count.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut depth = 0usize;
    let mut k = 0;
    while k < tokens.len() {
        let t = &tokens[k];
        if is_punct(t, '-') && k + 1 < tokens.len() && is_punct(&tokens[k + 1], '>') {
            current.push(tokens[k].clone());
            current.push(tokens[k + 1].clone());
            k += 2;
            continue;
        }
        if is_punct(t, '<') {
            depth += 1;
        } else if is_punct(t, '>') {
            depth = depth.saturating_sub(1);
        } else if is_punct(t, ',') && depth == 0 {
            chunks.push(std::mem::take(&mut current));
            k += 1;
            continue;
        }
        current.push(t.clone());
        k += 1;
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Extracts field names from a named-struct body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| field_name(&chunk))
        .collect()
}

/// First identifier after attributes and visibility: the field name.
fn field_name(chunk: &[TokenTree]) -> String {
    let mut i = 0;
    while i < chunk.len() && is_punct(&chunk[i], '#') {
        i += 2;
    }
    if i < chunk.len() && is_ident(&chunk[i], "pub") {
        i += 1;
        if matches!(&chunk[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
            i += 1;
        }
    }
    match &chunk[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected field name, got {other:?}"),
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            while i < chunk.len() && is_punct(&chunk[i], '#') {
                i += 2;
            }
            let name = match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("derive: expected variant name, got {other:?}"),
            };
            i += 1;
            // Anything after a `=` is an explicit discriminant; ignore it.
            let fields = match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantFields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantFields::Tuple(split_top_level(g.stream()).len())
                }
                _ => VariantFields::Unit,
            };
            Variant { name, fields }
        })
        .collect()
}

// ------------------------------------------------------------- generation

/// `Name` or `Name<T, U>` plus the `impl<...>` header for a given bound.
fn headers(item: &Input, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let params: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        (
            format!("<{}>", params.join(", ")),
            format!("{}<{}>", item.name, item.generics.join(", ")),
        )
    }
}

fn gen_serialize(item: &Input) -> String {
    let (impl_generics, ty) = headers(item, "::serde::Serialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            if item.transparent {
                assert!(
                    fields.len() == 1,
                    "#[serde(transparent)] requires exactly one field"
                );
                format!("::serde::Serialize::to_value(&self.{})", fields[0])
            } else {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))")
                    })
                    .collect();
                format!(
                    "::serde::Value::Object(::std::vec![{}])",
                    entries.join(", ")
                )
            }
        }
        Kind::TupleStruct(n) => {
            if item.transparent || *n == 1 {
                assert!(*n == 1, "#[serde(transparent)] requires exactly one field");
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let entries: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
            }
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![\
                             ({vname:?}.to_string(), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|k| format!("__f{k}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Object(::std::vec![\
                                 ({vname:?}.to_string(), ::serde::Value::Array(::std::vec![{vals}]))]),",
                                binds = binds.join(", "),
                                vals = vals.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {fields} }} => ::serde::Value::Object(::std::vec![\
                                 ({vname:?}.to_string(), ::serde::Value::Object(::std::vec![{entries}]))]),",
                                fields = fields.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Input) -> String {
    let (impl_generics, ty) = headers(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            if item.transparent {
                format!(
                    "::std::result::Result::Ok({name} {{ {}: ::serde::Deserialize::from_value(__v)? }})",
                    fields[0]
                )
            } else {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(::serde::__get_field(__obj, {f:?})?)?"
                        )
                    })
                    .collect();
                format!(
                    "let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::Error::custom(concat!(\"expected object for \", {name:?})))?;\n\
                     ::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            }
        }
        Kind::TupleStruct(n) => {
            if item.transparent || *n == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
            } else {
                let inits: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                    .collect();
                format!(
                    "let __arr = __v.as_array().ok_or_else(|| \
                     ::serde::Error::custom(concat!(\"expected array for \", {name:?})))?;\n\
                     if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::Error::custom(concat!(\"wrong tuple length for \", {name:?}))); }}\n\
                     ::std::result::Result::Ok({name}({}))",
                    inits.join(", ")
                )
            }
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(1) => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__payload)?)),"
                        )),
                        VariantFields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let __arr = __payload.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected array payload\"))?;\n\
                                 if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::Error::custom(\"wrong tuple variant length\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::__get_field(__fobj, {f:?})?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let __fobj = __payload.as_object().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected object payload\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(concat!(\"unknown \", {name:?}, \" variant {{}}\"), __other))),\n\
                 }},\n\
                 ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__tag, __payload) = &__pairs[0];\n\
                 match __tag.as_str() {{\n\
                 {payload_arms}\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(concat!(\"unknown \", {name:?}, \" variant {{}}\"), __other))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 concat!(\"expected \", {name:?}, \" as string or single-entry object\"))),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                payload_arms = payload_arms.join("\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Deserialize for {ty} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
