//! A minimal, vendored stand-in for `proptest` (offline build shim).
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest!` macro with an optional `#![proptest_config(...)]` header,
//! range and `any::<T>()` strategies, tuple strategies,
//! [`collection::vec()`](collection::vec), `.prop_map`, `prop_assert!`,
//! and `prop_assume!`.
//!
//! Differences from real proptest: sampling is plain uniform (no value
//! biasing toward edge cases), failures are not shrunk to minimal
//! counterexamples, and the RNG is seeded deterministically from the test
//! name, so runs are reproducible but not tunable via `PROPTEST_*`
//! environment variables.

/// Test-runner plumbing: the deterministic RNG handed to strategies.
pub mod test_runner {
    /// SplitMix64: small, fast, and plenty for test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from a test name.
        pub fn from_name(name: &str) -> Self {
            let mut state = 0x9e37_79b9_7f4a_7c15u64;
            for b in name.bytes() {
                state = state.wrapping_add(u64::from(b));
                state = state.wrapping_mul(0xbf58_476d_1ce4_e5b9);
                state ^= state >> 27;
            }
            TestRng { state }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
        }

        /// Uniform `u64` in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Strategies: how to generate values of a given type.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values for property tests.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (mirrors proptest's
        /// `Strategy::prop_map`).
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u64;
                    assert!(span > 0, "empty strategy range");
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+),)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!(
        (S0 / 0),
        (S0 / 0, S1 / 1),
        (S0 / 0, S1 / 1, S2 / 2),
        (S0 / 0, S1 / 1, S2 / 2, S3 / 3),
        (S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4),
        (S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5),
    );

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Generates any value of `T` (mirrors `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Types with a default full-domain generator.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, wide-ranged.
            (rng.unit_f64() - 0.5) * 2e12
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A length specification: an exact size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min).max(1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Common imports (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let __strats = ($($strat,)*);
            for __case in 0..__cfg.cases {
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    #[allow(unused_parens)]
                    let ($($arg,)*) =
                        $crate::strategy::Strategy::sample(&__strats, &mut __rng);
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name), __case + 1, __cfg.cases, __msg
                    );
                }
            }
        }
    )*};
}

/// Asserts inside a property body; failures report the sampled case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("prop_assert!({}) failed", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq! failed: {:?} != {:?}",
                __l,
                __r
            ));
        }
    }};
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}
