//! A minimal, vendored stand-in for the `rand` crate (offline build shim).
//!
//! Unlike the other shims, this one must be *bit-compatible* with the real
//! thing: the workspace's golden-value tests pin numbers produced by
//! seeded RNG streams, so `StdRng::seed_from_u64(s)` followed by
//! `rng.random::<f64>()` has to yield the same sequence as rand 0.9.
//! Three pieces reproduce that:
//!
//! 1. `seed_from_u64` expands the `u64` into a 32-byte seed with PCG32,
//!    exactly as `rand_core`'s default implementation does;
//! 2. `StdRng` is the ChaCha12 block cipher in counter mode
//!    (`rand_chacha`'s `ChaCha12Rng`), emitting the same `u32` word
//!    stream, with `next_u64` composing two consecutive words
//!    little-endian-first;
//! 3. `random::<f64>()` uses the 53-bit multiply conversion and
//!    `random_range` the `[1, 2)`-mantissa / widening-multiply methods of
//!    rand's `StandardUniform`/`UniformSampler` implementations.
//!
//! Only the API surface this workspace uses is provided: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::random`, and `Rng::random_range`
//! over `f64`/integer ranges.

use std::ops::Range;

/// Low-level source of random `u32`/`u64` words (mirrors `rand_core`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable RNGs (only the `seed_from_u64` entry point is shimmed).
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 32-byte seed.
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Expands a `u64` into a full seed with PCG32, byte-compatible with
    /// `rand_core::SeedableRng::seed_from_u64`.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value from the standard distribution (for `f64`: uniform
    /// in `[0, 1)` using 53 random bits, matching rand's `StandardUniform`).
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Samples uniformly from `range` (half-open), matching rand's
    /// `sample_single` implementations.
    fn random_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::uniform_sample(self, range)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types samplable from the standard distribution.
pub trait StandardSample: Sized {
    /// Draws one standard sample.
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
        // rand: 53 significant bits, multiply method.
        let scale = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * scale
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Types samplable uniformly from a half-open range.
pub trait UniformSample: Sized {
    /// Draws one sample from `[range.start, range.end)`.
    fn uniform_sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

impl UniformSample for f64 {
    fn uniform_sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        // rand's UniformFloat::sample_single: mantissa bits into [1, 2),
        // scale into the target range, reject the (rare) hit on `end`.
        assert!(range.start < range.end, "empty f64 sample range");
        let scale = range.end - range.start;
        loop {
            let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
            let res = (value1_2 - 1.0) * scale + range.start;
            if res < range.end {
                return res;
            }
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn uniform_sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                // rand's UniformInt::sample_single: widening multiply with
                // a bitmask-derived rejection zone.
                assert!(range.start < range.end, "empty integer sample range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                let zone = (span << span.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u64();
                    let m = (v as u128) * (span as u128);
                    let hi = (m >> 64) as u64;
                    let lo = m as u64;
                    if lo <= zone {
                        return range.start.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete RNG types (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: ChaCha12 in counter mode, the same algorithm
    /// (and word stream) as rand 0.9's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        /// ChaCha state words 4..12 (the key).
        key: [u32; 8],
        /// 64-bit block counter (state words 12..14).
        counter: u64,
        /// Buffered output block.
        block: [u32; 16],
        /// Next unread word in `block`; 16 means exhausted.
        index: usize,
    }

    const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
    const ROUNDS: usize = 12;

    impl StdRng {
        fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
            state[a] = state[a].wrapping_add(state[b]);
            state[d] = (state[d] ^ state[a]).rotate_left(16);
            state[c] = state[c].wrapping_add(state[d]);
            state[b] = (state[b] ^ state[c]).rotate_left(12);
            state[a] = state[a].wrapping_add(state[b]);
            state[d] = (state[d] ^ state[a]).rotate_left(8);
            state[c] = state[c].wrapping_add(state[d]);
            state[b] = (state[b] ^ state[c]).rotate_left(7);
        }

        fn refill(&mut self) {
            let mut state = [0u32; 16];
            state[..4].copy_from_slice(&CHACHA_CONST);
            state[4..12].copy_from_slice(&self.key);
            state[12] = self.counter as u32;
            state[13] = (self.counter >> 32) as u32;
            // Words 14/15 are the stream id, fixed at 0 for seed_from_u64.
            let initial = state;
            for _ in 0..ROUNDS / 2 {
                // Column round.
                Self::quarter_round(&mut state, 0, 4, 8, 12);
                Self::quarter_round(&mut state, 1, 5, 9, 13);
                Self::quarter_round(&mut state, 2, 6, 10, 14);
                Self::quarter_round(&mut state, 3, 7, 11, 15);
                // Diagonal round.
                Self::quarter_round(&mut state, 0, 5, 10, 15);
                Self::quarter_round(&mut state, 1, 6, 11, 12);
                Self::quarter_round(&mut state, 2, 7, 8, 13);
                Self::quarter_round(&mut state, 3, 4, 9, 14);
            }
            for (word, init) in state.iter_mut().zip(initial.iter()) {
                *word = word.wrapping_add(*init);
            }
            self.block = state;
            self.counter = self.counter.wrapping_add(1);
            self.index = 0;
        }
    }

    impl SeedableRng for StdRng {
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (word, chunk) in key.iter_mut().zip(seed.chunks(4)) {
                *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            }
            StdRng {
                key,
                counter: 0,
                block: [0; 16],
                index: 16,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= 16 {
                self.refill();
            }
            let word = self.block[self.index];
            self.index += 1;
            word
        }

        fn next_u64(&mut self) -> u64 {
            // rand_core's BlockRng: two consecutive words, low word first.
            let lo = self.next_u32() as u64;
            let hi = self.next_u32() as u64;
            (hi << 32) | lo
        }
    }
}
