//! A minimal, vendored stand-in for the `serde` crate (offline build shim).
//!
//! The real serde models serialization through visitor-based `Serializer` /
//! `Deserializer` traits. This shim keeps serde's *surface* — the
//! `Serialize` / `Deserialize` traits, the `serde::Serialize` /
//! `serde::Deserialize` derive macros (re-exported from the sibling
//! `serde_derive` proc-macro crate), and `serde::de::DeserializeOwned` — but
//! routes everything through one concrete data model, [`Value`], a JSON-like
//! tree. `serde_json` (also vendored) renders and parses that tree.
//!
//! Supported derive features are exactly what this workspace uses:
//! structs (named, tuple, unit), enums (unit, newtype, tuple and struct
//! variants, externally tagged like serde), `#[serde(transparent)]`, and
//! plain type generics.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// The serialization data model: a JSON-compatible value tree.
///
/// Integers and floats are kept distinct so that `u64` round-trips without
/// passing through `f64` (which would lose precision above 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (serialized without a decimal point).
    UInt(u64),
    /// Negative integer (serialized without a decimal point).
    Int(i64),
    /// Floating point number (serialized with a decimal point or exponent).
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. Insertion order is preserved so output is deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries if this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Borrows the array elements if this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Interprets this value as an `f64` if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(x) => Some(x as f64),
            Value::Int(x) => Some(x as f64),
            Value::Float(x) => Some(x),
            _ => None,
        }
    }

    /// Interprets this value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(x) => Some(x),
            Value::Int(x) if x >= 0 => Some(x as u64),
            _ => None,
        }
    }

    /// Interprets this value as an `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(x) => i64::try_from(x).ok(),
            Value::Int(x) => Some(x),
            _ => None,
        }
    }
}

/// Serialization/deserialization error: a plain message, like
/// `serde::de::Error::custom`.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can convert itself into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialization traits, mirroring `serde::de`.
pub mod de {
    /// Marker for types deserializable without borrowing from the input —
    /// in this shim every [`Deserialize`](crate::Deserialize) type qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Looks up a required field in a serialized object (used by the derive).
#[doc(hidden)]
pub fn __get_field<'a>(obj: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(x)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 {
                    Value::UInt(x as u64)
                } else {
                    Value::Int(x)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(x)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // Static string slices can only be produced by leaking; acceptable
        // for the test/CLI workloads this shim serves (serde itself borrows
        // from the input instead, which a DeserializeOwned bound forbids).
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        Value::UInt(x) => x.to_string(),
                        Value::Int(x) => x.to_string(),
                        other => panic!("map key must serialize to a string, got {other:?}"),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pairs = v.as_object().ok_or_else(|| Error::custom("expected map"))?;
        pairs
            .iter()
            .map(|(k, v)| {
                let key = K::from_value(&Value::Str(k.clone()))?;
                Ok((key, V::from_value(v)?))
            })
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
