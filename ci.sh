#!/usr/bin/env bash
# Local CI gate for the ThirstyFLOPS workspace. Run from the repo root.
#
#   ./ci.sh          # full gate: fmt, clippy, release build, tests, docs
#   ./ci.sh quick    # skip the release build (fastest signal)
#
# The same commands gate merges; keep them green.
set -euo pipefail

quick="${1:-}"

step() { printf '\n== %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$quick" != "quick" ]]; then
  step "cargo build --release"
  cargo build --release
fi

step "cargo test -q --workspace"
cargo test -q --workspace

step "cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

step "OK"
