#!/usr/bin/env bash
# Local CI gate for the ThirstyFLOPS workspace. Run from the repo root.
#
#   ./ci.sh                # full gate: fmt, clippy, release build, tests
#                          # at two thread counts, serve smoke, docs
#   ./ci.sh quick          # skip the release build and the sequential
#                          # test pass (fastest signal)
#   ./ci.sh serve-smoke    # just the HTTP serving-layer smoke probe
#                          # (ephemeral port, std-only TcpStream client)
#   ./ci.sh load-smoke     # deterministic loadgen replay of the smoke
#                          # mix at --workers 1 and 8: every response
#                          # body byte-verified, zero mismatches required
#   ./ci.sh scenario-smoke # run every spec in examples/scenarios/ through
#                          # the scenario engine (run or sweep by name)
#   ./ci.sh batch-smoke    # the 101,250-cell streaming top-N sweep through
#                          # the batched K-lane kernel at
#                          # THIRSTYFLOPS_THREADS=1 and 8; the two JSON
#                          # reports must be byte-identical
#   ./ci.sh obs-smoke      # observability gate: the siting sweep with
#                          # --profile --json at 1 and 8 threads — stdout
#                          # untouched, profiled counts byte-identical —
#                          # plus a /v1/metrics fetch over raw TCP that
#                          # must be well-formed Prometheus text
#   ./ci.sh trace-smoke    # causal-tracing gate: --trace-out leaves
#                          # stdout untouched and exports valid Chrome
#                          # trace_event JSON, the folded span-tree
#                          # shape is byte-identical at 1 and 8 threads,
#                          # and GET /v1/trace answers over raw TCP with
#                          # the client's X-Request-Id echoed and the
#                          # request access-logged as strict JSON
#   ./ci.sh chaos-smoke    # deterministic chaos replay: the bench mix
#                          # under examples/faults/smoke.json at
#                          # --workers 1, 8, and 1 again — zero byte-
#                          # verification failures, chaos accounting
#                          # bit-identical across all three runs, stats
#                          # recorded into BENCH_serve.json
#                          # (docs/ROBUSTNESS.md)
#   ./ci.sh bench-json     # quick cold-vs-warm SystemYear::simulate,
#                          # grid-kernel, and scalar-vs-batched
#                          # scenario-sweep measurement, with a
#                          # per-stage span breakdown of the cold path
#                          # -> BENCH_simulate.json, plus a one-shot-vs-
#                          # keep-alive loadgen run -> BENCH_serve.json
#                          # (docs/PERFORMANCE.md, docs/SERVING.md;
#                          # baselines are preserved)
#   ./ci.sh regen-goldens  # regenerate the golden-pinned artifacts for a
#                          # deliberate recalibration (see docs/GOLDENS.md)
#
# The same commands gate merges; keep them green.
set -euo pipefail

mode="${1:-}"

step() { printf '\n== %s\n' "$*"; }

if [[ "$mode" == "regen-goldens" ]]; then
  # One-command recalibration diff: regenerate the artifacts whose numbers
  # tests/golden.rs pins (plus the full set for context) and leave the
  # report under target/ for comparison against the pinned constants.
  out="target/golden-report.md"
  step "cargo run --release -p thirstyflops_experiments --bin report"
  mkdir -p target
  cargo run --release -p thirstyflops_experiments --bin report > "$out"
  step "golden-pinned sections (fig03 fig06 fig07 fig08) from $out"
  grep -A 12 -E '^## (fig03|fig06|fig07|fig08) ' "$out" || true
  printf '\nFull report: %s\nUpdate the constants in tests/golden.rs, then re-run ./ci.sh\n' "$out"
  exit 0
fi

serve_smoke() {
  # Starts the server on an ephemeral port, probes /healthz and a
  # /v1/footprint query (twice — the repeat must hit the result cache)
  # via std::net::TcpStream, and shuts down cleanly. No curl involved.
  step "serve smoke (cargo run --release --example serve_smoke)"
  cargo run --release --example serve_smoke
}

if [[ "$mode" == "serve-smoke" ]]; then
  serve_smoke
  exit 0
fi

load_smoke() {
  # Replays the recorded smoke mix against an in-process server at one
  # worker and at eight, byte-comparing every response body against the
  # precomputed expectation. ≥ 1000 verified requests total; any
  # mismatch fails the run (docs/SERVING.md, docs/CONCURRENCY.md).
  step "load smoke (loadgen replay at --workers 1 and 8)"
  cargo build --release -q
  local bin=target/release/thirstyflops
  for workers in 1 8; do
    "$bin" loadgen --mix examples/loadmix/smoke.json       --requests 500 --connections 2 --workers "$workers"
  done
}

if [[ "$mode" == "load-smoke" ]]; then
  load_smoke
  exit 0
fi

scenario_smoke() {
  # Every spec in the shipped library must evaluate: sweep_* files go
  # through `scenario sweep`, everything else through `scenario run`.
  # JSON output is rendered (and discarded) so the full engine +
  # serialization path runs, not just validation.
  step "scenario smoke (every spec in examples/scenarios/)"
  cargo build --release -q
  local bin=target/release/thirstyflops
  local count=0
  for spec in examples/scenarios/*.json; do
    case "$(basename "$spec")" in
      sweep_*) "$bin" scenario sweep "$spec" --json > /dev/null ;;
      *)       "$bin" scenario run   "$spec" --json > /dev/null ;;
    esac
    count=$((count + 1))
    printf '  ok %s\n' "$spec"
  done
  if [[ "$count" -lt 9 ]]; then
    echo "expected at least 9 scenario specs, found $count" >&2
    exit 1
  fi
}

if [[ "$mode" == "scenario-smoke" ]]; then
  scenario_smoke
  exit 0
fi

batch_smoke() {
  # The tentpole determinism gate: the shipped 101,250-cell streaming
  # top-N sweep runs through the batched K-lane kernel at one worker
  # thread and at eight, and the two reports must match byte for byte
  # (docs/CONCURRENCY.md; the scalar-vs-batched bit-identity itself is
  # tests/batch.rs' job — the scalar oracle at this cell count is far
  # too slow for a smoke target).
  step "batch smoke (101,250-cell top-N sweep at THIRSTYFLOPS_THREADS=1 vs 8)"
  cargo build --release -q
  local bin=target/release/thirstyflops
  local spec=examples/scenarios/sweep_siting_large.json
  mkdir -p target
  THIRSTYFLOPS_THREADS=1 "$bin" scenario sweep "$spec" --json > target/batch_smoke_t1.json
  THIRSTYFLOPS_THREADS=8 "$bin" scenario sweep "$spec" --json > target/batch_smoke_t8.json
  if ! cmp -s target/batch_smoke_t1.json target/batch_smoke_t8.json; then
    echo "batch smoke: 1-thread and 8-thread sweep reports differ" >&2
    exit 1
  fi
  grep -q '"scenario_count": 101250' target/batch_smoke_t1.json
  grep -q '"top_n": 24' target/batch_smoke_t1.json
  printf '  ok 101250 cells -> 24 rows, byte-identical at 1 and 8 threads\n'
}

if [[ "$mode" == "batch-smoke" ]]; then
  batch_smoke
  exit 0
fi

obs_smoke() {
  # The observability gate (docs/OBSERVABILITY.md): --profile must not
  # touch stdout, profiled counts must be byte-identical across thread
  # counts once wall-clock (*_ns) lines are stripped, the report must
  # carry the expected schema, and GET /v1/metrics must serve
  # well-formed Prometheus text over a real socket (bash /dev/tcp — no
  # curl involved).
  step "obs smoke (--profile determinism + /v1/metrics exposition)"
  cargo build --release -q
  local bin=target/release/thirstyflops
  local spec=examples/scenarios/sweep_siting.json
  mkdir -p target

  "$bin" scenario sweep "$spec" --json > target/obs_plain.json
  "$bin" scenario sweep "$spec" --json --profile --threads 1     > target/obs_t1.json 2> target/obs_profile_t1.json
  "$bin" scenario sweep "$spec" --json --profile --threads 8     > target/obs_t8.json 2> target/obs_profile_t8.json
  if ! cmp -s target/obs_plain.json target/obs_t1.json; then
    echo "obs smoke: --profile changed stdout" >&2
    exit 1
  fi
  if ! cmp -s target/obs_t1.json target/obs_t8.json; then
    echo "obs smoke: sweep stdout differs across thread counts" >&2
    exit 1
  fi
  grep -v '_ns"' target/obs_profile_t1.json > target/obs_counts_t1.json
  grep -v '_ns"' target/obs_profile_t8.json > target/obs_counts_t8.json
  if ! cmp -s target/obs_counts_t1.json target/obs_counts_t8.json; then
    echo "obs smoke: profiled counts differ at 1 vs 8 threads" >&2
    diff target/obs_counts_t1.json target/obs_counts_t8.json >&2 || true
    exit 1
  fi
  # Schema spot-checks on the profile report.
  for needle in '"stages"' '"counters"' '"invocations"' 'workload_sim'     'sweep_chunk' 'thirstyflops_sweep_cells_total'; do
    if ! grep -q -- "$needle" target/obs_profile_t1.json; then
      echo "obs smoke: profile report is missing $needle" >&2
      exit 1
    fi
  done
  printf '  ok --profile: stdout untouched, counts byte-identical at 1 and 8 threads\n'

  # /v1/metrics over raw TCP against an ephemeral-port server.
  "$bin" serve --addr 127.0.0.1:0 --workers 1 > target/obs_serve_banner.txt 2>/dev/null &
  local server_pid=$!
  local addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's#^listening on http://\([0-9.:]*\) .*#\1#p' target/obs_serve_banner.txt)
    [[ -n "$addr" ]] && break
    sleep 0.1
  done
  if [[ -z "$addr" ]]; then
    kill "$server_pid" 2>/dev/null || true
    echo "obs smoke: server never printed its bound address" >&2
    exit 1
  fi
  exec 3<>"/dev/tcp/${addr%:*}/${addr##*:}"
  printf 'GET /v1/metrics HTTP/1.1\r\nHost: ci\r\nConnection: close\r\n\r\n' >&3
  cat <&3 > target/obs_metrics_raw.txt
  exec 3<&- 3>&-
  kill "$server_pid" 2>/dev/null || true
  wait "$server_pid" 2>/dev/null || true

  grep -q 'Content-Type: text/plain; version=0.0.4' target/obs_metrics_raw.txt
  # The body starts after the CRLF blank line that ends the head.
  awk 'body {print} /^\r?$/ {body=1}' target/obs_metrics_raw.txt > target/obs_metrics_body.txt
  for family in '# TYPE thirstyflops_http_requests_total counter'     'thirstyflops_http_requests_total{endpoint="metrics"}'     'thirstyflops_simcache_hits_total' 'thirstyflops_batch_lanes_total'     'thirstyflops_http_request_duration_micros_bucket'; do
    if ! grep -qF -- "$family" target/obs_metrics_body.txt; then
      echo "obs smoke: /v1/metrics is missing $family" >&2
      exit 1
    fi
  done
  # Well-formedness: every non-comment line is `name[{labels}] value`.
  if grep -vE '^(#.*)?$' target/obs_metrics_body.txt        | grep -qvE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$'; then
    echo "obs smoke: /v1/metrics has malformed exposition lines:" >&2
    grep -vE '^(#.*)?$' target/obs_metrics_body.txt          | grep -vE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$' >&2
    exit 1
  fi
  printf '  ok /v1/metrics: well-formed exposition with http, simcache, and batch families\n'
}

if [[ "$mode" == "obs-smoke" ]]; then
  obs_smoke
  exit 0
fi

trace_smoke() {
  # The causal-tracing gate (docs/OBSERVABILITY.md): --trace-out and
  # --trace-sample must not touch stdout, the exported file must be
  # valid Chrome trace_event JSON whose only phases are complete spans
  # ("X") and fault instants ("i"), the folded span-tree *shape*
  # (paths and counts, never durations) must be byte-identical at 1
  # and 8 worker threads, and GET /v1/trace must answer over a real
  # socket with the client's X-Request-Id echoed back and the request
  # access-logged as one strict-JSON line (serve --log-json).
  step "trace smoke (--trace-out export + span-tree shape + /v1/trace)"
  cargo build --release -q
  local bin=target/release/thirstyflops
  local spec=examples/scenarios/sweep_siting.json
  mkdir -p target

  # stdout byte-identity: tracing off, recording, and sampled.
  "$bin" rank --json > target/trace_plain.json
  "$bin" rank --json --trace-out target/trace_on.trace     > target/trace_on_stdout.json 2>/dev/null
  "$bin" rank --json --trace-out target/trace_sampled.trace --trace-sample 1/4     > target/trace_sampled_stdout.json 2>/dev/null
  for mode in on sampled; do
    if ! cmp -s target/trace_plain.json "target/trace_${mode}_stdout.json"; then
      echo "trace smoke: --trace-out ($mode) changed stdout" >&2
      exit 1
    fi
  done

  # The export is valid Chrome trace_event JSON attributing the
  # workload sub-stages (python3 when available, grep otherwise).
  if command -v python3 >/dev/null 2>&1; then
    python3 - target/trace_on.trace <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "trace has no events"
bad = [e["ph"] for e in events if e["ph"] not in ("X", "i")]
assert not bad, f"unexpected phases: {bad}"
names = {e["name"] for e in events}
missing = {"trace_gen", "cluster_sim", "power_model"} - names
assert not missing, f"trace missing stages: {missing}"
PY
  else
    for needle in '"traceEvents"' '"name":"trace_gen"' '"name":"cluster_sim"'; do
      if ! grep -q -- "$needle" target/trace_on.trace; then
        echo "trace smoke: export is missing $needle" >&2
        exit 1
      fi
    done
    if grep -o '"ph":"[^"]*"' target/trace_on.trace | grep -vq '"ph":"[Xi]"'; then
      echo "trace smoke: export has phases other than X and i" >&2
      exit 1
    fi
  fi
  printf '  ok --trace-out: stdout untouched, valid Chrome JSON with workload stages\n'

  # Span-tree shape: the folded rollup (paths + counts; *_ns stripped)
  # is byte-identical across thread counts (docs/CONCURRENCY.md rule 7).
  THIRSTYFLOPS_THREADS=1 "$bin" scenario sweep "$spec" --json --profile     > /dev/null 2> target/trace_profile_t1.json
  THIRSTYFLOPS_THREADS=8 "$bin" scenario sweep "$spec" --json --profile     > /dev/null 2> target/trace_profile_t8.json
  for needle in '"folded"' '"stack"' 'workload_sim;trace_gen'; do
    if ! grep -q -- "$needle" target/trace_profile_t1.json; then
      echo "trace smoke: profile report is missing $needle" >&2
      exit 1
    fi
  done
  grep -v '_ns"' target/trace_profile_t1.json > target/trace_shape_t1.json
  grep -v '_ns"' target/trace_profile_t8.json > target/trace_shape_t8.json
  if ! cmp -s target/trace_shape_t1.json target/trace_shape_t8.json; then
    echo "trace smoke: span-tree shape differs at 1 vs 8 threads" >&2
    diff target/trace_shape_t1.json target/trace_shape_t8.json >&2 || true
    exit 1
  fi
  printf '  ok folded span-tree shape byte-identical at 1 and 8 threads\n'

  # /v1/trace + X-Request-Id echo + --log-json over raw TCP.
  "$bin" serve --addr 127.0.0.1:0 --workers 1 --log-json     > target/trace_serve_banner.txt 2> target/trace_access_log.txt &
  local server_pid=$!
  local addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's#^listening on http://\([0-9.:]*\) .*#\1#p' target/trace_serve_banner.txt)
    [[ -n "$addr" ]] && break
    sleep 0.1
  done
  if [[ -z "$addr" ]]; then
    kill "$server_pid" 2>/dev/null || true
    echo "trace smoke: server never printed its bound address" >&2
    exit 1
  fi
  exec 3<>"/dev/tcp/${addr%:*}/${addr##*:}"
  printf 'GET /v1/trace?last=32 HTTP/1.1\r\nHost: ci\r\nX-Request-Id: ci-trace-1\r\nConnection: close\r\n\r\n' >&3
  cat <&3 > target/trace_endpoint_raw.txt
  exec 3<&- 3>&-
  kill "$server_pid" 2>/dev/null || true
  wait "$server_pid" 2>/dev/null || true

  for needle in 'HTTP/1.1 200' 'Content-Type: application/json'     'X-Request-Id: ci-trace-1' '"traceEvents"'; do
    if ! grep -qF -- "$needle" target/trace_endpoint_raw.txt; then
      echo "trace smoke: /v1/trace response is missing $needle" >&2
      exit 1
    fi
  done
  if ! grep -qF '"trace":"ci-trace-1","endpoint":"trace","status":200' target/trace_access_log.txt; then
    echo "trace smoke: --log-json never logged the traced request:" >&2
    cat target/trace_access_log.txt >&2
    exit 1
  fi
  printf '  ok /v1/trace: 200 Chrome JSON, id echoed, request access-logged\n'
}

if [[ "$mode" == "trace-smoke" ]]; then
  trace_smoke
  exit 0
fi

chaos_smoke() {
  # The robustness gate (docs/ROBUSTNESS.md): replay the recorded bench
  # mix under the committed fault plan — injected panics, latency past
  # the deadline, truncated and stalled writes, accept-time drops,
  # simcache poisoning — at --workers 1, 8, and 1 again. Fail-closed:
  # every 200 is byte-verified, every fault must be recovered by the
  # client's bounded retries, and the chaos accounting (attempts,
  # retries, per-site injected counts) must be bit-identical across all
  # three runs: the fault schedule is a pure function of the plan seed
  # and the visit counts, never of thread interleaving. The middle run
  # also records the accounting into BENCH_serve.json ("chaos" key).
  step "chaos smoke (loadgen --chaos at --workers 1, 8, 1)"
  cargo build --release -q
  local bin=target/release/thirstyflops
  mkdir -p target
  local runs=(1 8 1) workers extra
  for i in "${!runs[@]}"; do
    workers="${runs[$i]}"
    extra=""
    [[ "$i" == 1 ]] && extra="--bench-json"
    # shellcheck disable=SC2086
    "$bin" loadgen --mix examples/loadmix/bench.json       --requests 300 --connections 6 --workers "$workers"       --retries 32 --request-timeout 2000       --chaos examples/faults/smoke.json --json $extra       > "target/chaos_smoke_$i.json"
    for needle in '"mismatches": 0' '"errors": 0' '"unrecovered": 0'; do
      if ! grep -qF -- "$needle" "target/chaos_smoke_$i.json"; then
        echo "chaos smoke: run $i (workers $workers) violated $needle" >&2
        exit 1
      fi
    done
    # The deterministic tail: everything from the chaos key on (the
    # load section above it legitimately carries wall-clock numbers).
    sed -n '/"chaos":/,$p' "target/chaos_smoke_$i.json" > "target/chaos_section_$i.json"
    if ! grep -q '"injected"' "target/chaos_section_$i.json"; then
      echo "chaos smoke: run $i has no per-site fault accounting" >&2
      exit 1
    fi
  done
  for i in 1 2; do
    if ! cmp -s target/chaos_section_0.json "target/chaos_section_$i.json"; then
      echo "chaos smoke: chaos accounting differs between run 0 and run $i:" >&2
      diff target/chaos_section_0.json "target/chaos_section_$i.json" >&2 || true
      exit 1
    fi
  done
  grep -q '"chaos":' BENCH_serve.json
  printf '  ok chaos replay: 0 mismatches, accounting bit-identical at workers 1, 8, 1\n'
}

if [[ "$mode" == "chaos-smoke" ]]; then
  chaos_smoke
  exit 0
fi

if [[ "$mode" == "bench-json" ]]; then
  # The tracked bench trajectory: medians of the serial instruction path
  # (1-CPU container — compare medians across PRs, not parallel
  # speedup). Preserves the recorded baseline, rewrites `current`.
  step "cargo run --release -p thirstyflops_bench --bin bench_json"
  cargo run --release -p thirstyflops_bench --bin bench_json
  step "loadgen bench (one-shot vs keep-alive -> BENCH_serve.json)"
  cargo run --release -q -- loadgen --mix examples/loadmix/bench.json     --requests 1200 --connections 2 --workers 2 --bench-json
  exit 0
fi

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$mode" != "quick" ]]; then
  step "cargo build --release"
  cargo build --release
fi

# The determinism contract (docs/CONCURRENCY.md) promises bit-identical
# results at every thread count: the full gate runs the whole suite
# sequentially *and* at the default (auto-detected) worker count so any
# divergence — including golden drift — fails it. Quick mode keeps its
# fastest-signal promise with a single default-count pass.
if [[ "$mode" != "quick" ]]; then
  step "cargo test -q (THIRSTYFLOPS_THREADS=1, sequential)"
  THIRSTYFLOPS_THREADS=1 cargo test -q --workspace
fi

step "cargo test -q (default thread count)"
cargo test -q --workspace

if [[ "$mode" != "quick" ]]; then
  serve_smoke
  load_smoke
  scenario_smoke
  batch_smoke
  obs_smoke
  trace_smoke
  chaos_smoke
fi

step "cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

step "OK"
