//! K-lane structure-of-arrays kernels: the fused [`HourlySeries`](crate::hourly::HourlySeries)
//! kernels generalized to K series evaluated in one pass over the hour
//! axis.
//!
//! A [`LaneBuffer`] packs K year-long series **hour-major** — sample
//! `(hour, lane)` lives at `values[hour * lanes + lane]` — so one sweep
//! over the 8760 hours touches every lane's sample for that hour in one
//! cache line group. The batched evaluation kernel (`core::batch`)
//! builds on these to score K sweep cells per pass instead of one.
//!
//! **Bit-identity contract.** Every scalar reduction these kernels
//! replace is a left-to-right fold over the hour axis
//! ([`HourlySeries::dot`](crate::hourly::HourlySeries::dot), [`HourlySeries::total`](crate::hourly::HourlySeries::total),
//! [`HourlySeries::monthly_sum`](crate::hourly::HourlySeries::monthly_sum), `stats::mean`). The K-lane kernels
//! keep one accumulator per lane and visit hours in the same ascending
//! order, so each lane performs the exact scalar operation sequence —
//! the batched result is bit-identical to the scalar one, not merely
//! close. `tests/batch.rs` enforces this differentially.

use crate::calendar::{Month, SimCalendar, HOURS_PER_YEAR, MONTHS_PER_YEAR};

/// K year-long series packed hour-major for single-pass K-lane kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneBuffer {
    lanes: usize,
    values: Vec<f64>,
}

impl LaneBuffer {
    /// A zeroed buffer with `lanes` lanes.
    ///
    /// # Panics
    /// Panics if `lanes == 0` — an empty batch is a caller bug.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "a lane buffer needs at least one lane");
        Self {
            lanes,
            values: vec![0.0; lanes * HOURS_PER_YEAR],
        }
    }

    /// Number of lanes.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Sample at `(hour, lane)`.
    #[inline]
    pub fn get(&self, hour: usize, lane: usize) -> f64 {
        self.values[hour * self.lanes + lane]
    }

    /// Fills one lane from a year-long slice.
    ///
    /// # Panics
    /// Panics if `src` is not exactly one year long.
    pub fn set_lane(&mut self, lane: usize, src: &[f64]) {
        assert_eq!(src.len(), HOURS_PER_YEAR, "lanes hold whole years");
        for (h, &v) in src.iter().enumerate() {
            self.values[h * self.lanes + lane] = v;
        }
    }

    /// Fills one lane from a year-long slice, scaled by `k` when given.
    ///
    /// `Some(k)` materializes `v * k` per sample — the exact expression
    /// [`HourlySeries::scale`](crate::hourly::HourlySeries::scale) materializes — and `None` copies the raw
    /// samples, mirroring the scalar no-override branch (identity is
    /// decided by the *presence* of a scale, never by its value, so a
    /// literal `Some(1.0)` still multiplies).
    pub fn set_lane_scaled(&mut self, lane: usize, src: &[f64], k: Option<f64>) {
        assert_eq!(src.len(), HOURS_PER_YEAR, "lanes hold whole years");
        match k {
            Some(k) => {
                for (h, &v) in src.iter().enumerate() {
                    self.values[h * self.lanes + lane] = v * k;
                }
            }
            None => self.set_lane(lane, src),
        }
    }

    /// Fills every lane in one hour-outer pass — the cache-friendly
    /// transpose of calling [`Self::set_lane_scaled`] per lane. The
    /// per-lane writes stride by the lane count (a cache miss per sample
    /// once K lanes span more than a line); packing hour-outer instead
    /// streams the buffer sequentially while each source advances as its
    /// own sequential read stream. Per sample the materialized value is
    /// the identical expression (`v * k` when scaled, `v` raw), so the
    /// write order cannot affect bit-identity.
    ///
    /// # Panics
    /// Panics if the source count differs from the lane count or any
    /// source is not exactly one year long.
    pub fn pack_scaled(&mut self, sources: &[(&[f64], Option<f64>)]) {
        assert_eq!(sources.len(), self.lanes, "one source per lane");
        for (src, _) in sources {
            assert_eq!(src.len(), HOURS_PER_YEAR, "lanes hold whole years");
        }
        for h in 0..HOURS_PER_YEAR {
            let row = &mut self.values[h * self.lanes..(h + 1) * self.lanes];
            for (slot, (src, k)) in row.iter_mut().zip(sources) {
                *slot = match k {
                    Some(k) => src[h] * k,
                    None => src[h],
                };
            }
        }
    }

    /// Copies one lane back out as a year-long vector (strided gather).
    pub fn lane_values(&self, lane: usize) -> Vec<f64> {
        (0..HOURS_PER_YEAR).map(|h| self.get(h, lane)).collect()
    }
}

/// K-lane dot product: `acc[l] = Σ_h a[h,l]·b[h,l]`, one pass over the
/// hour axis. Per lane this is bit-identical to [`HourlySeries::dot`](crate::hourly::HourlySeries::dot) —
/// products accumulate from 0.0 in ascending hour order.
///
/// # Panics
/// Panics if the buffers or `acc` disagree on the lane count.
pub fn dot_k(a: &LaneBuffer, b: &LaneBuffer, acc: &mut [f64]) {
    let lanes = a.lanes;
    assert_eq!(b.lanes, lanes, "lane counts must match");
    assert_eq!(acc.len(), lanes, "one accumulator per lane");
    acc.fill(0.0);
    for h in 0..HOURS_PER_YEAR {
        let row_a = &a.values[h * lanes..(h + 1) * lanes];
        let row_b = &b.values[h * lanes..(h + 1) * lanes];
        for l in 0..lanes {
            acc[l] += row_a[l] * row_b[l];
        }
    }
}

/// K-lane total: `acc[l] = Σ_h a[h,l]` — per lane bit-identical to
/// [`HourlySeries::total`](crate::hourly::HourlySeries::total).
pub fn sum_k(a: &LaneBuffer, acc: &mut [f64]) {
    let lanes = a.lanes;
    assert_eq!(acc.len(), lanes, "one accumulator per lane");
    acc.fill(0.0);
    for h in 0..HOURS_PER_YEAR {
        let row = &a.values[h * lanes..(h + 1) * lanes];
        for l in 0..lanes {
            acc[l] += row[l];
        }
    }
}

/// K-lane annual mean: `acc[l] = (Σ_h a[h,l]) / 8760` — per lane
/// bit-identical to [`HourlySeries::mean`](crate::hourly::HourlySeries::mean) (`stats::mean` is the same
/// ordered sum divided by the length).
pub fn mean_k(a: &LaneBuffer, acc: &mut [f64]) {
    sum_k(a, acc);
    for v in acc.iter_mut() {
        *v /= HOURS_PER_YEAR as f64;
    }
}

/// K-lane fused `out[h,l] = a[h,l] + b[h,l]·k[l]` — the
/// `WI = WUE + PUE·EWF` kernel ([`HourlySeries::add_scaled`](crate::hourly::HourlySeries::add_scaled)) with a
/// per-lane scale factor.
///
/// # Panics
/// Panics if any buffer or `k` disagrees on the lane count.
pub fn add_scaled_k(a: &LaneBuffer, b: &LaneBuffer, k: &[f64], out: &mut LaneBuffer) {
    let lanes = a.lanes;
    assert_eq!(b.lanes, lanes, "lane counts must match");
    assert_eq!(out.lanes, lanes, "lane counts must match");
    assert_eq!(k.len(), lanes, "one scale per lane");
    for h in 0..HOURS_PER_YEAR {
        let row_a = &a.values[h * lanes..(h + 1) * lanes];
        let row_b = &b.values[h * lanes..(h + 1) * lanes];
        let row_o = &mut out.values[h * lanes..(h + 1) * lanes];
        for l in 0..lanes {
            row_o[l] = row_a[l] + row_b[l] * k[l];
        }
    }
}

/// K-lane monthly product sums: `out[l * 12 + m] = Σ_{h∈month m}
/// a[h,l]·b[h,l]`, lane-major. Months are contiguous hour ranges, so per
/// `(lane, month)` the products accumulate from 0.0 in ascending hour
/// order — bit-identical to `a.mul(&b).monthly_sum()` on that lane.
///
/// # Panics
/// Panics if the buffers disagree on lanes or `out` is not
/// `lanes * 12` long.
pub fn monthly_dot_k(a: &LaneBuffer, b: &LaneBuffer, out: &mut [f64]) {
    let lanes = a.lanes;
    assert_eq!(b.lanes, lanes, "lane counts must match");
    assert_eq!(out.len(), lanes * MONTHS_PER_YEAR, "12 slots per lane");
    out.fill(0.0);
    let cal = SimCalendar;
    for (m, &month) in Month::ALL.iter().enumerate() {
        for h in cal.month_hours(month) {
            let row_a = &a.values[h * lanes..(h + 1) * lanes];
            let row_b = &b.values[h * lanes..(h + 1) * lanes];
            for l in 0..lanes {
                out[l * MONTHS_PER_YEAR + m] += row_a[l] * row_b[l];
            }
        }
    }
}

/// Every annual reduction the batched scenario evaluator needs, for K
/// lanes, produced by [`annual_reductions_k`] in a single pass.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnualLaneReductions {
    /// `Σ_h e[h,l]` per lane.
    pub energy_total: Vec<f64>,
    /// `Σ_h e[h,l]·w[h,l]` per lane.
    pub direct: Vec<f64>,
    /// `Σ_h e[h,l]·f[h,l]` per lane.
    pub indirect: Vec<f64>,
    /// `Σ_h e[h,l]·c[h,l]` per lane.
    pub carbon: Vec<f64>,
    /// `mean_h w[h,l]` per lane.
    pub wue_mean: Vec<f64>,
    /// `mean_h f[h,l]` per lane.
    pub ewf_mean: Vec<f64>,
    /// `mean_h c[h,l]` per lane.
    pub carbon_mean: Vec<f64>,
    /// Monthly `Σ e·w`, lane-major (`[l * 12 + m]`).
    pub monthly_direct: Vec<f64>,
}

/// The fused K-lane reduction: every accumulator of
/// [`AnnualLaneReductions`] filled in one pass over the hour axis,
/// reading each buffer once instead of once per reduction.
///
/// **Bit-identity.** Each accumulator is an independent left-to-right
/// fold; months are contiguous ascending hour ranges partitioning the
/// year, so iterating months-outer/hours-inner visits hours 0..8760 in
/// exactly the scalar order. Per step the expressions are the scalar
/// ones (`acc += e`, `acc += e*w`, …), so every output is bit-identical
/// to the corresponding single-purpose kernel ([`sum_k`], [`dot_k`],
/// [`mean_k`], [`monthly_dot_k`]) — the fusion only removes redundant
/// memory traffic.
///
/// # Panics
/// Panics if the buffers disagree on the lane count.
pub fn annual_reductions_k(
    e: &LaneBuffer,
    w: &LaneBuffer,
    f: &LaneBuffer,
    c: &LaneBuffer,
) -> AnnualLaneReductions {
    let lanes = e.lanes;
    assert_eq!(w.lanes, lanes, "lane counts must match");
    assert_eq!(f.lanes, lanes, "lane counts must match");
    assert_eq!(c.lanes, lanes, "lane counts must match");
    let mut out = AnnualLaneReductions {
        energy_total: vec![0.0; lanes],
        direct: vec![0.0; lanes],
        indirect: vec![0.0; lanes],
        carbon: vec![0.0; lanes],
        wue_mean: vec![0.0; lanes],
        ewf_mean: vec![0.0; lanes],
        carbon_mean: vec![0.0; lanes],
        monthly_direct: vec![0.0; lanes * MONTHS_PER_YEAR],
    };
    let cal = SimCalendar;
    for (m, &month) in Month::ALL.iter().enumerate() {
        for h in cal.month_hours(month) {
            let row_e = &e.values[h * lanes..(h + 1) * lanes];
            let row_w = &w.values[h * lanes..(h + 1) * lanes];
            let row_f = &f.values[h * lanes..(h + 1) * lanes];
            let row_c = &c.values[h * lanes..(h + 1) * lanes];
            for l in 0..lanes {
                let ew = row_e[l] * row_w[l];
                out.energy_total[l] += row_e[l];
                out.direct[l] += ew;
                out.indirect[l] += row_e[l] * row_f[l];
                out.carbon[l] += row_e[l] * row_c[l];
                out.wue_mean[l] += row_w[l];
                out.ewf_mean[l] += row_f[l];
                out.carbon_mean[l] += row_c[l];
                out.monthly_direct[l * MONTHS_PER_YEAR + m] += ew;
            }
        }
    }
    for l in 0..lanes {
        out.wue_mean[l] /= HOURS_PER_YEAR as f64;
        out.ewf_mean[l] /= HOURS_PER_YEAR as f64;
        out.carbon_mean[l] /= HOURS_PER_YEAR as f64;
    }
    out
}

/// One lane's source series plus the post-simulation scales, for the
/// zero-copy [`annual_reductions_scaled`] kernel. Scales follow the
/// [`LaneBuffer::set_lane_scaled`] contract: identity is decided by the
/// *presence* of a scale, never by its value.
#[derive(Debug, Clone, Copy)]
pub struct LaneSource<'a> {
    /// Hourly IT energy, kWh.
    pub energy: &'a [f64],
    /// Hourly WUE, L/kWh.
    pub wue: &'a [f64],
    /// Hourly EWF, L/kWh.
    pub ewf: &'a [f64],
    /// Hourly carbon intensity, gCO₂/kWh.
    pub carbon: &'a [f64],
    /// WUE multiplier.
    pub wue_scale: Option<f64>,
    /// EWF multiplier.
    pub ewf_scale: Option<f64>,
    /// Carbon multiplier.
    pub carbon_scale: Option<f64>,
}

/// [`annual_reductions_k`] computed straight from the source slices —
/// no lane buffers materialized. Sweeps share a handful of unique
/// series across thousands of lanes (energy per system, WUE per
/// climate, EWF/carbon per region); packing copies each of them once
/// per lane, inflating a cache-resident working set by the lane count.
/// Reading the shared slices in place keeps the working set at the
/// *unique*-series size.
///
/// **Bit-identity.** Per hour and lane the evaluated expressions are
/// exactly the pack-then-reduce ones — the scaled sample is `v * k`
/// (or `v` raw), then the same fold steps in the same ascending hour
/// order. `lanes::tests` pins equality against
/// [`LaneBuffer::pack_scaled`] + [`annual_reductions_k`] bit for bit.
///
/// # Panics
/// Panics if `sources` is empty or any slice is not a whole year.
pub fn annual_reductions_scaled(sources: &[LaneSource<'_>]) -> AnnualLaneReductions {
    let lanes = sources.len();
    assert!(lanes > 0, "a lane batch needs at least one lane");
    for s in sources {
        assert_eq!(s.energy.len(), HOURS_PER_YEAR, "lanes hold whole years");
        assert_eq!(s.wue.len(), HOURS_PER_YEAR, "lanes hold whole years");
        assert_eq!(s.ewf.len(), HOURS_PER_YEAR, "lanes hold whole years");
        assert_eq!(s.carbon.len(), HOURS_PER_YEAR, "lanes hold whole years");
    }
    let mut out = AnnualLaneReductions {
        energy_total: vec![0.0; lanes],
        direct: vec![0.0; lanes],
        indirect: vec![0.0; lanes],
        carbon: vec![0.0; lanes],
        wue_mean: vec![0.0; lanes],
        ewf_mean: vec![0.0; lanes],
        carbon_mean: vec![0.0; lanes],
        monthly_direct: vec![0.0; lanes * MONTHS_PER_YEAR],
    };
    let cal = SimCalendar;
    for (m, &month) in Month::ALL.iter().enumerate() {
        for h in cal.month_hours(month) {
            for (l, s) in sources.iter().enumerate() {
                let e = s.energy[h];
                let w = match s.wue_scale {
                    Some(k) => s.wue[h] * k,
                    None => s.wue[h],
                };
                let f = match s.ewf_scale {
                    Some(k) => s.ewf[h] * k,
                    None => s.ewf[h],
                };
                let c = match s.carbon_scale {
                    Some(k) => s.carbon[h] * k,
                    None => s.carbon[h],
                };
                let ew = e * w;
                out.energy_total[l] += e;
                out.direct[l] += ew;
                out.indirect[l] += e * f;
                out.carbon[l] += e * c;
                out.wue_mean[l] += w;
                out.ewf_mean[l] += f;
                out.carbon_mean[l] += c;
                out.monthly_direct[l * MONTHS_PER_YEAR + m] += ew;
            }
        }
    }
    for l in 0..lanes {
        out.wue_mean[l] /= HOURS_PER_YEAR as f64;
        out.ewf_mean[l] /= HOURS_PER_YEAR as f64;
        out.carbon_mean[l] /= HOURS_PER_YEAR as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hourly::HourlySeries;

    fn series(phase: usize) -> HourlySeries {
        HourlySeries::from_fn(|h| ((h * (13 + phase)) % 29) as f64 * 0.37 + phase as f64 * 0.01)
    }

    #[test]
    fn lane_round_trip_and_scaling() {
        let a = series(0);
        let mut buf = LaneBuffer::new(3);
        buf.set_lane(0, a.values());
        buf.set_lane_scaled(1, a.values(), Some(1.75));
        buf.set_lane_scaled(2, a.values(), None);
        assert_eq!(buf.lane_values(0), a.values());
        assert_eq!(buf.lane_values(1), a.scale(1.75).values());
        assert_eq!(buf.lane_values(2), a.values());
        // Some(1.0) multiplies — presence decides, not the value.
        let mut one = LaneBuffer::new(1);
        one.set_lane_scaled(0, a.values(), Some(1.0));
        assert_eq!(one.lane_values(0), a.scale(1.0).values());
    }

    #[test]
    fn k_lane_kernels_match_their_scalar_pairs_bit_for_bit() {
        let series_a: Vec<HourlySeries> = (0..4).map(series).collect();
        let series_b: Vec<HourlySeries> = (4..8).map(series).collect();
        let scales = [1.618_033_988_7, 0.5, 2.25, 1.0];
        let mut a = LaneBuffer::new(4);
        let mut b = LaneBuffer::new(4);
        for l in 0..4 {
            a.set_lane(l, series_a[l].values());
            b.set_lane(l, series_b[l].values());
        }
        let mut dots = [0.0; 4];
        dot_k(&a, &b, &mut dots);
        let mut sums = [0.0; 4];
        sum_k(&a, &mut sums);
        let mut means = [0.0; 4];
        mean_k(&a, &mut means);
        let mut fused = LaneBuffer::new(4);
        add_scaled_k(&a, &b, &scales, &mut fused);
        let mut monthly = vec![0.0; 4 * MONTHS_PER_YEAR];
        monthly_dot_k(&a, &b, &mut monthly);
        for l in 0..4 {
            assert_eq!(dots[l], series_a[l].dot(&series_b[l]), "dot lane {l}");
            assert_eq!(sums[l], series_a[l].total(), "total lane {l}");
            assert_eq!(means[l], series_a[l].mean(), "mean lane {l}");
            assert_eq!(
                fused.lane_values(l),
                series_a[l].add_scaled(&series_b[l], scales[l]).values(),
                "add_scaled lane {l}"
            );
            let scalar_monthly = series_a[l].mul(&series_b[l]).monthly_sum();
            for (m, &month) in Month::ALL.iter().enumerate() {
                assert_eq!(
                    monthly[l * MONTHS_PER_YEAR + m],
                    scalar_monthly.get(month),
                    "monthly lane {l} month {m}"
                );
            }
        }
    }

    #[test]
    fn fused_reductions_match_the_single_purpose_kernels_bit_for_bit() {
        let mk = |phase: usize| -> LaneBuffer {
            let mut buf = LaneBuffer::new(3);
            for l in 0..3 {
                buf.set_lane(l, series(phase + l).values());
            }
            buf
        };
        let (e, w, f, c) = (mk(0), mk(3), mk(6), mk(9));
        let fused = annual_reductions_k(&e, &w, &f, &c);
        let mut expect = vec![0.0; 3];
        sum_k(&e, &mut expect);
        assert_eq!(fused.energy_total, expect);
        dot_k(&e, &w, &mut expect);
        assert_eq!(fused.direct, expect);
        dot_k(&e, &f, &mut expect);
        assert_eq!(fused.indirect, expect);
        dot_k(&e, &c, &mut expect);
        assert_eq!(fused.carbon, expect);
        mean_k(&w, &mut expect);
        assert_eq!(fused.wue_mean, expect);
        mean_k(&f, &mut expect);
        assert_eq!(fused.ewf_mean, expect);
        mean_k(&c, &mut expect);
        assert_eq!(fused.carbon_mean, expect);
        let mut monthly = vec![0.0; 3 * MONTHS_PER_YEAR];
        monthly_dot_k(&e, &w, &mut monthly);
        assert_eq!(fused.monthly_direct, monthly);
    }

    #[test]
    fn zero_copy_reductions_match_pack_then_reduce_bit_for_bit() {
        let srcs: Vec<HourlySeries> = (0..12).map(series).collect();
        let scales = [None, Some(1.3), Some(1.0)];
        let sources: Vec<LaneSource> = (0..3)
            .map(|l| LaneSource {
                energy: srcs[l].values(),
                wue: srcs[l + 3].values(),
                ewf: srcs[l + 6].values(),
                carbon: srcs[l + 9].values(),
                wue_scale: scales[l],
                ewf_scale: scales[(l + 1) % 3],
                carbon_scale: scales[(l + 2) % 3],
            })
            .collect();
        let direct = annual_reductions_scaled(&sources);
        let pack =
            |pick: for<'a> fn(&'a LaneSource<'a>) -> (&'a [f64], Option<f64>)| -> LaneBuffer {
                let mut buf = LaneBuffer::new(3);
                let picked: Vec<(&[f64], Option<f64>)> = sources.iter().map(pick).collect();
                buf.pack_scaled(&picked);
                buf
            };
        let e = pack(|s| (s.energy, None));
        let w = pack(|s| (s.wue, s.wue_scale));
        let f = pack(|s| (s.ewf, s.ewf_scale));
        let c = pack(|s| (s.carbon, s.carbon_scale));
        assert_eq!(direct, annual_reductions_k(&e, &w, &f, &c));
    }

    #[test]
    fn pack_scaled_is_the_exact_transpose_of_per_lane_packing() {
        let srcs: Vec<HourlySeries> = (0..5).map(series).collect();
        let scales = [None, Some(1.75), Some(1.0), None, Some(0.25)];
        let mut per_lane = LaneBuffer::new(5);
        for (l, src) in srcs.iter().enumerate() {
            per_lane.set_lane_scaled(l, src.values(), scales[l]);
        }
        let mut packed = LaneBuffer::new(5);
        let sources: Vec<(&[f64], Option<f64>)> = srcs
            .iter()
            .zip(scales)
            .map(|(s, k)| (s.values(), k))
            .collect();
        packed.pack_scaled(&sources);
        assert_eq!(packed, per_lane);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_is_a_bug() {
        LaneBuffer::new(0);
    }

    #[test]
    #[should_panic(expected = "lane counts must match")]
    fn mismatched_lanes_panic() {
        let a = LaneBuffer::new(2);
        let b = LaneBuffer::new(3);
        let mut acc = [0.0; 2];
        dot_k(&a, &b, &mut acc);
    }
}
