//! One value per hour of the simulated year.

use crate::calendar::{Month, SimCalendar, HOURS_PER_YEAR};
use crate::monthly::MonthlySeries;
use crate::stats;

/// A dense series with one `f64` sample per hour of the 8760-hour
/// simulation year.
///
/// This is the exchange format between the substrates: the weather
/// simulator emits hourly WUE, the grid simulator hourly EWF and carbon
/// intensity, the workload simulator hourly power — and the core models
/// combine them pointwise (Eq. 6–8 are all pointwise in time).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HourlySeries {
    values: Vec<f64>,
}

impl HourlySeries {
    /// Builds a series from exactly one year of hourly values.
    ///
    /// # Panics
    /// Panics if `values.len() != HOURS_PER_YEAR` — partial years are a
    /// construction bug in the calling simulator, not a runtime condition.
    pub fn from_vec(values: Vec<f64>) -> Self {
        assert_eq!(
            values.len(),
            HOURS_PER_YEAR,
            "hourly series must cover the whole simulated year"
        );
        Self { values }
    }

    /// Builds a series by evaluating `f(hour)` for each hour of the year.
    pub fn from_fn(mut f: impl FnMut(usize) -> f64) -> Self {
        Self {
            values: (0..HOURS_PER_YEAR).map(&mut f).collect(),
        }
    }

    /// A constant series.
    pub fn constant(value: f64) -> Self {
        Self {
            values: vec![value; HOURS_PER_YEAR],
        }
    }

    /// Number of samples (always `HOURS_PER_YEAR`).
    #[allow(clippy::len_without_is_empty)]
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Sample at hour-of-year `hour`.
    #[inline]
    pub fn get(&self, hour: usize) -> f64 {
        self.values[hour]
    }

    /// Raw sample slice.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterator over `(hour, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.values.iter().copied().enumerate()
    }

    /// Pointwise transform.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Self {
        Self {
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Pointwise combination of two series.
    pub fn zip_with(&self, other: &Self, mut f: impl FnMut(f64, f64) -> f64) -> Self {
        Self {
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Pointwise sum.
    pub fn add(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a + b)
    }

    /// Pointwise product.
    pub fn mul(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a * b)
    }

    /// Fused `self + k·other` in one pass and one allocation — the
    /// `WI = WUE + PUE·EWF` kernel without the intermediate scaled
    /// series. Bit-identical to `self.add(&other.scale(k))`: each
    /// element is computed as `a + (b * k)`, the exact operation order
    /// of the unfused pair.
    pub fn add_scaled(&self, other: &Self, k: f64) -> Self {
        self.zip_with(other, |a, b| a + b * k)
    }

    /// Buffer-reuse variant of [`add_scaled`](Self::add_scaled): writes
    /// `self + k·other` into `out` without allocating. `out` keeps its
    /// year-long length invariant, so any existing series can serve as
    /// the scratch buffer in a hot loop.
    pub fn add_scaled_into(&self, other: &Self, k: f64, out: &mut Self) {
        for ((o, &a), &b) in out.values.iter_mut().zip(&self.values).zip(&other.values) {
            *o = a + b * k;
        }
    }

    /// Buffer-reuse variant of [`mul`](Self::mul): writes the pointwise
    /// product into `out` without allocating.
    pub fn mul_into(&self, other: &Self, out: &mut Self) {
        for ((o, &a), &b) in out.values.iter_mut().zip(&self.values).zip(&other.values) {
            *o = a * b;
        }
    }

    /// Single-pass product-sum `Σ self·other` with no intermediate
    /// series — the Eq. 6/7 `E·WUE` / `E·EWF` totals. Bit-identical to
    /// `self.mul(other).total()`: the products accumulate left to right
    /// exactly as the unfused pair sums them.
    pub fn dot(&self, other: &Self) -> f64 {
        self.values
            .iter()
            .zip(&other.values)
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Scales every sample by `k`.
    pub fn scale(&self, k: f64) -> Self {
        self.map(|v| v * k)
    }

    /// Sum of all samples (e.g. annual energy from hourly kWh).
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Arithmetic mean over the year.
    pub fn mean(&self) -> f64 {
        stats::mean(&self.values)
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The subrange of samples belonging to `month`.
    pub fn month_slice(&self, month: Month) -> &[f64] {
        let cal = SimCalendar;
        &self.values[cal.month_hours(month)]
    }

    /// Resamples to monthly means.
    pub fn monthly_mean(&self) -> MonthlySeries {
        MonthlySeries::from_fn(|m| stats::mean(self.month_slice(m)))
    }

    /// Resamples to monthly sums (totals are preserved:
    /// `monthly_sum().total() == total()`).
    pub fn monthly_sum(&self) -> MonthlySeries {
        MonthlySeries::from_fn(|m| self.month_slice(m).iter().sum())
    }

    /// Min-max normalization into `[0, 1]` across the year, as used by the
    /// Fig. 11/12 panels. Constant series normalize to all zeros.
    pub fn normalized(&self) -> Self {
        Self {
            values: stats::min_max_normalize(&self.values),
        }
    }

    /// Mean of the samples in the window `[start, start+len)`, wrapping
    /// around the end of the year (a job started on Dec 31 runs into
    /// January — the start-time experiments of Fig. 13 need this).
    pub fn wrapping_window_mean(&self, start: usize, len: usize) -> f64 {
        assert!(len > 0, "window must be non-empty");
        let sum: f64 = (0..len)
            .map(|i| self.values[(start + i) % HOURS_PER_YEAR])
            .sum();
        sum / len as f64
    }

    /// Summary distribution (min/median/max & quartiles) over the year,
    /// the shape reported by the Fig. 6 box plots.
    pub fn summary(&self) -> stats::DistributionSummary {
        stats::DistributionSummary::from_samples(&self.values)
            .expect("hourly series is never empty")
    }

    /// Trailing rolling mean with wrap-around: element `h` becomes the
    /// mean of the `window` samples ending at `h` (inclusive). Used by
    /// forecasting smoothers.
    pub fn rolling_mean(&self, window: usize) -> Self {
        assert!(window > 0, "rolling window must be non-empty");
        let n = HOURS_PER_YEAR;
        let window = window.min(n);
        let mut out = Vec::with_capacity(n);
        // Running sum, starting with the window that ends at hour n-1
        // (i.e. the one "before" hour 0 under wrap-around).
        let mut sum: f64 = self.values[n - window..].iter().sum();
        for h in 0..n {
            // Slide the window forward to end at h.
            sum += self.values[h];
            sum -= self.values[(h + n - window) % n];
            out.push(sum / window as f64);
        }
        Self { values: out }
    }

    /// The series shifted `lag` hours into the past, wrapping: element
    /// `h` takes the value from hour `h − lag` (mod year). `lag = 24` is
    /// the seasonal-naive "same hour yesterday" forecaster.
    pub fn lagged(&self, lag: usize) -> Self {
        let n = HOURS_PER_YEAR;
        Self {
            values: (0..n).map(|h| self.values[(h + n - lag % n) % n]).collect(),
        }
    }

    /// Mean absolute error against another series.
    pub fn mae(&self, other: &Self) -> f64 {
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / HOURS_PER_YEAR as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let s = HourlySeries::from_fn(|h| h as f64);
        assert_eq!(s.len(), HOURS_PER_YEAR);
        assert_eq!(s.get(0), 0.0);
        assert_eq!(s.get(8759), 8759.0);
    }

    #[test]
    #[should_panic(expected = "whole simulated year")]
    fn from_vec_rejects_partial_years() {
        HourlySeries::from_vec(vec![1.0; 100]);
    }

    #[test]
    fn pointwise_algebra() {
        let a = HourlySeries::constant(2.0);
        let b = HourlySeries::constant(3.0);
        assert_eq!(a.add(&b).get(17), 5.0);
        assert_eq!(a.mul(&b).get(17), 6.0);
        assert_eq!(a.scale(10.0).get(17), 20.0);
        assert_eq!(a.map(|v| v * v).get(17), 4.0);
        assert_eq!(a.zip_with(&b, |x, y| y - x).get(17), 1.0);
    }

    #[test]
    fn fused_kernels_match_their_unfused_pairs() {
        let a = HourlySeries::from_fn(|h| ((h * 13) % 29) as f64 * 0.37);
        let b = HourlySeries::from_fn(|h| ((h * 7) % 31) as f64 * 0.11);
        let k = 1.6180339887;
        // add_scaled ≡ add(scale) bit for bit.
        assert_eq!(a.add_scaled(&b, k), a.add(&b.scale(k)));
        // dot ≡ mul().total() bit for bit.
        assert_eq!(a.dot(&b), a.mul(&b).total());
        // The *_into variants reuse a buffer and agree with the
        // allocating kernels.
        let mut out = HourlySeries::constant(f64::NAN);
        a.add_scaled_into(&b, k, &mut out);
        assert_eq!(out, a.add_scaled(&b, k));
        a.mul_into(&b, &mut out);
        assert_eq!(out, a.mul(&b));
    }

    #[test]
    fn totals_and_extremes() {
        let s = HourlySeries::from_fn(|h| if h == 100 { 10.0 } else { 1.0 });
        assert_eq!(s.total(), (HOURS_PER_YEAR - 1) as f64 + 10.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 10.0);
        assert!(s.mean() > 1.0 && s.mean() < 1.01);
    }

    #[test]
    fn monthly_resampling_preserves_totals() {
        let s = HourlySeries::from_fn(|h| (h % 7) as f64);
        let monthly = s.monthly_sum();
        assert!((monthly.total() - s.total()).abs() < 1e-6);
    }

    #[test]
    fn monthly_mean_of_month_indicator() {
        let cal = SimCalendar;
        let s = HourlySeries::from_fn(|h| {
            if cal.month_of_hour(h) == Month::July {
                1.0
            } else {
                0.0
            }
        });
        let m = s.monthly_mean();
        assert_eq!(m.get(Month::July), 1.0);
        assert_eq!(m.get(Month::March), 0.0);
    }

    #[test]
    fn normalization_bounds() {
        let s = HourlySeries::from_fn(|h| (h as f64).sin() * 5.0 + 3.0);
        let n = s.normalized();
        assert!(n.min() >= 0.0);
        assert!(n.max() <= 1.0 + 1e-12);
        assert!((n.max() - 1.0).abs() < 1e-12);
        assert!(n.min().abs() < 1e-12);
        // Constant series → all zeros, not NaN.
        assert_eq!(HourlySeries::constant(4.2).normalized().max(), 0.0);
    }

    #[test]
    fn wrapping_window_crosses_year_boundary() {
        let s = HourlySeries::from_fn(|h| if h < 2 { 1.0 } else { 0.0 });
        // Window starting at the last hour of the year, length 3: covers
        // hours 8759, 0, 1 → values 0, 1, 1.
        let m = s.wrapping_window_mean(HOURS_PER_YEAR - 1, 3);
        assert!((m - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rolling_mean_matches_naive() {
        let s = HourlySeries::from_fn(|h| ((h * 31) % 17) as f64);
        let w = 5;
        let r = s.rolling_mean(w);
        for h in [0usize, 1, 4, 100, HOURS_PER_YEAR - 1] {
            let naive: f64 = (0..w)
                .map(|i| s.get((h + HOURS_PER_YEAR - i) % HOURS_PER_YEAR))
                .sum::<f64>()
                / w as f64;
            assert!((r.get(h) - naive).abs() < 1e-9, "hour {h}");
        }
        // Window 1 is the identity.
        assert_eq!(s.rolling_mean(1), s);
    }

    #[test]
    fn lag_and_mae() {
        let s = HourlySeries::from_fn(|h| h as f64);
        let l = s.lagged(24);
        assert_eq!(l.get(24), 0.0);
        assert_eq!(l.get(25), 1.0);
        assert_eq!(l.get(0), (HOURS_PER_YEAR - 24) as f64);
        assert_eq!(s.mae(&s), 0.0);
        let shifted = s.map(|v| v + 2.0);
        assert!((s.mae(&shifted) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn month_slice_lengths() {
        let s = HourlySeries::constant(1.0);
        assert_eq!(s.month_slice(Month::February).len(), 28 * 24);
        assert_eq!(s.month_slice(Month::July).len(), 31 * 24);
    }
}
