//! One value per month — the granularity of the paper's Fig. 11/12 panels.

use crate::calendar::{Month, MONTHS_PER_YEAR};
use crate::stats;

/// A series with one `f64` value per calendar month.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MonthlySeries {
    values: [f64; MONTHS_PER_YEAR],
}

impl MonthlySeries {
    /// Builds from an explicit 12-value array (January first).
    pub fn from_array(values: [f64; MONTHS_PER_YEAR]) -> Self {
        Self { values }
    }

    /// Builds by evaluating `f` for each month.
    pub fn from_fn(mut f: impl FnMut(Month) -> f64) -> Self {
        let mut values = [0.0; MONTHS_PER_YEAR];
        for month in Month::ALL {
            values[month.index()] = f(month);
        }
        Self { values }
    }

    /// A constant monthly series.
    pub fn constant(v: f64) -> Self {
        Self {
            values: [v; MONTHS_PER_YEAR],
        }
    }

    /// Value for `month`.
    #[inline]
    pub fn get(&self, month: Month) -> f64 {
        self.values[month.index()]
    }

    /// Raw values, January first.
    #[inline]
    pub fn values(&self) -> &[f64; MONTHS_PER_YEAR] {
        &self.values
    }

    /// Iterator over `(month, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (Month, f64)> + '_ {
        Month::ALL.iter().map(move |&m| (m, self.values[m.index()]))
    }

    /// Pointwise transform.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Self {
        let mut values = self.values;
        for v in &mut values {
            *v = f(*v);
        }
        Self { values }
    }

    /// Pointwise combination.
    pub fn zip_with(&self, other: &Self, mut f: impl FnMut(f64, f64) -> f64) -> Self {
        Self::from_fn(|m| f(self.get(m), other.get(m)))
    }

    /// Sum over all months.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Mean over months (unweighted, as the paper's annual averages are).
    pub fn mean(&self) -> f64 {
        stats::mean(&self.values)
    }

    /// Minimum month value.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum month value.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The month holding the maximum value (first on ties).
    pub fn argmax(&self) -> Month {
        let mut best = Month::January;
        for month in Month::ALL {
            if self.get(month) > self.get(best) {
                best = month;
            }
        }
        best
    }

    /// The month holding the minimum value (first on ties).
    pub fn argmin(&self) -> Month {
        let mut best = Month::January;
        for month in Month::ALL {
            if self.get(month) < self.get(best) {
                best = month;
            }
        }
        best
    }

    /// Min-max normalization into `[0, 1]`; constant series → all zeros.
    pub fn normalized(&self) -> Self {
        let normalized = stats::min_max_normalize(&self.values);
        let mut values = [0.0; MONTHS_PER_YEAR];
        values.copy_from_slice(&normalized);
        Self { values }
    }

    /// Pearson correlation with another monthly series.
    pub fn pearson(&self, other: &Self) -> f64 {
        stats::pearson(&self.values, other.values()).expect("monthly series have equal length")
    }

    /// Mean over the Northern-hemisphere summer (June–August).
    pub fn summer_mean(&self) -> f64 {
        let vals: Vec<f64> = Month::ALL
            .iter()
            .filter(|m| m.is_summer())
            .map(|&m| self.get(m))
            .collect();
        stats::mean(&vals)
    }

    /// Mean over the non-summer months.
    pub fn non_summer_mean(&self) -> f64 {
        let vals: Vec<f64> = Month::ALL
            .iter()
            .filter(|m| !m.is_summer())
            .map(|&m| self.get(m))
            .collect();
        stats::mean(&vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let s = MonthlySeries::from_fn(|m| m.number() as f64);
        assert_eq!(s.get(Month::January), 1.0);
        assert_eq!(s.get(Month::December), 12.0);
        assert_eq!(s.total(), 78.0);
        assert_eq!(s.mean(), 6.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 12.0);
        assert_eq!(s.argmax(), Month::December);
        assert_eq!(s.argmin(), Month::January);
    }

    #[test]
    fn normalization() {
        let s = MonthlySeries::from_fn(|m| m.number() as f64 * 2.0);
        let n = s.normalized();
        assert_eq!(n.get(Month::January), 0.0);
        assert_eq!(n.get(Month::December), 1.0);
        assert_eq!(MonthlySeries::constant(7.0).normalized().max(), 0.0);
    }

    #[test]
    fn correlation_of_identical_series_is_one() {
        let s = MonthlySeries::from_fn(|m| (m.number() as f64).sin());
        assert!((s.pearson(&s) - 1.0).abs() < 1e-12);
        let inv = s.map(|v| -v);
        assert!((s.pearson(&inv) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn summer_split() {
        let s = MonthlySeries::from_fn(|m| if m.is_summer() { 10.0 } else { 2.0 });
        assert_eq!(s.summer_mean(), 10.0);
        assert_eq!(s.non_summer_mean(), 2.0);
    }

    #[test]
    fn zip_and_iter() {
        let a = MonthlySeries::constant(2.0);
        let b = MonthlySeries::constant(5.0);
        let c = a.zip_with(&b, |x, y| x * y);
        assert_eq!(c.get(Month::June), 10.0);
        assert_eq!(c.iter().count(), 12);
        let (first_month, v) = c.iter().next().unwrap();
        assert_eq!(first_month, Month::January);
        assert_eq!(v, 10.0);
    }
}
