//! Descriptive statistics used by the analysis: means, quantiles,
//! normalization, and correlation.
//!
//! Quantiles use linear interpolation between order statistics (the same
//! convention as numpy's default), so medians of even-length samples are
//! midpoints.

/// Error for statistics over unusable inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The input slice was empty.
    Empty,
    /// Two paired inputs had different lengths.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
}

impl core::fmt::Display for StatsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StatsError::Empty => write!(f, "empty sample"),
            StatsError::LengthMismatch { left, right } => {
                write!(f, "paired samples differ in length: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Arithmetic mean; 0 for an empty slice (callers that care use
/// [`DistributionSummary::from_samples`] which errors instead).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Quantile `q ∈ [0, 1]` with linear interpolation.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64, StatsError> {
    if xs.is_empty() {
        return Err(StatsError::Empty);
    }
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (0.5-quantile).
pub fn median(xs: &[f64]) -> Result<f64, StatsError> {
    quantile(xs, 0.5)
}

/// Min-max normalization into `[0, 1]`. A constant (or empty) input maps to
/// all zeros rather than dividing by zero — matching how a flat panel is
/// rendered in the paper's normalized figures.
pub fn min_max_normalize(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    if span <= 0.0 {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|&x| (x - min) / span).collect()
}

/// Pearson linear correlation coefficient of paired samples.
///
/// Returns 0 when either side has zero variance (a flat series is
/// uncorrelated with everything by convention here).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64, StatsError> {
    if xs.len() != ys.len() {
        return Err(StatsError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.is_empty() {
        return Err(StatsError::Empty);
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return Ok(0.0);
    }
    Ok(cov / (vx.sqrt() * vy.sqrt()))
}

/// Spearman rank correlation: Pearson over the rank transforms, with mean
/// ranks for ties. Used for the Fig. 13 ranking comparisons.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64, StatsError> {
    if xs.len() != ys.len() {
        return Err(StatsError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    pearson(&ranks(xs), &ranks(ys))
}

/// Mean ranks (1-based) with ties averaged.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .expect("samples must not contain NaN")
    });
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Mean of the 1-based ranks i+1 ..= j+1.
        let mean_rank = (i + 1 + j + 1) as f64 / 2.0;
        for &idx in &order[i..=j] {
            out[idx] = mean_rank;
        }
        i = j + 1;
    }
    out
}

/// Five-number-style summary of a sample distribution: the min / quartiles /
/// max plus mean, matching what the paper's bar-and-whisker figures report
/// (bar = median, whiskers = min–max).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DistributionSummary {
    /// Smallest sample.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl DistributionSummary {
    /// Computes the summary, erroring on empty input.
    pub fn from_samples(xs: &[f64]) -> Result<Self, StatsError> {
        if xs.is_empty() {
            return Err(StatsError::Empty);
        }
        Ok(Self {
            min: quantile(xs, 0.0)?,
            q1: quantile(xs, 0.25)?,
            median: quantile(xs, 0.5)?,
            q3: quantile(xs, 0.75)?,
            max: quantile(xs, 1.0)?,
            mean: mean(xs),
        })
    }

    /// Whisker span (max − min), the "variation range" the paper discusses
    /// for Fig. 6.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(median(&xs).unwrap(), 2.5);
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert_eq!(quantile(&xs, 0.25).unwrap(), 1.75);
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn normalization_handles_flat_input() {
        assert_eq!(min_max_normalize(&[3.0, 3.0, 3.0]), vec![0.0, 0.0, 0.0]);
        assert_eq!(min_max_normalize(&[]), Vec::<f64>::new());
        let n = min_max_normalize(&[1.0, 3.0, 2.0]);
        assert_eq!(n, vec![0.0, 1.0, 0.5]);
    }

    #[test]
    fn pearson_known_values() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]).unwrap(), 0.0);
        assert!(matches!(
            pearson(&xs, &ys[..3]),
            Err(StatsError::LengthMismatch { left: 4, right: 3 })
        ));
    }

    #[test]
    fn spearman_is_rank_invariant_to_monotone_maps() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|&x| x * x * x).collect(); // monotone, nonlinear
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn distribution_summary() {
        let xs: Vec<f64> = (1..=101).map(|i| i as f64).collect();
        let s = DistributionSummary::from_samples(&xs).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 51.0);
        assert_eq!(s.max, 101.0);
        assert_eq!(s.q1, 26.0);
        assert_eq!(s.q3, 76.0);
        assert_eq!(s.mean, 51.0);
        assert_eq!(s.range(), 100.0);
        assert!(DistributionSummary::from_samples(&[]).is_err());
    }
}
