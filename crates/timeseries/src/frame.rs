//! A tiny named-column table ("frame") for emitting experiment rows.
//!
//! The experiment harness produces the paper's tables and figure series as
//! rows; a `Frame` holds them with typed columns (strings or numbers),
//! supports group-by aggregation, and exports CSV for EXPERIMENTS.md.

use std::collections::BTreeMap;

/// Frame construction/access errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A column with this name already exists.
    DuplicateColumn(String),
    /// Column lengths disagree.
    LengthMismatch {
        /// Name of the offending column.
        column: String,
        /// Its length.
        got: usize,
        /// The frame's row count.
        expected: usize,
    },
    /// No column with this name.
    NoSuchColumn(String),
    /// Requested a numeric operation on a string column (or vice versa).
    TypeMismatch(String),
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::DuplicateColumn(c) => write!(f, "duplicate column {c:?}"),
            FrameError::LengthMismatch {
                column,
                got,
                expected,
            } => write!(f, "column {column:?} has {got} rows, frame has {expected}"),
            FrameError::NoSuchColumn(c) => write!(f, "no column {c:?}"),
            FrameError::TypeMismatch(c) => write!(f, "column {c:?} has the wrong type"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A single column: all strings or all numbers.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Column {
    /// Text column (labels, system names, months).
    Text(Vec<String>),
    /// Numeric column.
    Number(Vec<f64>),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Text(v) => v.len(),
            Column::Number(v) => v.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn cell_to_string(&self, row: usize) -> String {
        match self {
            Column::Text(v) => v[row].clone(),
            Column::Number(v) => {
                let x = if v[row] == 0.0 { 0.0 } else { v[row] }; // normalize -0.0
                if x == x.trunc() && x.abs() < 1e15 {
                    format!("{x}")
                } else {
                    let s = format!("{x:.6}");
                    let trimmed = s.trim_end_matches('0').trim_end_matches('.');
                    trimmed.to_string()
                }
            }
        }
    }
}

/// A small, ordered, named-column table.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Frame {
    names: Vec<String>,
    columns: Vec<Column>,
}

impl Frame {
    /// An empty frame.
    pub fn new() -> Self {
        Self::default()
    }

    /// Row count (0 for an empty frame).
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Column count.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Column names in insertion order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Adds a text column.
    pub fn push_text(
        &mut self,
        name: impl Into<String>,
        values: Vec<String>,
    ) -> Result<(), FrameError> {
        self.push_column(name.into(), Column::Text(values))
    }

    /// Adds a numeric column.
    pub fn push_number(
        &mut self,
        name: impl Into<String>,
        values: Vec<f64>,
    ) -> Result<(), FrameError> {
        self.push_column(name.into(), Column::Number(values))
    }

    fn push_column(&mut self, name: String, column: Column) -> Result<(), FrameError> {
        if self.names.contains(&name) {
            return Err(FrameError::DuplicateColumn(name));
        }
        if !self.columns.is_empty() && column.len() != self.n_rows() {
            return Err(FrameError::LengthMismatch {
                column: name,
                got: column.len(),
                expected: self.n_rows(),
            });
        }
        self.names.push(name);
        self.columns.push(column);
        Ok(())
    }

    /// Looks up a column by name.
    pub fn column(&self, name: &str) -> Result<&Column, FrameError> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.columns[i])
            .ok_or_else(|| FrameError::NoSuchColumn(name.to_string()))
    }

    /// Numeric column accessor.
    pub fn numbers(&self, name: &str) -> Result<&[f64], FrameError> {
        match self.column(name)? {
            Column::Number(v) => Ok(v),
            Column::Text(_) => Err(FrameError::TypeMismatch(name.to_string())),
        }
    }

    /// Text column accessor.
    pub fn texts(&self, name: &str) -> Result<&[String], FrameError> {
        match self.column(name)? {
            Column::Text(v) => Ok(v),
            Column::Number(_) => Err(FrameError::TypeMismatch(name.to_string())),
        }
    }

    /// Group-by: sums `value_col` per distinct key in `key_col`, returning
    /// keys in sorted order. (Enough for the Fig. 1(c) per-state power
    /// aggregation.)
    pub fn group_sum(
        &self,
        key_col: &str,
        value_col: &str,
    ) -> Result<Vec<(String, f64)>, FrameError> {
        let keys = self.texts(key_col)?;
        let values = self.numbers(value_col)?;
        let mut acc: BTreeMap<&str, f64> = BTreeMap::new();
        for (k, &v) in keys.iter().zip(values) {
            *acc.entry(k.as_str()).or_insert(0.0) += v;
        }
        Ok(acc.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders the frame as CSV (header + rows). Cells containing commas or
    /// quotes are quoted.
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .names
                .iter()
                .map(|n| escape(n))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in 0..self.n_rows() {
            let cells: Vec<String> = self
                .columns
                .iter()
                .map(|c| escape(&c.cell_to_string(row)))
                .collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the frame as a GitHub-flavored markdown table, used by the
    /// experiment report binary.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.names.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.names {
            out.push_str("---|");
        }
        out.push('\n');
        for row in 0..self.n_rows() {
            out.push_str("| ");
            let cells: Vec<String> = self.columns.iter().map(|c| c.cell_to_string(row)).collect();
            out.push_str(&cells.join(" | "));
            out.push_str(" |\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        let mut f = Frame::new();
        f.push_text(
            "system",
            vec!["Marconi".into(), "Fugaku".into(), "Marconi".into()],
        )
        .unwrap();
        f.push_number("water", vec![1.5, 2.0, 2.5]).unwrap();
        f
    }

    #[test]
    fn basic_shape() {
        let f = sample();
        assert_eq!(f.n_rows(), 3);
        assert_eq!(f.n_cols(), 2);
        assert_eq!(f.names(), &["system".to_string(), "water".to_string()]);
        assert_eq!(f.numbers("water").unwrap()[1], 2.0);
        assert_eq!(f.texts("system").unwrap()[0], "Marconi");
    }

    #[test]
    fn errors() {
        let mut f = sample();
        assert!(matches!(
            f.push_number("water", vec![1.0, 2.0, 3.0]),
            Err(FrameError::DuplicateColumn(_))
        ));
        assert!(matches!(
            f.push_number("short", vec![1.0]),
            Err(FrameError::LengthMismatch { .. })
        ));
        assert!(matches!(f.column("nope"), Err(FrameError::NoSuchColumn(_))));
        assert!(matches!(
            f.numbers("system"),
            Err(FrameError::TypeMismatch(_))
        ));
        assert!(matches!(f.texts("water"), Err(FrameError::TypeMismatch(_))));
    }

    #[test]
    fn group_sum_aggregates_sorted() {
        let f = sample();
        let groups = f.group_sum("system", "water").unwrap();
        assert_eq!(
            groups,
            vec![("Fugaku".to_string(), 2.0), ("Marconi".to_string(), 4.0)]
        );
    }

    #[test]
    fn csv_rendering_escapes() {
        let mut f = Frame::new();
        f.push_text("label", vec!["a,b".into(), "plain".into()])
            .unwrap();
        f.push_number("x", vec![1.0, 2.5]).unwrap();
        let csv = f.to_csv();
        assert!(csv.starts_with("label,x\n"));
        assert!(csv.contains("\"a,b\",1\n"));
        assert!(csv.contains("plain,2.5"));
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().to_markdown();
        assert!(md.starts_with("| system | water |"));
        assert!(md.contains("| Marconi | 1.5 |"));
    }

    #[test]
    fn empty_frame() {
        let f = Frame::new();
        assert_eq!(f.n_rows(), 0);
        assert_eq!(f.to_csv(), "\n");
    }
}
