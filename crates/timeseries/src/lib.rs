//! Lightweight time-series and dataframe substrate for ThirstyFLOPS.
//!
//! The paper's analysis pipeline is pandas-shaped: hourly weather / grid /
//! power telemetry is resampled to months, min-max normalized for the
//! Fig. 11/12 panels, summarized into median/min/max distributions for the
//! Fig. 5/6 box plots, and correlated across metrics. Rust has no blessed
//! lightweight dataframe, so this crate provides exactly the pieces the
//! analysis needs and nothing more:
//!
//! * [`SimCalendar`] / [`Month`] — a fixed 8760-hour simulation year with
//!   month boundaries (no leap days: annual analyses in the paper are
//!   month-granular, so a 365-day year keeps indices trivially stable);
//! * [`HourlySeries`] — one value per hour of a year;
//! * [`MonthlySeries`] — one value per month, produced by resampling;
//! * [`stats`] — mean/median/quantile/std/extremes, min-max normalization,
//!   Pearson and Spearman correlation, distribution summaries;
//! * [`lanes`] — K-lane structure-of-arrays buffers and the fused kernels
//!   generalized to K series per pass (`dot_k`, `add_scaled_k`, …),
//!   bit-identical per lane to the scalar kernels;
//! * [`Frame`] — a tiny named-column table with CSV export and group-by,
//!   used by the experiment harness to emit figure/table rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
mod frame;
mod hourly;
pub mod lanes;
mod monthly;
pub mod stats;

pub use calendar::{Month, SimCalendar, HOURS_PER_DAY, HOURS_PER_YEAR, MONTHS_PER_YEAR};
pub use frame::{Column, Frame, FrameError};
pub use hourly::HourlySeries;
pub use lanes::LaneBuffer;
pub use monthly::MonthlySeries;
pub use stats::{DistributionSummary, StatsError};
