//! The simulation calendar: a fixed 365-day, 8760-hour year.
//!
//! All of the paper's temporal analyses are at most month-granular over a
//! single year of telemetry, so the calendar deliberately ignores leap
//! years and time zones: hour `0` is 00:00 on January 1st local time, hour
//! `8759` is 23:00 on December 31st.

/// Hours in one simulated day.
pub const HOURS_PER_DAY: usize = 24;

/// Hours in one simulated (non-leap) year.
pub const HOURS_PER_YEAR: usize = 365 * HOURS_PER_DAY;

/// Months in a year.
pub const MONTHS_PER_YEAR: usize = 12;

/// Days in each month of the simulated year (non-leap).
const DAYS_IN_MONTH: [usize; MONTHS_PER_YEAR] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// A calendar month, numbered 1–12 like the paper's figures.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
#[allow(missing_docs)]
pub enum Month {
    January,
    February,
    March,
    April,
    May,
    June,
    July,
    August,
    September,
    October,
    November,
    December,
}

impl Month {
    /// All twelve months, January first.
    pub const ALL: [Month; MONTHS_PER_YEAR] = [
        Month::January,
        Month::February,
        Month::March,
        Month::April,
        Month::May,
        Month::June,
        Month::July,
        Month::August,
        Month::September,
        Month::October,
        Month::November,
        Month::December,
    ];

    /// 0-based index (January = 0).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// 1-based month number (January = 1), as used in figure axes.
    #[inline]
    pub fn number(self) -> usize {
        self as usize + 1
    }

    /// Constructs from a 0-based index.
    pub fn from_index(idx: usize) -> Option<Month> {
        Month::ALL.get(idx).copied()
    }

    /// Days in this month of the simulated (non-leap) year.
    #[inline]
    pub fn days(self) -> usize {
        DAYS_IN_MONTH[self.index()]
    }

    /// Hours in this month.
    #[inline]
    pub fn hours(self) -> usize {
        self.days() * HOURS_PER_DAY
    }

    /// True for June–August, the Northern-hemisphere summer the paper's
    /// Fig. 12 discussion keys on.
    #[inline]
    pub fn is_summer(self) -> bool {
        matches!(self, Month::June | Month::July | Month::August)
    }

    /// English month name.
    pub fn name(self) -> &'static str {
        match self {
            Month::January => "January",
            Month::February => "February",
            Month::March => "March",
            Month::April => "April",
            Month::May => "May",
            Month::June => "June",
            Month::July => "July",
            Month::August => "August",
            Month::September => "September",
            Month::October => "October",
            Month::November => "November",
            Month::December => "December",
        }
    }
}

impl core::fmt::Display for Month {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The fixed simulation calendar: hour-of-year ↔ (month, day, hour-of-day)
/// conversions and month boundaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimCalendar;

impl SimCalendar {
    /// First hour-of-year of `month`.
    pub fn month_start_hour(self, month: Month) -> usize {
        DAYS_IN_MONTH[..month.index()].iter().sum::<usize>() * HOURS_PER_DAY
    }

    /// Exclusive end hour-of-year of `month`.
    pub fn month_end_hour(self, month: Month) -> usize {
        self.month_start_hour(month) + month.hours()
    }

    /// The month containing hour-of-year `hour`.
    ///
    /// # Panics
    /// Panics if `hour >= HOURS_PER_YEAR`.
    pub fn month_of_hour(self, hour: usize) -> Month {
        assert!(hour < HOURS_PER_YEAR, "hour {hour} outside simulated year");
        let mut remaining = hour / HOURS_PER_DAY;
        for month in Month::ALL {
            if remaining < month.days() {
                return month;
            }
            remaining -= month.days();
        }
        unreachable!("hour bounds checked above")
    }

    /// Hour of day (0–23) for hour-of-year `hour`.
    #[inline]
    pub fn hour_of_day(self, hour: usize) -> usize {
        hour % HOURS_PER_DAY
    }

    /// 0-based day of year (0–364) for hour-of-year `hour`.
    #[inline]
    pub fn day_of_year(self, hour: usize) -> usize {
        hour / HOURS_PER_DAY
    }

    /// Fraction of the year elapsed at `hour`, in `[0, 1)`.
    #[inline]
    pub fn year_fraction(self, hour: usize) -> f64 {
        hour as f64 / HOURS_PER_YEAR as f64
    }

    /// Iterator over the hour range of a month.
    pub fn month_hours(self, month: Month) -> core::ops::Range<usize> {
        self.month_start_hour(month)..self.month_end_hour(month)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_lengths_sum_to_a_year() {
        let total: usize = Month::ALL.iter().map(|m| m.hours()).sum();
        assert_eq!(total, HOURS_PER_YEAR);
        assert_eq!(Month::February.days(), 28);
        assert_eq!(Month::December.days(), 31);
    }

    #[test]
    fn month_boundaries_are_contiguous() {
        let cal = SimCalendar;
        let mut expected_start = 0;
        for month in Month::ALL {
            assert_eq!(cal.month_start_hour(month), expected_start);
            expected_start = cal.month_end_hour(month);
        }
        assert_eq!(expected_start, HOURS_PER_YEAR);
    }

    #[test]
    fn month_of_hour_round_trips_boundaries() {
        let cal = SimCalendar;
        for month in Month::ALL {
            assert_eq!(cal.month_of_hour(cal.month_start_hour(month)), month);
            assert_eq!(cal.month_of_hour(cal.month_end_hour(month) - 1), month);
        }
    }

    #[test]
    #[should_panic(expected = "outside simulated year")]
    fn month_of_hour_rejects_out_of_range() {
        SimCalendar.month_of_hour(HOURS_PER_YEAR);
    }

    #[test]
    fn hour_decomposition() {
        let cal = SimCalendar;
        // 00:00 Feb 1 = hour 31*24.
        let h = 31 * 24;
        assert_eq!(cal.month_of_hour(h), Month::February);
        assert_eq!(cal.hour_of_day(h), 0);
        assert_eq!(cal.day_of_year(h), 31);
        assert!(cal.year_fraction(h) > 0.08 && cal.year_fraction(h) < 0.09);
    }

    #[test]
    fn month_metadata() {
        assert_eq!(Month::January.number(), 1);
        assert_eq!(Month::December.number(), 12);
        assert_eq!(Month::from_index(6), Some(Month::July));
        assert_eq!(Month::from_index(12), None);
        assert!(Month::July.is_summer());
        assert!(!Month::October.is_summer());
        assert_eq!(Month::March.to_string(), "March");
    }
}
