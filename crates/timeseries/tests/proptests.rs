//! Property-based tests for the timeseries substrate invariants.

use proptest::prelude::*;
use thirstyflops_timeseries::{
    stats, HourlySeries, Month, MonthlySeries, SimCalendar, HOURS_PER_YEAR,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Monthly-sum resampling never loses or invents mass.
    #[test]
    fn monthly_sum_preserves_total(seed in any::<u64>(), amp in 0.1f64..100.0) {
        let s = HourlySeries::from_fn(|h| {
            let x = (h as u64).wrapping_mul(6364136223846793005).wrapping_add(seed);
            amp * ((x >> 33) as f64 / u32::MAX as f64)
        });
        let monthly = s.monthly_sum();
        prop_assert!((monthly.total() - s.total()).abs() < 1e-6 * s.total().abs().max(1.0));
    }

    /// Normalization output always lies in [0, 1] and attains both bounds
    /// for non-constant input.
    #[test]
    fn normalize_bounds(mut xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let n = stats::min_max_normalize(&xs);
        for &v in &n {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if xs[0] < xs[xs.len() - 1] {
            let max = n.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let min = n.iter().copied().fold(f64::INFINITY, f64::min);
            prop_assert!((max - 1.0).abs() < 1e-9);
            prop_assert!(min.abs() < 1e-9);
        }
    }

    /// Pearson is symmetric, bounded by 1 in magnitude, and exactly 1 on
    /// positively scaled copies.
    #[test]
    fn pearson_properties(xs in proptest::collection::vec(-1e3f64..1e3, 3..50), k in 0.1f64..10.0) {
        let ys: Vec<f64> = xs.iter().map(|&x| k * x + 1.0).collect();
        let r_xy = stats::pearson(&xs, &ys).unwrap();
        let r_yx = stats::pearson(&ys, &xs).unwrap();
        prop_assert!((r_xy - r_yx).abs() < 1e-9);
        prop_assert!(r_xy.abs() <= 1.0 + 1e-9);
        // Degenerate (constant) xs yield 0 by convention; otherwise exactly 1.
        let constant = xs.iter().all(|&x| x == xs[0]);
        if !constant {
            prop_assert!((r_xy - 1.0).abs() < 1e-6);
        }
    }

    /// Quantiles are monotone in q and bounded by the extremes.
    #[test]
    fn quantile_monotone(xs in proptest::collection::vec(-1e4f64..1e4, 1..100),
                         q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let v_lo = stats::quantile(&xs, lo).unwrap();
        let v_hi = stats::quantile(&xs, hi).unwrap();
        prop_assert!(v_lo <= v_hi + 1e-12);
        let min = stats::quantile(&xs, 0.0).unwrap();
        let max = stats::quantile(&xs, 1.0).unwrap();
        prop_assert!(v_lo >= min - 1e-12 && v_hi <= max + 1e-12);
    }

    /// Spearman equals 1 for any strictly increasing transform.
    #[test]
    fn spearman_monotone_invariance(mut xs in proptest::collection::vec(-1e3f64..1e3, 3..50)) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup();
        prop_assume!(xs.len() >= 3);
        let ys: Vec<f64> = xs.iter().map(|&x| x.atan() + x * x * x).collect();
        let rho = stats::spearman(&xs, &ys).unwrap();
        prop_assert!((rho - 1.0).abs() < 1e-9);
    }

    /// Wrapping window mean is bounded by the series extremes.
    #[test]
    fn window_mean_bounded(start in 0usize..HOURS_PER_YEAR, len in 1usize..200) {
        let s = HourlySeries::from_fn(|h| ((h * 37) % 101) as f64);
        let m = s.wrapping_window_mean(start, len);
        prop_assert!(m >= s.min() - 1e-12 && m <= s.max() + 1e-12);
    }

    /// Calendar decomposition is consistent: every hour falls inside its
    /// month's range.
    #[test]
    fn calendar_consistency(hour in 0usize..HOURS_PER_YEAR) {
        let cal = SimCalendar;
        let month = cal.month_of_hour(hour);
        prop_assert!(cal.month_hours(month).contains(&hour));
    }

    /// Monthly normalization bounds hold for arbitrary month values.
    #[test]
    fn monthly_normalized_bounds(vals in proptest::collection::vec(-1e5f64..1e5, 12)) {
        let arr: [f64; 12] = vals.try_into().unwrap();
        let s = MonthlySeries::from_array(arr);
        let n = s.normalized();
        for m in Month::ALL {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&n.get(m)));
        }
    }
}
