//! Embodied carbon: ACT-style per-area factors for logic plus per-GB
//! factors for memory and storage.
//!
//! The per-GB factors encode Takeaway 1's inversion: **SSD embodied
//! carbon per GB far exceeds HDD's** (Tannu & Nair, "The dirty secret of
//! SSDs") even though SSD embodied *water* per GB is lower than HDD's.

use thirstyflops_catalog::hardware::{Medium, ProcessorSpec};
use thirstyflops_catalog::SystemSpec;
use thirstyflops_units::{Gigabytes, KilogramsCo2, Petabytes, SquareCentimeters};

/// Embodied carbon per GB of DRAM, kgCO₂-eq (ACT-style).
pub const KG_CO2_PER_GB_DRAM: f64 = 0.30;

/// Embodied carbon per GB of SSD, kgCO₂-eq — the "dirty secret":
/// NAND fabrication is carbon-heavy.
pub const KG_CO2_PER_GB_SSD: f64 = 0.16;

/// Embodied carbon per GB of HDD, kgCO₂-eq — mechanically complex but
/// fab-light (Seagate Exos LCA manufacturing share).
pub const KG_CO2_PER_GB_HDD: f64 = 0.002;

/// Carbon per die area at a process node, kgCO₂/cm² (ACT CPA trend:
/// finer nodes burn more fab energy per area).
pub fn cpa_kg_per_cm2(process_node_nm: u32) -> f64 {
    match process_node_nm {
        0..=3 => 2.5,
        4 => 2.3,
        5 => 2.2,
        6 => 2.0,
        7 => 1.8,
        8..=10 => 1.4,
        11..=12 => 1.2,
        13..=14 => 1.1,
        15..=16 => 1.0,
        17..=22 => 0.85,
        _ => 0.75,
    }
}

/// Embodied carbon of one processor package (yield-inflated die area ×
/// CPA).
pub fn processor_carbon(spec: &ProcessorSpec) -> KilogramsCo2 {
    let area: SquareCentimeters = spec.die.into();
    KilogramsCo2::new(
        area.value() * spec.yield_rate.inflation() * cpa_kg_per_cm2(spec.process_node_nm),
    )
}

/// Embodied carbon of a capacity on a medium.
pub fn capacity_carbon(medium: Medium, capacity: Gigabytes) -> KilogramsCo2 {
    let per_gb = match medium {
        Medium::Dram => KG_CO2_PER_GB_DRAM,
        Medium::Hdd => KG_CO2_PER_GB_HDD,
        Medium::Ssd => KG_CO2_PER_GB_SSD,
    };
    KilogramsCo2::new(per_gb * capacity.value())
}

/// Per-component embodied carbon for a whole system (the carbon mirror
/// of `EmbodiedBreakdown`).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EmbodiedCarbonBreakdown {
    /// All CPU packages.
    pub cpu: KilogramsCo2,
    /// All GPU packages.
    pub gpu: KilogramsCo2,
    /// All DRAM.
    pub dram: KilogramsCo2,
    /// HDD tier.
    pub hdd: KilogramsCo2,
    /// SSD tier.
    pub ssd: KilogramsCo2,
}

impl EmbodiedCarbonBreakdown {
    /// Computes the breakdown for a cataloged system.
    pub fn for_system(spec: &SystemSpec) -> Self {
        let nodes = spec.nodes as f64;
        let cpu = processor_carbon(&spec.node.cpu) * (spec.node.cpus_per_node as f64) * nodes;
        let gpu = spec.node.gpu.as_ref().map_or(KilogramsCo2::ZERO, |g| {
            processor_carbon(g) * (spec.node.gpus_per_node as f64) * nodes
        });
        let dram = capacity_carbon(Medium::Dram, Gigabytes::new(spec.node.dram_gb * nodes));
        let hdd = capacity_carbon(Medium::Hdd, Petabytes::new(spec.storage.hdd_pb).into());
        let ssd = capacity_carbon(Medium::Ssd, Petabytes::new(spec.storage.ssd_pb).into());
        Self {
            cpu,
            gpu,
            dram,
            hdd,
            ssd,
        }
    }

    /// Total embodied carbon.
    pub fn total(&self) -> KilogramsCo2 {
        self.cpu + self.gpu + self.dram + self.hdd + self.ssd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thirstyflops_catalog::hardware::{self, FabSite};
    use thirstyflops_catalog::SystemId;
    use thirstyflops_core::embodied::capacity_water;

    #[test]
    fn takeaway1_water_and_carbon_rank_ssd_vs_hdd_oppositely() {
        let cap: Gigabytes = Petabytes::new(50.0).into();
        // Water: SSD < HDD.
        assert!(
            capacity_water(Medium::Ssd, cap).value() < capacity_water(Medium::Hdd, cap).value()
        );
        // Carbon: SSD > HDD.
        assert!(
            capacity_carbon(Medium::Ssd, cap).value() > capacity_carbon(Medium::Hdd, cap).value()
        );
    }

    #[test]
    fn cpa_monotone_and_positive() {
        let mut prev = f64::INFINITY;
        for node in [3u32, 5, 7, 10, 14, 22, 28] {
            let v = cpa_kg_per_cm2(node);
            assert!(v > 0.0 && v <= prev);
            prev = v;
        }
    }

    #[test]
    fn processor_carbon_hand_check() {
        let spec = ProcessorSpec::new("A100", 826.0, 7, FabSite::TsmcTaiwan, 250.0);
        let c = processor_carbon(&spec).value();
        let expected = 8.26 / 0.875 * 1.8;
        assert!((c - expected).abs() < 1e-9);
    }

    #[test]
    fn frontier_storage_carbon_does_not_dominate_like_water_does() {
        // The 679 PB HDD tier dominates Frontier's embodied *water* but
        // not its embodied *carbon* (HDD carbon/GB is tiny) — the
        // Takeaway 1 system-level consequence.
        let spec = thirstyflops_catalog::SystemSpec::reference(SystemId::Frontier);
        let carbon = EmbodiedCarbonBreakdown::for_system(&spec);
        let water = thirstyflops_core::EmbodiedBreakdown::for_system(&spec);
        let carbon_hdd_share = carbon.hdd.value() / carbon.total().value();
        let water_hdd_share = water.hdd.value() / water.total().value();
        assert!(
            water_hdd_share > 2.0 * carbon_hdd_share,
            "water HDD share {water_hdd_share} vs carbon {carbon_hdd_share}"
        );
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn wpc_constants_consistency() {
        // The water/carbon per-GB tables must keep their opposite
        // orderings (guards against accidental constant swaps).
        assert!(hardware::WPC_SSD < hardware::WPC_HDD);
        assert!(KG_CO2_PER_GB_SSD > KG_CO2_PER_GB_HDD);
    }

    #[test]
    fn system_breakdowns_are_positive() {
        for id in SystemId::ALL {
            let spec = thirstyflops_catalog::SystemSpec::reference(id);
            let b = EmbodiedCarbonBreakdown::for_system(&spec);
            assert!(b.total().value() > 0.0, "{id}");
            assert!(b.cpu.value() > 0.0);
        }
    }
}
