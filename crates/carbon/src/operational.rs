//! Operational carbon: `C = E · PUE · CI`, the carbon mirror of Eq. 7.

use thirstyflops_core::SystemYear;
use thirstyflops_timeseries::{HourlySeries, MonthlySeries};
use thirstyflops_units::{GramsCo2, KilowattHours, Pue};

/// Operational carbon for a period.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OperationalCarbon {
    /// Total CO₂-eq emissions.
    pub total: GramsCo2,
    /// Facility energy (IT × PUE) that produced them.
    pub facility_energy: KilowattHours,
}

/// Evaluates operational carbon from hourly IT energy and hourly carbon
/// intensity.
pub fn operational_carbon(
    energy: &HourlySeries,
    pue: Pue,
    carbon_intensity: &HourlySeries,
) -> OperationalCarbon {
    let grams = energy.mul(carbon_intensity).total() * pue.value();
    OperationalCarbon {
        total: GramsCo2::new(grams),
        facility_energy: KilowattHours::new(energy.total() * pue.value()),
    }
}

/// Monthly operational carbon series, grams per month.
pub fn monthly_operational_carbon(
    energy: &HourlySeries,
    pue: Pue,
    carbon_intensity: &HourlySeries,
) -> MonthlySeries {
    energy
        .mul(carbon_intensity)
        .scale(pue.value())
        .monthly_sum()
}

/// Convenience: operational carbon of a simulated system-year.
pub fn system_year_carbon(year: &SystemYear) -> OperationalCarbon {
    operational_carbon(&year.energy, year.spec.pue, &year.carbon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use thirstyflops_catalog::SystemId;

    #[test]
    fn constant_series_hand_check() {
        let energy = HourlySeries::constant(100.0);
        let ci = HourlySeries::constant(400.0);
        let c = operational_carbon(&energy, Pue::new(1.25).unwrap(), &ci);
        let hours = 8760.0;
        assert!((c.total.value() - 100.0 * 400.0 * 1.25 * hours).abs() < 1.0);
        assert!((c.facility_energy.value() - 100.0 * 1.25 * hours).abs() < 1e-6);
    }

    #[test]
    fn monthly_sums_to_total() {
        let energy = HourlySeries::from_fn(|h| 50.0 + (h % 7) as f64);
        let ci = HourlySeries::from_fn(|h| 300.0 + (h % 11) as f64 * 10.0);
        let pue = Pue::new(1.4).unwrap();
        let monthly = monthly_operational_carbon(&energy, pue, &ci);
        let total = operational_carbon(&energy, pue, &ci).total.value();
        assert!((monthly.total() - total).abs() < 1e-6 * total);
    }

    #[test]
    fn system_year_magnitudes() {
        let year = SystemYear::simulate(SystemId::Marconi, 3);
        let c = system_year_carbon(&year);
        // Marconi: a few GWh-scale months × hundreds of g/kWh ⇒ thousands
        // of tonnes per year.
        let tonnes = c.total.value() / 1e6;
        assert!(
            (1_000.0..50_000.0).contains(&tonnes),
            "Marconi {tonnes} tCO2"
        );
    }
}
