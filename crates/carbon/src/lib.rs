//! ACT-style carbon comparator.
//!
//! The paper repeatedly contrasts water with carbon: Fig. 5 (per-source
//! EWF vs carbon intensity), Fig. 12 (monthly water vs carbon intensity),
//! Fig. 13 (start-time ranking under each metric), Fig. 14 (scenario
//! savings), and Takeaway 1 (SSD vs HDD rank *opposite* on embodied
//! carbon vs embodied water). This crate supplies the carbon side:
//! embodied carbon per die area and per GB (ACT / "Dirty secret of SSDs"
//! style factors) and operational carbon `E · PUE · CI`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod embodied;
mod operational;

pub use embodied::{
    capacity_carbon, cpa_kg_per_cm2, processor_carbon, EmbodiedCarbonBreakdown, KG_CO2_PER_GB_DRAM,
    KG_CO2_PER_GB_HDD, KG_CO2_PER_GB_SSD,
};
pub use operational::{
    monthly_operational_carbon, operational_carbon, system_year_carbon, OperationalCarbon,
};
