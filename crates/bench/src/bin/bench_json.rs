//! `bench_json` — the tracked micro-benchmark behind `./ci.sh bench-json`.
//!
//! Measures the instruction-path cost of the simulation hot loops and
//! the effectiveness of the `core::simcache` memo layers, then writes
//! `BENCH_simulate.json` at the repo root for successive PRs to track:
//!
//! * `cold_simulate_ns` — median of a fully uncached
//!   `SystemYear::simulate_uncached` (the pre-cache workload);
//! * `cold_stages` — the per-stage span breakdown of one cold simulate
//!   (invocations + exclusive self-time per instrumented stage,
//!   `docs/OBSERVABILITY.md`) — where `cold_simulate_ns` actually goes;
//! * `warm_simulate_ns` — median of a repeated memoized
//!   `SystemYear::simulate` (an `Arc` clone);
//! * `grid_year_ns` — median of the `GridRegion::simulate_year` kernel;
//! * `scenario_sweep_ns` — median of the 25-scenario siting sweep
//!   through the declarative engine with the batch kernel disabled (the
//!   scalar reference path, per-row simulation and fused scalar
//!   kernels);
//! * `batched_sweep_ns` — the same sweep through the `core::batch`
//!   K-lane kernel (the default path a `POST /v1/scenarios/sweep` burst
//!   pays), plus `scalar_over_batched`, the tracked speedup ratio;
//! * `trace_overhead` — the cold simulate re-measured with the causal
//!   trace recorder off, recording, and sampled out (context active but
//!   ring writes skipped) — the tracked cost of `--trace-out` /
//!   `serve`'s always-on recorder (`docs/OBSERVABILITY.md`);
//! * hit ratios after a paper-shaped warmup (four systems + repeats).
//!
//! This container has **one CPU**: compare medians of the serial
//! instruction path across PRs, never parallel speedup. The `baseline`
//! section of an existing `BENCH_simulate.json` is preserved verbatim —
//! it records the pre-optimization tree — and only `current` is
//! rewritten, so `current` vs `baseline` is the tracked trajectory.

use std::time::Instant;

use thirstyflops_catalog::{SystemId, SystemSpec};
use thirstyflops_core::{simcache, SystemYear};
use thirstyflops_grid::{GridRegion, RegionId};

/// Median wall-clock nanoseconds per iteration of `f`.
fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Extracts the `"baseline": { ... }` object from a previous
/// `BENCH_simulate.json`, if the file exists and has one.
fn previous_baseline(path: &std::path::Path) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    let value: serde::Value = serde_json::from_str(&text).ok()?;
    value
        .as_object()?
        .iter()
        .find(|(k, _)| k == "baseline")
        .map(|(_, v)| serde_json::to_string(v).expect("re-render parsed JSON"))
}

fn main() {
    let iters = 9;
    let spec = SystemSpec::reference(SystemId::Polaris);

    // Cold path: the full uncached simulation (what every caller paid
    // before the memo substrate, and what a cache-disabled run pays).
    let spec_cold = spec.clone();
    let cold_ns = median_ns(iters, move || {
        std::hint::black_box(SystemYear::simulate_uncached(spec_cold.clone(), 77));
    });

    // Per-stage breakdown of one cold simulate (docs/OBSERVABILITY.md):
    // where cold_simulate_ns actually goes, tracked across PRs like the
    // medians. Invocation counts are deterministic; self_ns shares are
    // wall-clock and move with the medians.
    thirstyflops_obs::span::reset();
    thirstyflops_obs::span::set_enabled(true);
    std::hint::black_box(SystemYear::simulate_uncached(spec.clone(), 77));
    thirstyflops_obs::span::set_enabled(false);
    let cold_stages: String = thirstyflops_obs::span::snapshot()
        .iter()
        .filter(|s| s.invocations > 0)
        .map(|s| {
            format!(
                "\"{}\": {{\"invocations\": {}, \"self_ns\": {}}}",
                s.stage, s.invocations, s.self_ns
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    thirstyflops_obs::span::reset();

    // Trace-recorder overhead on the identical cold workload: off (the
    // measurement above repeated, as the in-run control), on (spans
    // recorded to the ring), and sampled out (request context active,
    // ring writes skipped — what a `--trace-sample`-thinned serve
    // request pays).
    let spec_trace = spec.clone();
    let trace_off_ns = median_ns(iters, move || {
        std::hint::black_box(SystemYear::simulate_uncached(spec_trace.clone(), 77));
    });
    thirstyflops_obs::trace::set_enabled(true);
    thirstyflops_obs::trace::reset();
    let spec_trace = spec.clone();
    let trace_on_ns = median_ns(iters, move || {
        let _ctx = thirstyflops_obs::trace::begin(1, true);
        std::hint::black_box(SystemYear::simulate_uncached(spec_trace.clone(), 77));
    });
    let spec_trace = spec.clone();
    let trace_sampled_ns = median_ns(iters, move || {
        let _ctx = thirstyflops_obs::trace::begin(2, false);
        std::hint::black_box(SystemYear::simulate_uncached(spec_trace.clone(), 77));
    });
    thirstyflops_obs::trace::set_enabled(false);
    thirstyflops_obs::trace::reset();

    // Grid kernel alone (the formerly mix-allocating 8760-hour loop).
    let grid_ns = median_ns(iters, || {
        std::hint::black_box(GridRegion::preset(RegionId::NorthernIllinois).simulate_year());
    });

    // Warm path: prime once, then every repeat must be an Arc clone.
    simcache::set_enabled(true);
    let _prime = SystemYear::simulate(SystemId::Polaris, 77);
    let warm_ns = median_ns(iters.max(101), || {
        std::hint::black_box(SystemYear::simulate(SystemId::Polaris, 77));
    });

    // The scenario-engine sweep path: the shipped 25-combination siting
    // sweep (5 climates × 5 regions), expansion + parallel evaluation.
    let sweep_text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/bench sits two levels under the repo root")
            .join("examples/scenarios/sweep_siting.json"),
    )
    .expect("the shipped siting sweep exists");
    let sweep =
        thirstyflops_scenario::SweepSpec::from_json(&sweep_text).expect("shipped sweep parses");
    // Scalar reference first (batch kernel off), then the default
    // batched K-lane path over the identical spec — the ratio is the
    // tracked win of aggregate dedup + lane fusion.
    thirstyflops_core::batch::set_enabled(false);
    let sweep_ns = median_ns(5, || {
        std::hint::black_box(
            thirstyflops_scenario::evaluate_sweep(&sweep).expect("shipped sweep evaluates"),
        );
    });
    thirstyflops_core::batch::set_enabled(true);
    let batched_sweep_ns = median_ns(5, || {
        std::hint::black_box(
            thirstyflops_scenario::evaluate_sweep(&sweep).expect("shipped sweep evaluates"),
        );
    });

    // A paper-shaped warmup for the hit ratios: the four Table 1 systems
    // plus one repeat each (rank-endpoint shape).
    let before = simcache::stats();
    for id in SystemId::PAPER {
        std::hint::black_box(SystemYear::simulate(id, 4242));
    }
    for id in SystemId::PAPER {
        std::hint::black_box(SystemYear::simulate(id, 4242));
    }
    let after = simcache::stats();
    let year_hits = after.system_years.hits - before.system_years.hits;
    let year_misses = after.system_years.misses - before.system_years.misses;
    let grid_hits = after.grid_years.hits - before.grid_years.hits;
    let grid_misses = after.grid_years.misses - before.grid_years.misses;
    let ratio = |h: u64, m: u64| {
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    };

    let current = format!(
        "{{\"cold_simulate_ns\": {cold_ns}, \
         \"cold_stages\": {{{cold_stages}}}, \
         \"warm_simulate_ns\": {warm_ns}, \
         \"grid_year_ns\": {grid_ns}, \"scenario_sweep_ns\": {sweep_ns}, \
         \"batched_sweep_ns\": {batched_sweep_ns}, \
         \"trace_overhead\": {{\"off_ns\": {trace_off_ns}, \"on_ns\": {trace_on_ns}, \
         \"sampled_ns\": {trace_sampled_ns}}}, \
         \"scalar_over_batched\": {:.2}, \
         \"warmup_year_hit_ratio\": {:.4}, \
         \"warmup_grid_hit_ratio\": {:.4}, \"cold_over_warm\": {:.1}}}",
        sweep_ns as f64 / batched_sweep_ns.max(1) as f64,
        ratio(year_hits, year_misses),
        ratio(grid_hits, grid_misses),
        cold_ns as f64 / warm_ns.max(1) as f64,
    );

    // Repo root: two levels above this crate's manifest.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels under the repo root")
        .to_path_buf();
    let out_path = root.join("BENCH_simulate.json");
    // First ever run: today's numbers become the baseline too.
    let baseline = previous_baseline(&out_path).unwrap_or_else(|| current.clone());

    let report = format!(
        "{{\n  \"note\": \"medians of the serial instruction path (1-CPU container); \
         see docs/PERFORMANCE.md\",\n  \"unit\": \"nanoseconds\",\n  \"baseline\": \
         {baseline},\n  \"current\": {current}\n}}\n"
    );
    // Validate before writing so a formatting bug can't corrupt the
    // tracked file.
    let parsed: serde::Value = serde_json::from_str(&report).expect("report is valid JSON");
    drop(parsed);
    std::fs::write(&out_path, &report).expect("BENCH_simulate.json writes");
    println!("{report}");
    println!("wrote {}", out_path.display());
}
