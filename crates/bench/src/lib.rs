//! Benchmark support: shared inputs for the Criterion benches.
//!
//! The benches live in `benches/`:
//!
//! * `paper_artifacts` — regenerates every paper table/figure
//!   (Fig. 1–14, Tables 1–3) and measures regeneration cost;
//! * `models` — core model evaluation throughput (embodied, operational,
//!   intensity, scarcity, withdrawal);
//! * `timeseries_ops` — the dataframe substrate's kernels;
//! * `miniamr_scaling` — strong scaling of the AMR stencil kernel over
//!   rayon thread counts;
//! * `scheduling` — start-time ranking, geo balancing, water capping.

#![forbid(unsafe_code)]

use thirstyflops_catalog::SystemId;
use thirstyflops_core::SystemYear;

/// A cheap-but-realistic simulated year (Polaris is the smallest paper
/// system, so its trace/cluster simulation is the fastest). Memoized —
/// every bench suite in the process shares one `Arc`d copy.
pub fn small_system_year() -> std::sync::Arc<SystemYear> {
    SystemYear::simulate(SystemId::Polaris, 77)
}
