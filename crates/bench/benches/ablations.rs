//! Design-choice ablations called out in DESIGN.md:
//!
//! 1. **Accounting granularity** — operational water from hourly series
//!    vs monthly means vs annual means (the covariance term the paper's
//!    hourly accounting captures);
//! 2. **Scheduler policy** — EASY backfill vs plain FCFS on the same
//!    trace;
//! 3. **Scarcity form** — split direct/indirect WSI vs uniform Eq. 9.
//!
//! Criterion measures the cost of each alternative; the accompanying
//! integration tests (`tests/ablations.rs` at the workspace root) assert
//! the accuracy deltas.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use thirstyflops_bench::small_system_year;
use thirstyflops_core::{OperationalBreakdown, ScarcityAdjustment, WaterIntensity};
use thirstyflops_units::{KilowattHours, LitersPerKilowattHour, WaterScarcityIndex};
use thirstyflops_workload::{ClusterSim, TraceConfig, TraceGenerator};

fn bench_accounting_granularity(c: &mut Criterion) {
    let year = small_system_year();
    let mut group = c.benchmark_group("accounting_granularity");
    group.bench_function("hourly", |b| {
        b.iter(|| {
            black_box(OperationalBreakdown::from_series(
                &year.energy,
                &year.wue,
                year.spec.pue,
                &year.ewf,
            ))
        })
    });
    group.bench_function("monthly", |b| {
        b.iter(|| {
            let e = year.energy.monthly_sum();
            let wue = year.wue.monthly_mean();
            let ewf = year.ewf.monthly_mean();
            let mut direct = 0.0;
            let mut indirect = 0.0;
            for m in thirstyflops_timeseries::Month::ALL {
                direct += e.get(m) * wue.get(m);
                indirect += e.get(m) * year.spec.pue.value() * ewf.get(m);
            }
            black_box((direct, indirect))
        })
    });
    group.bench_function("annual", |b| {
        b.iter(|| {
            black_box(OperationalBreakdown::from_totals(
                KilowattHours::new(year.energy.total()),
                LitersPerKilowattHour::new(year.wue.mean()),
                year.spec.pue,
                LitersPerKilowattHour::new(year.ewf.mean()),
            ))
        })
    });
    group.finish();
}

fn bench_backfill_vs_fcfs(c: &mut Criterion) {
    let cfg = TraceConfig {
        cluster_nodes: 512,
        target_utilization: 0.8,
        mean_duration_hours: 6.0,
        mean_width_fraction: 0.04,
        seed: 17,
    };
    let jobs = TraceGenerator::new(cfg).unwrap().generate_year();
    let mut group = c.benchmark_group("scheduler_policy");
    group.sample_size(10);
    group.bench_function("easy_backfill", |b| {
        b.iter(|| black_box(ClusterSim::new(512).unwrap().simulate_year(&jobs)))
    });
    group.bench_function("plain_fcfs", |b| {
        b.iter(|| {
            black_box(
                ClusterSim::with_backfill(512, false)
                    .unwrap()
                    .simulate_year(&jobs),
            )
        })
    });
    group.finish();
}

fn bench_scarcity_form(c: &mut Criterion) {
    let wi = WaterIntensity::new(
        LitersPerKilowattHour::new(3.5),
        thirstyflops_units::Pue::new(1.65).unwrap(),
        LitersPerKilowattHour::new(1.9),
    );
    let split = ScarcityAdjustment {
        direct_wsi: WaterScarcityIndex::new(0.55).unwrap(),
        indirect_wsi: WaterScarcityIndex::new(0.51).unwrap(),
    };
    let uniform = WaterScarcityIndex::new(0.55).unwrap();
    let mut group = c.benchmark_group("scarcity_form");
    group.bench_function("split_wsi", |b| {
        b.iter(|| black_box(split.adjust(black_box(wi))))
    });
    group.bench_function("uniform_wsi", |b| {
        b.iter(|| black_box(ScarcityAdjustment::adjust_uniform(black_box(wi), uniform)))
    });
    group.finish();
}

fn bench_amr_vs_uniform(c: &mut Criterion) {
    use thirstyflops_workload::miniamr::{MiniAmr, MiniAmrConfig};
    let cfg = MiniAmrConfig {
        base_grid: 2,
        block_cells: 8,
        max_level: 2,
        steps: 6,
        regrid_every: 3,
        sphere_radius: 0.2,
        sphere_orbits: 0.5,
        alpha: 0.1,
    };
    let mut group = c.benchmark_group("amr_vs_uniform");
    group.sample_size(10);
    group.bench_function("adaptive", |b| {
        b.iter(|| black_box(MiniAmr::new(cfg.clone()).unwrap().run()))
    });
    group.bench_function("uniform", |b| {
        b.iter(|| black_box(MiniAmr::new_uniform(cfg.clone()).unwrap().run()))
    });
    group.finish();
}

criterion_group!(
    ablations,
    bench_accounting_granularity,
    bench_backfill_vs_fcfs,
    bench_scarcity_form,
    bench_amr_vs_uniform
);
criterion_main!(ablations);
