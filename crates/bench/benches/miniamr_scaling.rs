//! Strong scaling of the miniAMR-like kernel across rayon thread counts
//! (the Fig. 13 workload).
//!
//! With the chunked scoped-thread executor behind the rayon shim, the
//! per-block ghost-gather and stencil-update phases genuinely fan out,
//! so wall-clock time should drop with the thread count (up to the
//! machine's core count) while every reported checksum stays
//! bit-identical — compare the 1-thread and 4-thread rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use thirstyflops_workload::miniamr::{run_with_threads, MiniAmrConfig};

fn config() -> MiniAmrConfig {
    MiniAmrConfig {
        base_grid: 4,
        block_cells: 8,
        max_level: 2,
        steps: 10,
        regrid_every: 5,
        sphere_radius: 0.18,
        sphere_orbits: 0.5,
        alpha: 0.1,
    }
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("miniamr_strong_scaling");
    group.sample_size(10);
    // Measure 1/2/4/8 workers everywhere (oversubscribed counts on small
    // machines are still informative: they bound the scheduling overhead).
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(run_with_threads(config(), threads).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_refinement_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("miniamr_refinement_depth");
    group.sample_size(10);
    for level in [0u32, 1, 2] {
        let mut cfg = config();
        cfg.max_level = level;
        cfg.steps = 5;
        group.bench_with_input(BenchmarkId::from_parameter(level), &cfg, |b, cfg| {
            b.iter(|| black_box(run_with_threads(cfg.clone(), 0).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(miniamr, bench_scaling, bench_refinement_depth);
criterion_main!(miniamr);
