//! Kernels of the timeseries/dataframe substrate over full 8760-hour
//! years.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use thirstyflops_timeseries::{stats, HourlySeries};

fn series() -> (HourlySeries, HourlySeries) {
    let a = HourlySeries::from_fn(|h| (h as f64 * 0.37).sin() * 3.0 + 5.0);
    let b = HourlySeries::from_fn(|h| (h as f64 * 0.11).cos() * 2.0 + 4.0);
    (a, b)
}

fn bench_pointwise(c: &mut Criterion) {
    let (a, b) = series();
    c.bench_function("hourly_zip_mul_year", |bch| {
        bch.iter(|| black_box(a.mul(&b)))
    });
    c.bench_function("hourly_add_scale_year", |bch| {
        bch.iter(|| black_box(a.add(&b.scale(1.65))))
    });
    // The fused/buffer-reuse kernels the WI/operational hot paths use
    // (docs/PERFORMANCE.md) vs their unfused pairs above.
    c.bench_function("hourly_add_scaled_fused_year", |bch| {
        bch.iter(|| black_box(a.add_scaled(&b, 1.65)))
    });
    c.bench_function("hourly_dot_year", |bch| bch.iter(|| black_box(a.dot(&b))));
    let mut scratch = a.clone();
    c.bench_function("hourly_add_scaled_into_reused_buffer", |bch| {
        bch.iter(|| {
            a.add_scaled_into(&b, 1.65, &mut scratch);
            black_box(scratch.get(0));
        })
    });
}

fn bench_resample(c: &mut Criterion) {
    let (a, _) = series();
    c.bench_function("monthly_mean_resample", |bch| {
        bch.iter(|| black_box(a.monthly_mean()))
    });
    c.bench_function("monthly_sum_resample", |bch| {
        bch.iter(|| black_box(a.monthly_sum()))
    });
}

fn bench_stats(c: &mut Criterion) {
    let (a, b) = series();
    c.bench_function("minmax_normalize_year", |bch| {
        bch.iter(|| black_box(a.normalized()))
    });
    c.bench_function("pearson_year", |bch| {
        bch.iter(|| black_box(stats::pearson(a.values(), b.values()).unwrap()))
    });
    c.bench_function("spearman_year", |bch| {
        bch.iter(|| black_box(stats::spearman(a.values(), b.values()).unwrap()))
    });
    c.bench_function("distribution_summary_year", |bch| {
        bch.iter(|| black_box(a.summary()))
    });
}

fn bench_window(c: &mut Criterion) {
    let (a, _) = series();
    c.bench_function("wrapping_window_mean_24h_x365", |bch| {
        bch.iter(|| {
            let mut acc = 0.0;
            for day in 0..365 {
                acc += a.wrapping_window_mean(day * 24, 24);
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    ts,
    bench_pointwise,
    bench_resample,
    bench_stats,
    bench_window
);
criterion_main!(ts);
