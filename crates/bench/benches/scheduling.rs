//! Water-aware scheduling layer benches: start-time ranking, geo
//! balancing over a year, water-cap dispatch, plus the workload
//! substrate's trace + cluster simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use thirstyflops_bench::small_system_year;
use thirstyflops_grid::EnergySource;
use thirstyflops_scheduler::capping::SourceOffer;
use thirstyflops_scheduler::{
    GeoBalancer, MultiObjective, Policy, SiteSeries, StartTimeOptimizer, WaterCapPlanner,
};
use thirstyflops_units::{KilowattHours, Liters, LitersPerKilowattHour, Pue};
use thirstyflops_workload::{ClusterSim, TraceConfig, TraceGenerator};

fn bench_starttime(c: &mut Criterion) {
    let year = small_system_year();
    let opt = StartTimeOptimizer::new(year.water_intensity(), year.carbon.clone(), year.spec.pue);
    let candidates: Vec<usize> = (0..24).map(|i| 4200 + i).collect();
    c.bench_function("starttime_rank_24_candidates", |b| {
        b.iter(|| {
            black_box(
                opt.evaluate(&candidates, 3, KilowattHours::new(1000.0))
                    .unwrap(),
            )
        })
    });
}

fn bench_geo(c: &mut Criterion) {
    let year = small_system_year();
    // Clone the same site with perturbed intensities to get three sites
    // without paying three cluster simulations.
    let base = SiteSeries::from_year(&year);
    let mut b2 = base.clone();
    b2.wi = b2.wi.scale(0.6);
    b2.effective_ci = b2.effective_ci.scale(1.8);
    let mut b3 = base.clone();
    b3.wi = b3.wi.scale(1.4);
    b3.effective_ci = b3.effective_ci.scale(0.5);
    let balancer = GeoBalancer::new(vec![base, b2, b3]).unwrap();
    let mut group = c.benchmark_group("geo_balancer_year");
    group.sample_size(10);
    for (name, policy) in [
        ("water_only", Policy::WaterOnly),
        ("carbon_only", Policy::CarbonOnly),
        (
            "co_optimize",
            Policy::CoOptimize(MultiObjective::new(0.0, 0.5, 0.5).unwrap()),
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(balancer.run_year(100.0, policy)))
        });
    }
    group.finish();
}

fn bench_capping(c: &mut Criterion) {
    let planner = WaterCapPlanner::new(Pue::new(1.2).unwrap());
    let offers = vec![
        SourceOffer {
            source: EnergySource::Hydro,
            capacity_kwh: 1000.0,
        },
        SourceOffer {
            source: EnergySource::Nuclear,
            capacity_kwh: 1000.0,
        },
        SourceOffer {
            source: EnergySource::Gas,
            capacity_kwh: 1000.0,
        },
        SourceOffer {
            source: EnergySource::Wind,
            capacity_kwh: 200.0,
        },
        SourceOffer {
            source: EnergySource::Coal,
            capacity_kwh: 800.0,
        },
        SourceOffer {
            source: EnergySource::Solar,
            capacity_kwh: 300.0,
        },
    ];
    c.bench_function("water_cap_dispatch", |b| {
        b.iter(|| {
            black_box(
                planner
                    .dispatch(
                        KilowattHours::new(1500.0),
                        LitersPerKilowattHour::new(2.5),
                        &offers,
                        Liters::new(7000.0),
                    )
                    .unwrap(),
            )
        })
    });
}

fn bench_trace_and_cluster(c: &mut Criterion) {
    let cfg = TraceConfig {
        cluster_nodes: 560,
        target_utilization: 0.7,
        mean_duration_hours: 5.0,
        mean_width_fraction: 0.03,
        seed: 9,
    };
    let jobs = TraceGenerator::new(cfg.clone()).unwrap().generate_year();
    let mut group = c.benchmark_group("workload_substrate");
    group.sample_size(10);
    group.bench_function("trace_generate_year", |b| {
        b.iter(|| black_box(TraceGenerator::new(cfg.clone()).unwrap().generate_year()))
    });
    group.bench_function("cluster_sim_year", |b| {
        b.iter(|| black_box(ClusterSim::new(560).unwrap().simulate_year(&jobs)))
    });
    group.finish();
}

criterion_group!(
    sched,
    bench_starttime,
    bench_geo,
    bench_capping,
    bench_trace_and_cluster
);
criterion_main!(sched);
