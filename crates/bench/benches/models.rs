//! Core model evaluation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use thirstyflops_bench::small_system_year;
use thirstyflops_catalog::{SystemId, SystemSpec};
use thirstyflops_core::withdrawal::{withdrawal_report, WithdrawalParams};
use thirstyflops_core::{
    AnnualReport, EmbodiedBreakdown, OperationalBreakdown, RatioGrid, ScarcityAdjustment,
    WaterIntensity,
};
use thirstyflops_units::{Fraction, Liters, LitersPerKilowattHour, Pue, WaterScarcityIndex};

fn bench_embodied(c: &mut Criterion) {
    let specs: Vec<SystemSpec> = SystemId::ALL
        .iter()
        .map(|&id| SystemSpec::reference(id))
        .collect();
    c.bench_function("embodied_breakdown_6_systems", |b| {
        b.iter(|| {
            for spec in &specs {
                black_box(EmbodiedBreakdown::for_system(spec));
            }
        })
    });
}

fn bench_operational_series(c: &mut Criterion) {
    let year = small_system_year();
    c.bench_function("operational_from_hourly_series", |b| {
        b.iter(|| {
            black_box(OperationalBreakdown::from_series(
                &year.energy,
                &year.wue,
                year.spec.pue,
                &year.ewf,
            ))
        })
    });
}

fn bench_intensity_and_scarcity(c: &mut Criterion) {
    let year = small_system_year();
    c.bench_function("hourly_water_intensity_year", |b| {
        b.iter(|| black_box(year.water_intensity()))
    });
    let wi = WaterIntensity::new(
        LitersPerKilowattHour::new(3.5),
        Pue::new(1.65).unwrap(),
        LitersPerKilowattHour::new(1.9),
    );
    let adj = ScarcityAdjustment::uniform(WaterScarcityIndex::new(0.55).unwrap());
    c.bench_function("scarcity_adjust_point", |b| {
        b.iter(|| black_box(adj.adjust(black_box(wi))))
    });
}

fn bench_annual_report(c: &mut Criterion) {
    let year = small_system_year();
    c.bench_function("annual_report_from_year", |b| {
        b.iter(|| black_box(AnnualReport::from_year(&year)))
    });
}

fn bench_ratio_grid(c: &mut Criterion) {
    c.bench_function("fig04_ratio_grid_64x64", |b| {
        b.iter(|| black_box(RatioGrid::sweep(Liters::new(5e7), Liters::new(1e9), 5.0, 64).unwrap()))
    });
}

fn bench_withdrawal(c: &mut Criterion) {
    let params = WithdrawalParams {
        actual_discharge: Liters::new(2e8),
        outfall_factor: 1.0,
        pollutant_factors: vec![1.08, 1.03],
        reuse_rate: Fraction::new(0.3).unwrap(),
        potable_fraction: Fraction::new(0.7).unwrap(),
        s_potable: 0.6,
        s_non_potable: 0.25,
    };
    c.bench_function("withdrawal_report", |b| {
        b.iter(|| black_box(withdrawal_report(Liters::new(1e8), &params).unwrap()))
    });
}

criterion_group! {
    name = models;
    config = Criterion::default().sample_size(20);
    targets =
        bench_embodied, bench_operational_series, bench_intensity_and_scarcity,
        bench_annual_report, bench_ratio_grid, bench_withdrawal
}
criterion_main!(models);
