//! One bench per paper artifact: regenerating every table and figure.
//!
//! The shared simulation context (four system-years) is built once on
//! first touch; the per-artifact numbers then measure the analysis cost
//! itself. Run `cargo bench -p thirstyflops-bench --bench paper_artifacts`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use thirstyflops_experiments as exp;

macro_rules! artifact_bench {
    ($fn_name:ident, $exp:ident) => {
        fn $fn_name(c: &mut Criterion) {
            // Warm the shared context so the first sample isn't an outlier.
            exp::context::paper_years();
            c.bench_function(stringify!($exp), |b| b.iter(|| black_box(exp::$exp())));
        }
    };
}

artifact_bench!(bench_fig01, fig01);
artifact_bench!(bench_table01, table01);
artifact_bench!(bench_table02, table02);
artifact_bench!(bench_fig03, fig03);
artifact_bench!(bench_fig04, fig04);
artifact_bench!(bench_fig05, fig05);
artifact_bench!(bench_fig06, fig06);
artifact_bench!(bench_fig07, fig07);
artifact_bench!(bench_fig08, fig08);
artifact_bench!(bench_fig09, fig09);
artifact_bench!(bench_fig10, fig10);
artifact_bench!(bench_fig11, fig11);
artifact_bench!(bench_fig12, fig12);
artifact_bench!(bench_fig13, fig13);
artifact_bench!(bench_fig14, fig14);
artifact_bench!(bench_table03, table03);

/// The batch sweep (`experiments --all`): all 21 regenerators through the
/// parallel fan-out, at one worker and at the machine's parallelism.
fn bench_batch_sweep(c: &mut Criterion) {
    exp::context::paper_years();
    let mut group = c.benchmark_group("experiments_batch");
    group.sample_size(10);
    let machine = std::thread::available_parallelism().map_or(1, |n| n.get());
    for threads in [1, machine] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool builds");
        group.bench_function(format!("{threads}_threads"), |b| {
            b.iter(|| pool.install(|| black_box(exp::all())))
        });
        if machine == 1 {
            break;
        }
    }
    group.finish();
}

criterion_group! {
    name = artifacts;
    config = Criterion::default().sample_size(10);
    targets =
        bench_fig01, bench_table01, bench_table02, bench_fig03, bench_fig04,
        bench_fig05, bench_fig06, bench_fig07, bench_fig08, bench_fig09,
        bench_fig10, bench_fig11, bench_fig12, bench_fig13, bench_fig14,
        bench_table03, bench_batch_sweep
}
criterion_main!(artifacts);
