//! Calibrated climate presets for the paper's four HPC sites.
//!
//! Climate normals are approximated from public station data for each
//! city; the WUE slope scale is the calibration knob used to land each
//! system's direct/indirect split near the paper's Fig. 7 values.

use crate::climate::{SiteClimate, SiteClimateConfig};
use crate::wue::WueModel;

/// A named, calibrated site climate + WUE model pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ClimatePreset {
    /// Bologna, Italy (Marconi100 / CINECA). Humid subtropical–continental
    /// transition: hot summers, foggy mild winters.
    Bologna,
    /// Kobe, Japan (Fugaku / R-CCS). Humid subtropical: very humid, hot
    /// summers — high wet-bulb.
    Kobe,
    /// Lemont, Illinois, US (Polaris / Argonne). Continental: cold winters
    /// (long free-cooling season), warm humid summers.
    Lemont,
    /// Oak Ridge, Tennessee, US (Frontier / ORNL). Humid subtropical:
    /// long warm season.
    OakRidge,
    /// Livermore, California, US (§6 extension: El Capitan / LLNL).
    /// Mediterranean: dry summers, low wet-bulb despite heat.
    Livermore,
}

impl ClimatePreset {
    /// The paper's four sites, in Table 1 order.
    pub const ALL: [ClimatePreset; 4] = [
        ClimatePreset::Bologna,
        ClimatePreset::Kobe,
        ClimatePreset::Lemont,
        ClimatePreset::OakRidge,
    ];

    /// All presets including §6 extension sites.
    pub const ALL_WITH_EXTENSIONS: [ClimatePreset; 5] = [
        ClimatePreset::Bologna,
        ClimatePreset::Kobe,
        ClimatePreset::Lemont,
        ClimatePreset::OakRidge,
        ClimatePreset::Livermore,
    ];

    /// The site's climate configuration.
    pub fn climate_config(self) -> SiteClimateConfig {
        match self {
            ClimatePreset::Bologna => SiteClimateConfig {
                name: "Bologna, Italy".into(),
                mean_temp_c: 14.5,
                seasonal_amp_c: 10.5,
                diurnal_amp_c: 4.5,
                hottest_day: 203, // late July
                mean_rh: 72.0,
                seasonal_rh_amp: -6.0, // drier summers
                diurnal_rh_amp: 12.0,
                noise_std_c: 2.4,
                seed: 0x0b01_0001,
            },
            ClimatePreset::Kobe => SiteClimateConfig {
                name: "Kobe, Japan".into(),
                mean_temp_c: 16.8,
                seasonal_amp_c: 10.8,
                diurnal_amp_c: 3.2,
                hottest_day: 215, // early August
                mean_rh: 68.0,
                seasonal_rh_amp: 8.0, // monsoon-wet summers
                diurnal_rh_amp: 9.0,
                noise_std_c: 2.0,
                seed: 0x0b01_0002,
            },
            ClimatePreset::Lemont => SiteClimateConfig {
                name: "Lemont, Illinois, US".into(),
                mean_temp_c: 10.2,
                seasonal_amp_c: 14.0,
                diurnal_amp_c: 5.0,
                hottest_day: 199, // mid July
                mean_rh: 70.0,
                seasonal_rh_amp: 2.0,
                diurnal_rh_amp: 13.0,
                noise_std_c: 3.2,
                seed: 0x0b01_0003,
            },
            ClimatePreset::OakRidge => SiteClimateConfig {
                name: "Oak Ridge, Tennessee, US".into(),
                mean_temp_c: 14.8,
                seasonal_amp_c: 10.3,
                diurnal_amp_c: 5.8,
                hottest_day: 201,
                mean_rh: 74.0,
                seasonal_rh_amp: 3.0,
                diurnal_rh_amp: 13.0,
                noise_std_c: 2.6,
                seed: 0x0b01_0004,
            },
            ClimatePreset::Livermore => SiteClimateConfig {
                name: "Livermore, California, US".into(),
                mean_temp_c: 15.2,
                seasonal_amp_c: 8.0,
                diurnal_amp_c: 7.5,
                hottest_day: 205,
                mean_rh: 62.0,
                seasonal_rh_amp: -14.0, // very dry summers
                diurnal_rh_amp: 14.0,
                noise_std_c: 2.0,
                seed: 0x0b01_0005,
            },
        }
    }

    /// The site's calibrated WUE model.
    ///
    /// Slope scales are the Fig. 7 calibration: they set each site's
    /// annual-mean WUE so the direct/indirect split lands near the paper's
    /// reported shares (Marconi 37/63, Fugaku 58/42, Polaris 53/47,
    /// Frontier 54/46) given the site's grid EWF and PUE.
    pub fn wue_model(self) -> WueModel {
        match self {
            ClimatePreset::Bologna => WueModel::scaled(1.35),
            ClimatePreset::Kobe => WueModel::scaled(1.46),
            ClimatePreset::Lemont => WueModel::scaled(1.75),
            ClimatePreset::OakRidge => WueModel::scaled(1.72),
            ClimatePreset::Livermore => WueModel::scaled(1.20),
        }
    }

    /// Generates the simulated year for this preset.
    pub fn generate(self) -> SiteClimate {
        SiteClimate::generate(self.climate_config()).expect("presets are valid by construction")
    }

    /// Short site name.
    pub fn city(self) -> &'static str {
        match self {
            ClimatePreset::Bologna => "Bologna",
            ClimatePreset::Kobe => "Kobe",
            ClimatePreset::Lemont => "Lemont",
            ClimatePreset::OakRidge => "Oak Ridge",
            ClimatePreset::Livermore => "Livermore",
        }
    }

    /// Canonical lowercase token, used in scenario spec files
    /// (`"climate": {"preset": "oakridge"}` — see `docs/SCENARIOS.md`).
    /// Every slug parses back via [`FromStr`](core::str::FromStr).
    pub fn slug(self) -> &'static str {
        match self {
            ClimatePreset::Bologna => "bologna",
            ClimatePreset::Kobe => "kobe",
            ClimatePreset::Lemont => "lemont",
            ClimatePreset::OakRidge => "oakridge",
            ClimatePreset::Livermore => "livermore",
        }
    }
}

/// Error for [`ClimatePreset::from_str`](core::str::FromStr): the input
/// named no calibrated preset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseClimatePresetError {
    input: String,
}

impl core::fmt::Display for ParseClimatePresetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "unknown climate preset {:?} (known: bologna, kobe, lemont, oakridge, livermore)",
            self.input
        )
    }
}

impl std::error::Error for ParseClimatePresetError {}

impl core::str::FromStr for ClimatePreset {
    type Err = ParseClimatePresetError;

    /// Parses a preset name: the canonical slug or the city name,
    /// case-insensitive (`"Oak Ridge"`, `"oak-ridge"`, and `"oakridge"`
    /// all resolve).
    fn from_str(s: &str) -> Result<ClimatePreset, ParseClimatePresetError> {
        match s.to_ascii_lowercase().as_str() {
            "bologna" => Ok(ClimatePreset::Bologna),
            "kobe" => Ok(ClimatePreset::Kobe),
            "lemont" => Ok(ClimatePreset::Lemont),
            "oakridge" | "oak-ridge" | "oak_ridge" | "oak ridge" => Ok(ClimatePreset::OakRidge),
            "livermore" => Ok(ClimatePreset::Livermore),
            _ => Err(ParseClimatePresetError {
                input: s.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_generate_valid_years() {
        for preset in ClimatePreset::ALL {
            let climate = preset.generate();
            assert_eq!(climate.temperature().len(), 8760);
            assert!(climate.humidity().min() >= 0.0);
            assert!(climate.humidity().max() <= 100.0);
            preset.wue_model().validate().unwrap();
        }
    }

    #[test]
    fn lemont_has_coldest_winter() {
        // Continental Chicago-area winters are colder than the other three
        // sites — the long free-cooling season the paper's WUE discussion
        // implies.
        let january_means: Vec<(ClimatePreset, f64)> = ClimatePreset::ALL
            .iter()
            .map(|&p| {
                let c = p.generate();
                let m = c.temperature().monthly_mean();
                (p, m.get(thirstyflops_timeseries::Month::January))
            })
            .collect();
        let lemont = january_means
            .iter()
            .find(|(p, _)| *p == ClimatePreset::Lemont)
            .unwrap()
            .1;
        for (p, t) in &january_means {
            if *p != ClimatePreset::Lemont {
                assert!(lemont < *t, "Lemont January {lemont} vs {p:?} {t}");
            }
        }
    }

    #[test]
    fn kobe_summer_wet_bulb_is_highest() {
        let summer_twb: Vec<(ClimatePreset, f64)> = ClimatePreset::ALL
            .iter()
            .map(|&p| {
                let c = p.generate();
                (p, c.wet_bulb().monthly_mean().summer_mean())
            })
            .collect();
        let kobe = summer_twb
            .iter()
            .find(|(p, _)| *p == ClimatePreset::Kobe)
            .unwrap()
            .1;
        for (p, t) in &summer_twb {
            if *p != ClimatePreset::Kobe {
                assert!(kobe >= *t - 1.0, "Kobe {kobe} vs {p:?} {t}");
            }
        }
    }

    #[test]
    fn city_names() {
        assert_eq!(ClimatePreset::Bologna.city(), "Bologna");
        assert_eq!(ClimatePreset::OakRidge.city(), "Oak Ridge");
    }

    #[test]
    fn every_slug_round_trips_through_from_str() {
        for preset in ClimatePreset::ALL_WITH_EXTENSIONS {
            assert_eq!(preset.slug().parse::<ClimatePreset>(), Ok(preset));
        }
        assert_eq!(
            "Oak Ridge".parse::<ClimatePreset>(),
            Ok(ClimatePreset::OakRidge)
        );
        assert!("atlantis".parse::<ClimatePreset>().is_err());
    }
}
