//! Site climate simulation and the water-usage-effectiveness (WUE) model.
//!
//! The paper's direct water footprint (Eq. 6) is `W_direct = E · WUE` with
//! `WUE = f(air temperature, humidity)` via the outside **wet-bulb
//! temperature**. The original study consumes live weather feeds
//! (meteologix); this crate substitutes a calibrated synthetic climate per
//! site — seasonal and diurnal temperature/humidity cycles plus weather
//! noise — and implements:
//!
//! * [`stull::wet_bulb`] — the exact Stull (2011) wet-bulb regression the
//!   paper cites;
//! * [`SiteClimate`] — a seeded hourly climate generator for a site;
//! * [`WueModel`] — wet-bulb → WUE with a free-cooling cutoff (favorable
//!   climates cool with outside air and consume almost no water) and a
//!   tower-capacity ceiling;
//! * [`ClimatePreset`] — calibrated presets for the paper's four sites
//!   (Bologna, Kobe, Lemont, Oak Ridge).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod climate;
mod presets;
pub mod stull;
mod wue;

pub use climate::{HourlyWeather, SiteClimate, SiteClimateConfig};
pub use presets::{ClimatePreset, ParseClimatePresetError};
pub use wue::WueModel;
