//! Stull (2011) wet-bulb temperature from relative humidity and air
//! temperature.
//!
//! Roland Stull, *"Wet-bulb temperature from relative humidity and air
//! temperature"*, J. Appl. Meteor. Climatol. 50(11), 2267–2269 — the
//! formula the paper cites for Eq. 6's `f(air temperature, humidity)`.
//!
//! The regression is valid for relative humidities between about 5 % and
//! 99 % and air temperatures between −20 °C and 50 °C (at standard sea
//! level pressure); [`wet_bulb`] clamps its inputs into that envelope, and
//! [`wet_bulb_unchecked`] evaluates the raw polynomial.

use thirstyflops_units::{Celsius, RelativeHumidity};

/// Valid dry-bulb temperature range of the Stull regression, °C.
pub const VALID_TEMP_RANGE: (f64, f64) = (-20.0, 50.0);

/// Valid relative-humidity range of the Stull regression, percent.
pub const VALID_RH_RANGE: (f64, f64) = (5.0, 99.0);

/// Wet-bulb temperature via Stull's regression, with inputs clamped into
/// the formula's validity envelope.
///
/// ```
/// use thirstyflops_units::{Celsius, RelativeHumidity};
/// use thirstyflops_weather::stull::wet_bulb;
///
/// // Stull's published example: 20 °C at 50 % RH → ≈ 13.7 °C.
/// let tw = wet_bulb(Celsius::new(20.0), RelativeHumidity::new(50.0).unwrap());
/// assert!((tw.value() - 13.7).abs() < 0.1);
/// ```
pub fn wet_bulb(temperature: Celsius, humidity: RelativeHumidity) -> Celsius {
    let t = temperature
        .value()
        .clamp(VALID_TEMP_RANGE.0, VALID_TEMP_RANGE.1);
    let rh = humidity.percent().clamp(VALID_RH_RANGE.0, VALID_RH_RANGE.1);
    wet_bulb_unchecked(t, rh)
}

/// The raw Stull (2011) regression. `t` in °C, `rh` in percent.
///
/// T_w = T·atan(0.151977·√(RH + 8.313659)) + atan(T + RH)
///       − atan(RH − 1.676331) + 0.00391838·RH^{3/2}·atan(0.023101·RH)
///       − 4.686035
pub fn wet_bulb_unchecked(t: f64, rh: f64) -> Celsius {
    let tw = t * (0.151_977 * (rh + 8.313_659).sqrt()).atan() + (t + rh).atan()
        - (rh - 1.676_331).atan()
        + 0.003_918_38 * rh.powf(1.5) * (0.023_101 * rh).atan()
        - 4.686_035;
    Celsius::new(tw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn twb(t: f64, rh: f64) -> f64 {
        wet_bulb(Celsius::new(t), RelativeHumidity::clamped(rh)).value()
    }

    #[test]
    fn matches_published_example() {
        // Stull's paper gives T = 20 °C, RH = 50 % → T_w ≈ 13.7 °C.
        let tw = twb(20.0, 50.0);
        assert!((tw - 13.7).abs() < 0.1, "got {tw}");
    }

    #[test]
    fn saturated_air_wet_bulb_approaches_dry_bulb() {
        // At ~99 % RH the wet-bulb temperature is within ~1 °C of dry-bulb.
        for t in [0.0, 10.0, 25.0, 35.0] {
            let tw = twb(t, 99.0);
            assert!((t - tw).abs() < 1.2, "t={t} tw={tw}");
        }
    }

    #[test]
    fn wet_bulb_below_dry_bulb() {
        for t in [5.0, 15.0, 25.0, 35.0, 45.0] {
            for rh in [10.0, 30.0, 50.0, 70.0, 90.0] {
                let tw = twb(t, rh);
                assert!(tw <= t + 0.6, "t={t} rh={rh} tw={tw}");
            }
        }
    }

    #[test]
    fn monotone_in_humidity() {
        for t in [10.0, 20.0, 30.0] {
            let mut prev = twb(t, 5.0);
            for rh in [20.0, 40.0, 60.0, 80.0, 99.0] {
                let cur = twb(t, rh);
                assert!(cur >= prev, "t={t} rh={rh}: {cur} < {prev}");
                prev = cur;
            }
        }
    }

    #[test]
    fn monotone_in_temperature() {
        for rh in [20.0, 50.0, 80.0] {
            let mut prev = twb(-20.0, rh);
            for t in [-10.0, 0.0, 10.0, 20.0, 30.0, 40.0, 50.0] {
                let cur = twb(t, rh);
                assert!(cur > prev, "rh={rh} t={t}");
                prev = cur;
            }
        }
    }

    #[test]
    fn inputs_outside_envelope_are_clamped() {
        assert_eq!(twb(60.0, 50.0), twb(50.0, 50.0));
        assert_eq!(twb(20.0, 2.0), twb(20.0, 5.0));
        assert_eq!(twb(20.0, 100.0), twb(20.0, 99.0));
    }
}
