//! Seeded synthetic climate: hourly temperature and humidity for a site.
//!
//! The generator layers three signals the real feeds exhibit:
//!
//! 1. a **seasonal** cosine peaking at the site's hottest day;
//! 2. a **diurnal** cosine peaking mid-afternoon (humidity runs inverted —
//!    nights are more humid);
//! 3. **weather noise** — a slow AR(1) process (fronts last days, not
//!    hours) plus small hourly jitter.
//!
//! The process is fully deterministic given the seed, so every experiment
//! and test regenerates identical telemetry.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thirstyflops_timeseries::{HourlySeries, SimCalendar, HOURS_PER_DAY, HOURS_PER_YEAR};
use thirstyflops_units::{Celsius, RelativeHumidity};

use crate::stull;

/// Configuration of a site's synthetic climate.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SiteClimateConfig {
    /// Site label (e.g. "Bologna, Italy").
    pub name: String,
    /// Annual mean dry-bulb temperature, °C.
    pub mean_temp_c: f64,
    /// Amplitude of the seasonal temperature cycle, °C (half peak-to-peak).
    pub seasonal_amp_c: f64,
    /// Amplitude of the diurnal temperature cycle, °C.
    pub diurnal_amp_c: f64,
    /// Day of year (0–364) with the hottest seasonal mean.
    pub hottest_day: usize,
    /// Annual mean relative humidity, percent.
    pub mean_rh: f64,
    /// Seasonal humidity amplitude, percent (positive = more humid summer).
    pub seasonal_rh_amp: f64,
    /// Diurnal humidity amplitude, percent (applied inverted: humid nights).
    pub diurnal_rh_amp: f64,
    /// Standard deviation of the slow (multi-day) temperature noise, °C.
    pub noise_std_c: f64,
    /// RNG seed; same seed → identical year of weather.
    pub seed: u64,
}

impl SiteClimateConfig {
    /// Validates the configuration, returning a reason string on failure.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.mean_temp_c.is_finite() && (-30.0..=45.0).contains(&self.mean_temp_c)) {
            return Err(format!("mean_temp_c out of range: {}", self.mean_temp_c));
        }
        if self.seasonal_amp_c < 0.0 || self.diurnal_amp_c < 0.0 {
            return Err("temperature amplitudes must be non-negative".into());
        }
        if !(0.0..=100.0).contains(&self.mean_rh) {
            return Err(format!("mean_rh out of range: {}", self.mean_rh));
        }
        if self.hottest_day >= 365 {
            return Err(format!("hottest_day out of range: {}", self.hottest_day));
        }
        if self.noise_std_c < 0.0 {
            return Err("noise_std_c must be non-negative".into());
        }
        Ok(())
    }
}

/// One hour of weather.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HourlyWeather {
    /// Dry-bulb air temperature.
    pub temperature: Celsius,
    /// Relative humidity.
    pub humidity: RelativeHumidity,
    /// Stull wet-bulb temperature.
    pub wet_bulb: Celsius,
}

/// A simulated year of weather for one site.
#[derive(Debug, Clone)]
pub struct SiteClimate {
    config: SiteClimateConfig,
    temperature: HourlySeries,
    humidity: HourlySeries,
    wet_bulb: HourlySeries,
}

impl SiteClimate {
    /// Simulates a full year of hourly weather from the configuration.
    pub fn generate(config: SiteClimateConfig) -> Result<Self, String> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let cal = SimCalendar;

        // Slow AR(1) weather-front noise: correlation time ~3 days.
        let alpha = 1.0 - 1.0 / (3.0 * HOURS_PER_DAY as f64);
        let innovation_std = config.noise_std_c * (1.0 - alpha * alpha).sqrt();
        let mut front = 0.0f64;

        let mut temp = Vec::with_capacity(HOURS_PER_YEAR);
        let mut rh = Vec::with_capacity(HOURS_PER_YEAR);
        let mut twb = Vec::with_capacity(HOURS_PER_YEAR);

        for hour in 0..HOURS_PER_YEAR {
            let day = cal.day_of_year(hour) as f64;
            let hod = cal.hour_of_day(hour) as f64;

            let seasonal_phase = (day - config.hottest_day as f64) / 365.0 * core::f64::consts::TAU;
            let seasonal = config.seasonal_amp_c * seasonal_phase.cos();
            // Diurnal peak at 15:00 local.
            let diurnal_phase = (hod - 15.0) / 24.0 * core::f64::consts::TAU;
            let diurnal = config.diurnal_amp_c * diurnal_phase.cos();

            front = alpha * front + gaussian(&mut rng) * innovation_std;
            let jitter = gaussian(&mut rng) * 0.3;

            let t = config.mean_temp_c + seasonal + diurnal + front + jitter;

            let rh_seasonal = config.seasonal_rh_amp * seasonal_phase.cos();
            // Humidity runs opposite to the diurnal temperature cycle.
            let rh_diurnal = -config.diurnal_rh_amp * diurnal_phase.cos();
            let rh_noise = gaussian(&mut rng) * 4.0 - front * 1.5;
            let h = (config.mean_rh + rh_seasonal + rh_diurnal + rh_noise).clamp(15.0, 100.0);

            let tc = Celsius::new(t);
            let hc = RelativeHumidity::clamped(h);
            temp.push(t);
            rh.push(hc.percent());
            twb.push(stull::wet_bulb(tc, hc).value());
        }

        Ok(Self {
            config,
            temperature: HourlySeries::from_vec(temp),
            humidity: HourlySeries::from_vec(rh),
            wet_bulb: HourlySeries::from_vec(twb),
        })
    }

    /// The generating configuration.
    pub fn config(&self) -> &SiteClimateConfig {
        &self.config
    }

    /// Hourly dry-bulb temperature, °C.
    pub fn temperature(&self) -> &HourlySeries {
        &self.temperature
    }

    /// Hourly relative humidity, percent.
    pub fn humidity(&self) -> &HourlySeries {
        &self.humidity
    }

    /// Hourly Stull wet-bulb temperature, °C.
    pub fn wet_bulb(&self) -> &HourlySeries {
        &self.wet_bulb
    }

    /// The weather at a specific hour of the year.
    pub fn at(&self, hour: usize) -> HourlyWeather {
        HourlyWeather {
            temperature: Celsius::new(self.temperature.get(hour)),
            humidity: RelativeHumidity::clamped(self.humidity.get(hour)),
            wet_bulb: Celsius::new(self.wet_bulb.get(hour)),
        }
    }

    /// Failure/stress injection: returns a copy of this year with a heat
    /// wave — `delta_c` added to the dry-bulb temperature over
    /// `[start_day, start_day + days)` — and the wet-bulb series
    /// recomputed. Used to stress-test WUE, water budgets, and schedulers
    /// under the extreme events that increasingly hit real facilities.
    pub fn with_heat_wave(
        &self,
        start_day: usize,
        days: usize,
        delta_c: f64,
    ) -> Result<SiteClimate, String> {
        if start_day >= 365 || days == 0 || start_day + days > 365 {
            return Err(format!(
                "heat wave [{start_day}, {}) outside the simulated year",
                start_day + days
            ));
        }
        if !(0.0..=25.0).contains(&delta_c) {
            return Err(format!("implausible heat wave amplitude {delta_c} °C"));
        }
        let lo = start_day * 24;
        let hi = (start_day + days) * 24;
        let temperature = HourlySeries::from_fn(|h| {
            let t = self.temperature.get(h);
            if (lo..hi).contains(&h) {
                t + delta_c
            } else {
                t
            }
        });
        let wet_bulb = HourlySeries::from_fn(|h| {
            stull::wet_bulb(
                Celsius::new(temperature.get(h)),
                RelativeHumidity::clamped(self.humidity.get(h)),
            )
            .value()
        });
        Ok(SiteClimate {
            config: self.config.clone(),
            temperature,
            humidity: self.humidity.clone(),
            wet_bulb,
        })
    }
}

/// Standard normal sample via Box–Muller (rand's normal distribution lives
/// in `rand_distr`, which we avoid pulling in for one function).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use thirstyflops_timeseries::Month;

    fn test_config() -> SiteClimateConfig {
        SiteClimateConfig {
            name: "Testville".into(),
            mean_temp_c: 14.0,
            seasonal_amp_c: 10.0,
            diurnal_amp_c: 4.0,
            hottest_day: 200,
            mean_rh: 70.0,
            seasonal_rh_amp: 5.0,
            diurnal_rh_amp: 10.0,
            noise_std_c: 2.5,
            seed: 42,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SiteClimate::generate(test_config()).unwrap();
        let b = SiteClimate::generate(test_config()).unwrap();
        assert_eq!(a.temperature().values(), b.temperature().values());
        let mut other = test_config();
        other.seed = 43;
        let c = SiteClimate::generate(other).unwrap();
        assert_ne!(a.temperature().values(), c.temperature().values());
    }

    #[test]
    fn seasonal_cycle_visible_in_monthly_means() {
        let climate = SiteClimate::generate(test_config()).unwrap();
        let monthly = climate.temperature().monthly_mean();
        // Hottest day 200 falls in July.
        let hottest = monthly.argmax();
        assert!(
            matches!(hottest, Month::June | Month::July | Month::August),
            "hottest month was {hottest}"
        );
        let coldest = monthly.argmin();
        assert!(
            matches!(coldest, Month::December | Month::January | Month::February),
            "coldest month was {coldest}"
        );
        // Annual mean close to configured mean.
        assert!((climate.temperature().mean() - 14.0).abs() < 1.0);
    }

    #[test]
    fn humidity_stays_in_percent_range() {
        let climate = SiteClimate::generate(test_config()).unwrap();
        assert!(climate.humidity().min() >= 15.0);
        assert!(climate.humidity().max() <= 100.0);
    }

    #[test]
    fn wet_bulb_below_dry_bulb_on_average() {
        let climate = SiteClimate::generate(test_config()).unwrap();
        assert!(climate.wet_bulb().mean() < climate.temperature().mean());
        // Pointwise (allowing the regression's small error near saturation).
        for h in (0..HOURS_PER_YEAR).step_by(97) {
            let w = climate.at(h);
            assert!(w.wet_bulb.value() <= w.temperature.value() + 1.2);
        }
    }

    #[test]
    fn diurnal_cycle_peaks_afternoon() {
        let climate = SiteClimate::generate(test_config()).unwrap();
        // Average temperature by hour-of-day over the year.
        let mut by_hod = [0.0f64; 24];
        for (h, v) in climate.temperature().iter() {
            by_hod[h % 24] += v;
        }
        let hottest_hod = by_hod
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((13..=17).contains(&hottest_hod), "peak at {hottest_hod}:00");
    }

    #[test]
    fn heat_wave_raises_wet_bulb_only_inside_the_window() {
        let base = SiteClimate::generate(test_config()).unwrap();
        let hot = base.with_heat_wave(180, 7, 8.0).unwrap();
        // Inside the window: strictly hotter dry-bulb and wet-bulb.
        for h in (180 * 24..187 * 24).step_by(13) {
            assert!((hot.temperature().get(h) - base.temperature().get(h) - 8.0).abs() < 1e-9);
            assert!(hot.wet_bulb().get(h) > base.wet_bulb().get(h));
        }
        // Outside: identical.
        assert_eq!(hot.temperature().get(100), base.temperature().get(100));
        assert_eq!(hot.wet_bulb().get(8000), base.wet_bulb().get(8000));
        // Humidity untouched.
        assert_eq!(hot.humidity().values(), base.humidity().values());
    }

    #[test]
    fn heat_wave_validation() {
        let base = SiteClimate::generate(test_config()).unwrap();
        assert!(base.with_heat_wave(364, 2, 5.0).is_err()); // spills past year end
        assert!(base.with_heat_wave(400, 1, 5.0).is_err());
        assert!(base.with_heat_wave(10, 0, 5.0).is_err());
        assert!(base.with_heat_wave(10, 5, 40.0).is_err());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut bad = test_config();
        bad.mean_rh = 130.0;
        assert!(SiteClimate::generate(bad).is_err());
        let mut bad = test_config();
        bad.hottest_day = 400;
        assert!(bad.validate().is_err());
        let mut bad = test_config();
        bad.noise_std_c = -1.0;
        assert!(bad.validate().is_err());
        let mut bad = test_config();
        bad.seasonal_amp_c = -3.0;
        assert!(bad.validate().is_err());
        let mut bad = test_config();
        bad.mean_temp_c = f64::NAN;
        assert!(bad.validate().is_err());
    }
}
