//! Water usage effectiveness (WUE) from wet-bulb temperature.
//!
//! WUE (L/kWh) is the cooling water consumed per unit of IT energy
//! (Eq. 6). Physically it is driven by the outside wet-bulb temperature:
//!
//! * below a **free-cooling threshold** the facility cools with outside
//!   air and evaporates almost nothing (the paper: "if the HPC facility is
//!   located in a favorable geographical location or time of the year, the
//!   outside air can be used for cooling");
//! * above it, evaporative cooling water rises roughly linearly with
//!   wet-bulb temperature (hotter, more humid air means more evaporation
//!   per unit heat rejected);
//! * a **ceiling** reflects tower capacity.
//!
//! The paper's Table 2 lists WUE "> 0.05" derived from wet-bulb reports;
//! Fig. 6(b) shows site WUE distributions spanning roughly 0–12 L/kWh over
//! a year. The default model reproduces that envelope; per-site calibration
//! multiplies the slope.

use thirstyflops_timeseries::HourlySeries;
use thirstyflops_units::{Celsius, LitersPerKilowattHour};

use crate::climate::SiteClimate;

/// Piecewise-linear WUE model over wet-bulb temperature.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WueModel {
    /// Wet-bulb temperature below which outside-air (free) cooling covers
    /// the load, °C.
    pub free_cooling_twb_c: f64,
    /// WUE floor during free cooling, L/kWh (paper: > 0.05).
    pub floor: f64,
    /// Slope above the threshold, L/kWh per °C of wet-bulb.
    pub slope_per_c: f64,
    /// Tower-capacity ceiling, L/kWh.
    pub ceiling: f64,
}

impl Default for WueModel {
    fn default() -> Self {
        Self {
            free_cooling_twb_c: 4.0,
            floor: 0.05,
            slope_per_c: 0.33,
            ceiling: 12.0,
        }
    }
}

impl WueModel {
    /// A default model with the slope scaled by `k` — the per-site
    /// calibration knob (different tower designs and setpoints).
    pub fn scaled(k: f64) -> Self {
        let mut m = Self::default();
        m.slope_per_c *= k;
        m
    }

    /// Validates the model parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.floor < 0.0 {
            return Err(format!("WUE floor must be non-negative: {}", self.floor));
        }
        if self.slope_per_c < 0.0 {
            return Err(format!(
                "WUE slope must be non-negative: {}",
                self.slope_per_c
            ));
        }
        if self.ceiling < self.floor {
            return Err(format!(
                "WUE ceiling {} below floor {}",
                self.ceiling, self.floor
            ));
        }
        Ok(())
    }

    /// WUE at a given wet-bulb temperature.
    pub fn wue(&self, wet_bulb: Celsius) -> LitersPerKilowattHour {
        let excess = (wet_bulb.value() - self.free_cooling_twb_c).max(0.0);
        let raw = self.floor + self.slope_per_c * excess;
        LitersPerKilowattHour::new(raw.clamp(self.floor, self.ceiling))
    }

    /// Hourly WUE series for a simulated site climate.
    pub fn hourly_series(&self, climate: &SiteClimate) -> HourlySeries {
        climate
            .wet_bulb()
            .map(|twb| self.wue(Celsius::new(twb)).value())
    }

    /// Fits the piecewise model to observed `(wet bulb °C, WUE L/kWh)`
    /// pairs — the calibration path a facility with a metered WUE feed
    /// (e.g. the Gupta et al. 2024 water-sustainability dataset the paper
    /// cites) would use instead of the synthetic defaults.
    ///
    /// The floor is taken from the coldest observations, the free-cooling
    /// threshold is grid-searched, and the slope is the least-squares
    /// solution above the threshold. Returns the fitted model and its R².
    pub fn fit(samples: &[(f64, f64)]) -> Result<(WueModel, f64), String> {
        if samples.len() < 8 {
            return Err(format!("need at least 8 samples, got {}", samples.len()));
        }
        if samples
            .iter()
            .any(|&(t, w)| !t.is_finite() || !w.is_finite() || w < 0.0)
        {
            return Err("samples must be finite with non-negative WUE".into());
        }
        // Floor: median WUE of the coldest decile.
        let mut by_temp: Vec<(f64, f64)> = samples.to_vec();
        by_temp.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let decile = (by_temp.len() / 10).max(2);
        let mut cold: Vec<f64> = by_temp[..decile].iter().map(|&(_, w)| w).collect();
        cold.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let floor = cold[cold.len() / 2].max(0.0);

        let ceiling = samples
            .iter()
            .map(|&(_, w)| w)
            .fold(0.0, f64::max)
            .max(floor);

        // Grid-search the threshold; least-squares slope at each.
        let t_min = by_temp.first().expect("non-empty").0;
        let t_max = by_temp.last().expect("non-empty").0;
        let mut best: Option<(f64, f64, f64)> = None; // (t0, slope, sse)
        let steps = 60;
        for i in 0..=steps {
            let t0 = t_min + (t_max - t_min) * i as f64 / steps as f64;
            let mut sxx = 0.0;
            let mut sxy = 0.0;
            for &(t, w) in samples {
                let x = (t - t0).max(0.0);
                sxx += x * x;
                sxy += x * (w - floor);
            }
            if sxx <= 0.0 {
                continue;
            }
            let slope = (sxy / sxx).max(0.0);
            let sse: f64 = samples
                .iter()
                .map(|&(t, w)| {
                    let pred = (floor + slope * (t - t0).max(0.0)).clamp(floor, ceiling);
                    (w - pred) * (w - pred)
                })
                .sum();
            if best.is_none() || sse < best.expect("checked").2 {
                best = Some((t0, slope, sse));
            }
        }
        let (t0, slope, sse) = best.ok_or("degenerate samples: no temperature spread")?;

        let mean_w: f64 = samples.iter().map(|&(_, w)| w).sum::<f64>() / samples.len() as f64;
        let sst: f64 = samples
            .iter()
            .map(|&(_, w)| (w - mean_w) * (w - mean_w))
            .sum();
        let r2 = if sst > 0.0 { 1.0 - sse / sst } else { 1.0 };

        let model = WueModel {
            free_cooling_twb_c: t0,
            floor,
            slope_per_c: slope,
            ceiling,
        };
        model.validate()?;
        Ok((model, r2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::climate::{SiteClimate, SiteClimateConfig};

    #[test]
    fn free_cooling_region_is_flat_at_floor() {
        let m = WueModel::default();
        assert_eq!(m.wue(Celsius::new(-10.0)).value(), 0.05);
        assert_eq!(m.wue(Celsius::new(4.0)).value(), 0.05);
    }

    #[test]
    fn linear_above_threshold_then_capped() {
        let m = WueModel::default();
        let w10 = m.wue(Celsius::new(10.0)).value();
        assert!((w10 - (0.05 + 0.33 * 6.0)).abs() < 1e-12);
        // Very hot & humid saturates at the ceiling.
        assert_eq!(m.wue(Celsius::new(60.0)).value(), 12.0);
    }

    #[test]
    fn monotone_in_wet_bulb() {
        let m = WueModel::default();
        let mut prev = 0.0;
        for t in -20..50 {
            let w = m.wue(Celsius::new(t as f64)).value();
            assert!(w >= prev);
            prev = w;
        }
    }

    #[test]
    fn scaled_changes_only_slope() {
        let m = WueModel::scaled(2.0);
        assert_eq!(m.floor, 0.05);
        assert!((m.slope_per_c - 0.66).abs() < 1e-12);
        assert_eq!(m.ceiling, 12.0);
    }

    #[test]
    fn validation() {
        assert!(WueModel::default().validate().is_ok());
        let low_ceiling = WueModel {
            ceiling: 0.01,
            ..WueModel::default()
        };
        assert!(low_ceiling.validate().is_err());
        let negative_slope = WueModel {
            slope_per_c: -1.0,
            ..WueModel::default()
        };
        assert!(negative_slope.validate().is_err());
        let negative_floor = WueModel {
            floor: -0.1,
            ..WueModel::default()
        };
        assert!(negative_floor.validate().is_err());
    }

    #[test]
    fn fit_recovers_a_known_model() {
        let truth = WueModel {
            free_cooling_twb_c: 5.0,
            floor: 0.1,
            slope_per_c: 0.4,
            ceiling: 12.0,
        };
        // Deterministic pseudo-noise ±0.05.
        let samples: Vec<(f64, f64)> = (0..400)
            .map(|i| {
                let t = -5.0 + 30.0 * (i as f64 / 400.0);
                let noise = (((i as u64 * 2654435761) % 1000) as f64 / 1000.0 - 0.5) * 0.1;
                (t, (truth.wue(Celsius::new(t)).value() + noise).max(0.0))
            })
            .collect();
        let (fitted, r2) = WueModel::fit(&samples).unwrap();
        assert!(r2 > 0.98, "R² {r2}");
        assert!(
            (fitted.slope_per_c - 0.4).abs() < 0.05,
            "slope {}",
            fitted.slope_per_c
        );
        assert!(
            (fitted.free_cooling_twb_c - 5.0).abs() < 2.0,
            "t0 {}",
            fitted.free_cooling_twb_c
        );
        assert!(fitted.floor < 0.3, "floor {}", fitted.floor);
    }

    #[test]
    fn fit_validation() {
        assert!(WueModel::fit(&[(1.0, 1.0); 4]).is_err()); // too few
        let bad = vec![(1.0, -1.0); 20];
        assert!(WueModel::fit(&bad).is_err()); // negative WUE
        let nan = vec![(f64::NAN, 1.0); 20];
        assert!(WueModel::fit(&nan).is_err());
    }

    #[test]
    fn fit_round_trips_through_simulated_climate() {
        // Fit against samples generated by a preset's own climate+model —
        // the fitted model should predict close to the original.
        let preset = crate::presets::ClimatePreset::OakRidge;
        let climate = preset.generate();
        let model = preset.wue_model();
        let samples: Vec<(f64, f64)> = (0..8760)
            .step_by(7)
            .map(|h| {
                (
                    climate.wet_bulb().get(h),
                    model.wue(Celsius::new(climate.wet_bulb().get(h))).value(),
                )
            })
            .collect();
        let (fitted, r2) = WueModel::fit(&samples).unwrap();
        assert!(r2 > 0.99, "noise-free fit R² {r2}");
        assert!((fitted.slope_per_c - model.slope_per_c).abs() < 0.05);
    }

    #[test]
    fn summer_wue_exceeds_winter_wue() {
        let climate = SiteClimate::generate(SiteClimateConfig {
            name: "Seasonal".into(),
            mean_temp_c: 14.0,
            seasonal_amp_c: 10.0,
            diurnal_amp_c: 4.0,
            hottest_day: 200,
            mean_rh: 70.0,
            seasonal_rh_amp: 5.0,
            diurnal_rh_amp: 10.0,
            noise_std_c: 2.0,
            seed: 7,
        })
        .unwrap();
        let wue = WueModel::default().hourly_series(&climate);
        let monthly = wue.monthly_mean();
        assert!(monthly.summer_mean() > 2.0 * monthly.non_summer_mean());
        // Floor respected everywhere.
        assert!(wue.min() >= 0.05);
        assert!(wue.max() <= 12.0);
    }
}
