//! Power and duration quantities, and the `power × time = energy` product
//! used by the workload simulator (utilization × TDP → kWh, the paper's
//! fallback estimation when power logs are unavailable).

use crate::energy::KilowattHours;

quantity!(
    /// Power draw in kilowatts.
    Kilowatts,
    "kW"
);

quantity!(
    /// Power draw in megawatts (facility scale, as in Fig. 1(c)).
    Megawatts,
    "MW"
);

quantity!(
    /// Duration in hours — the simulation's native time step.
    Hours,
    "h"
);

impl From<Megawatts> for Kilowatts {
    #[inline]
    fn from(m: Megawatts) -> Self {
        Kilowatts::new(m.value() * 1000.0)
    }
}

impl From<Kilowatts> for Megawatts {
    #[inline]
    fn from(k: Kilowatts) -> Self {
        Megawatts::new(k.value() / 1000.0)
    }
}

impl core::ops::Mul<Hours> for Kilowatts {
    type Output = KilowattHours;
    #[inline]
    fn mul(self, rhs: Hours) -> KilowattHours {
        KilowattHours::new(self.value() * rhs.value())
    }
}

impl core::ops::Mul<Kilowatts> for Hours {
    type Output = KilowattHours;
    #[inline]
    fn mul(self, rhs: Kilowatts) -> KilowattHours {
        rhs * self
    }
}

impl core::ops::Div<Hours> for KilowattHours {
    type Output = Kilowatts;
    #[inline]
    fn div(self, rhs: Hours) -> Kilowatts {
        Kilowatts::new(self.value() / rhs.value())
    }
}

impl Hours {
    /// Duration expressed in whole simulation hours, rounded toward zero.
    #[inline]
    pub fn whole_hours(self) -> u64 {
        self.value().max(0.0) as u64
    }

    /// Constructs from minutes.
    #[inline]
    pub fn from_minutes(minutes: f64) -> Self {
        Hours::new(minutes / 60.0)
    }

    /// Constructs from seconds.
    #[inline]
    pub fn from_seconds(seconds: f64) -> Self {
        Hours::new(seconds / 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_time_energy_triangle() {
        let p = Kilowatts::new(250.0);
        let t = Hours::new(4.0);
        let e = p * t;
        assert_eq!(e, KilowattHours::new(1000.0));
        assert_eq!(t * p, e);
        assert_eq!(e / t, p);
    }

    #[test]
    fn mw_kw_conversion() {
        let kw: Kilowatts = Megawatts::new(21.0).into(); // Frontier-ish
        assert_eq!(kw, Kilowatts::new(21_000.0));
        let mw: Megawatts = kw.into();
        assert_eq!(mw, Megawatts::new(21.0));
    }

    #[test]
    fn duration_helpers() {
        assert_eq!(Hours::from_minutes(90.0), Hours::new(1.5));
        assert_eq!(Hours::from_seconds(7200.0), Hours::new(2.0));
        assert_eq!(Hours::new(2.9).whole_hours(), 2);
    }
}
