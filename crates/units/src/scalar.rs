//! The `quantity!` macro: declares an `f64`-backed unit newtype with the
//! arithmetic that is physically meaningful for *any* quantity — addition and
//! subtraction of like values, scaling by a dimensionless `f64`, ratios of
//! like values, comparison, summation, and display with a unit suffix.
//!
//! Cross-unit products (energy × intensity = volume, …) are *not* generated
//! here; they live next to the involved types so the set of legal unit
//! combinations is easy to audit.

/// Declares a unit quantity newtype.
///
/// `quantity!(Name, "suffix", "doc string")` expands to a `pub struct
/// Name(f64)` with constructors, accessors, arithmetic, ordering, `Sum`,
/// `Display`, and transparent serde.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $suffix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Zero of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw magnitude.
            ///
            /// Panics in debug builds if `v` is NaN — a NaN quantity is
            /// always a modeling bug upstream.
            #[inline]
            pub fn new(v: f64) -> Self {
                debug_assert!(!v.is_nan(), concat!(stringify!($name), " must not be NaN"));
                Self(v)
            }

            /// The raw magnitude in this quantity's canonical unit.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Elementwise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Elementwise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// True if the magnitude is finite (not NaN/∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Ratio of two like quantities is dimensionless.
        impl core::ops::Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    quantity!(
        /// Test-only quantity.
        Widgets,
        "wg"
    );

    #[test]
    fn arithmetic_and_ordering() {
        let a = Widgets::new(2.0);
        let b = Widgets::new(3.0);
        assert_eq!(a + b, Widgets::new(5.0));
        assert_eq!(b - a, Widgets::new(1.0));
        assert_eq!(a * 2.0, Widgets::new(4.0));
        assert_eq!(2.0 * a, Widgets::new(4.0));
        assert_eq!(b / a, 1.5);
        assert!(a < b);
        assert_eq!(-a, Widgets::new(-2.0));
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_and_display() {
        let total: Widgets = [1.0, 2.0, 3.5].iter().map(|&v| Widgets::new(v)).sum();
        assert_eq!(total, Widgets::new(6.5));
        assert_eq!(format!("{:.1}", total), "6.5 wg");
        assert_eq!(format!("{}", Widgets::new(2.0)), "2 wg");
    }

    #[test]
    fn clamp_and_finite() {
        let x = Widgets::new(10.0);
        assert_eq!(x.clamp(Widgets::ZERO, Widgets::new(5.0)), Widgets::new(5.0));
        assert!(x.is_finite());
        assert!(!Widgets::new(f64::INFINITY).is_finite());
    }
}
