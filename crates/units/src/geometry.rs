//! Die-area quantities and the per-area manufacturing water factors
//! (UPW/PCW/WPA of Eq. 4 are expressed in liters per cm² of die).

use crate::water::Liters;

quantity!(
    /// Silicon die area in square millimeters (vendor sheets quote mm²).
    SquareMillimeters,
    "mm²"
);

quantity!(
    /// Silicon die area in square centimeters (manufacturing water factors
    /// are per cm²).
    SquareCentimeters,
    "cm²"
);

quantity!(
    /// Manufacturing water per unit die area (UPW, PCW, or WPA of Eq. 4).
    LitersPerSquareCm,
    "L/cm²"
);

impl From<SquareMillimeters> for SquareCentimeters {
    #[inline]
    fn from(a: SquareMillimeters) -> Self {
        SquareCentimeters::new(a.value() / 100.0)
    }
}

impl From<SquareCentimeters> for SquareMillimeters {
    #[inline]
    fn from(a: SquareCentimeters) -> Self {
        SquareMillimeters::new(a.value() * 100.0)
    }
}

impl core::ops::Mul<SquareCentimeters> for LitersPerSquareCm {
    type Output = Liters;
    #[inline]
    fn mul(self, rhs: SquareCentimeters) -> Liters {
        Liters::new(self.value() * rhs.value())
    }
}

impl core::ops::Mul<LitersPerSquareCm> for SquareCentimeters {
    type Output = Liters;
    #[inline]
    fn mul(self, rhs: LitersPerSquareCm) -> Liters {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_conversion() {
        // NVIDIA A100: 826 mm² = 8.26 cm².
        let a: SquareCentimeters = SquareMillimeters::new(826.0).into();
        assert!((a.value() - 8.26).abs() < 1e-12);
        let back: SquareMillimeters = a.into();
        assert!((back.value() - 826.0).abs() < 1e-9);
    }

    #[test]
    fn per_area_water() {
        let upw = LitersPerSquareCm::new(14.2);
        let area = SquareCentimeters::new(8.26);
        let w = upw * area;
        assert!((w.value() - 117.292).abs() < 1e-9);
        assert_eq!(area * upw, w);
    }
}
