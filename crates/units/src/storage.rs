//! Memory/storage capacity quantities and the per-capacity water factor
//! (WPC of Eq. 5: DRAM 0.8, HDD 0.033, SSD 0.022 L/GB in the paper's
//! Table 2).

use crate::water::Liters;

quantity!(
    /// Capacity in gigabytes — the canonical capacity unit (WPC is L/GB).
    Gigabytes,
    "GB"
);

quantity!(
    /// Capacity in terabytes.
    Terabytes,
    "TB"
);

quantity!(
    /// Capacity in petabytes (file-system scale, e.g. Frontier's 679 PB).
    Petabytes,
    "PB"
);

quantity!(
    /// Embodied water per unit capacity (WPC of Eq. 5).
    LitersPerGigabyte,
    "L/GB"
);

impl From<Terabytes> for Gigabytes {
    #[inline]
    fn from(t: Terabytes) -> Self {
        Gigabytes::new(t.value() * 1000.0)
    }
}

impl From<Petabytes> for Gigabytes {
    #[inline]
    fn from(p: Petabytes) -> Self {
        Gigabytes::new(p.value() * 1.0e6)
    }
}

impl From<Gigabytes> for Terabytes {
    #[inline]
    fn from(g: Gigabytes) -> Self {
        Terabytes::new(g.value() / 1000.0)
    }
}

impl From<Gigabytes> for Petabytes {
    #[inline]
    fn from(g: Gigabytes) -> Self {
        Petabytes::new(g.value() / 1.0e6)
    }
}

impl core::ops::Mul<Gigabytes> for LitersPerGigabyte {
    type Output = Liters;
    #[inline]
    fn mul(self, rhs: Gigabytes) -> Liters {
        Liters::new(self.value() * rhs.value())
    }
}

impl core::ops::Mul<LitersPerGigabyte> for Gigabytes {
    type Output = Liters;
    #[inline]
    fn mul(self, rhs: LitersPerGigabyte) -> Liters {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_conversions() {
        let g: Gigabytes = Petabytes::new(679.0).into(); // Frontier Orion HDD tier
        assert_eq!(g, Gigabytes::new(679.0e6));
        let g2: Gigabytes = Terabytes::new(1.5).into();
        assert_eq!(g2, Gigabytes::new(1500.0));
        let t: Terabytes = Gigabytes::new(2500.0).into();
        assert_eq!(t, Terabytes::new(2.5));
        let p: Petabytes = Gigabytes::new(3.0e6).into();
        assert_eq!(p, Petabytes::new(3.0));
    }

    #[test]
    fn wpc_times_capacity_is_water() {
        // Paper Eq. 5 with HDD WPC: 679 PB * 0.033 L/GB ≈ 22.4 ML.
        let wpc = LitersPerGigabyte::new(0.033);
        let cap: Gigabytes = Petabytes::new(679.0).into();
        let w = wpc * cap;
        assert!((w.value() - 22.407e6).abs() < 1e3);
        assert_eq!(cap * wpc, w);
    }
}
