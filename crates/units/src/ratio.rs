//! Dimensionless, constrained ratios: PUE, fab yield, generic fractions,
//! and the water scarcity index (WSI).

use crate::error::UnitError;
use crate::intensity::LitersPerKilowattHour;

/// Power usage effectiveness: total facility energy over IT energy.
///
/// Physically `PUE ≥ 1` (1 would mean every joule goes to IT equipment).
/// The paper's systems: Marconi 1.25, Fugaku 1.4, Polaris 1.65,
/// Frontier 1.05.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct Pue(f64);

impl Pue {
    /// Constructs a PUE, rejecting values below 1 or non-finite.
    pub fn new(v: f64) -> Result<Self, UnitError> {
        if v.is_finite() && v >= 1.0 {
            Ok(Self(v))
        } else {
            Err(UnitError::new("Pue", "must be finite and >= 1", v))
        }
    }

    /// The raw ratio.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl core::fmt::Display for Pue {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "PUE {}", self.0)
    }
}

/// `E × PUE` — effective facility energy (Eq. 7's first product).
impl core::ops::Mul<Pue> for crate::energy::KilowattHours {
    type Output = crate::energy::KilowattHours;
    #[inline]
    fn mul(self, rhs: Pue) -> crate::energy::KilowattHours {
        crate::energy::KilowattHours::new(self.value() * rhs.0)
    }
}

/// `PUE × EWF` — the indirect water-intensity term of Eq. 8.
impl core::ops::Mul<LitersPerKilowattHour> for Pue {
    type Output = LitersPerKilowattHour;
    #[inline]
    fn mul(self, rhs: LitersPerKilowattHour) -> LitersPerKilowattHour {
        LitersPerKilowattHour::new(self.0 * rhs.value())
    }
}

impl core::ops::Mul<Pue> for LitersPerKilowattHour {
    type Output = LitersPerKilowattHour;
    #[inline]
    fn mul(self, rhs: Pue) -> LitersPerKilowattHour {
        rhs * self
    }
}

/// Semiconductor fab yield rate in `(0, 1]` (paper default 0.875).
///
/// Eq. 4 divides by the yield, so zero must be unrepresentable.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct FabYield(f64);

impl FabYield {
    /// The paper's default yield rate.
    pub const DEFAULT: FabYield = FabYield(0.875);

    /// Constructs a yield, rejecting values outside `(0, 1]`.
    pub fn new(v: f64) -> Result<Self, UnitError> {
        if v.is_finite() && v > 0.0 && v <= 1.0 {
            Ok(Self(v))
        } else {
            Err(UnitError::new("FabYield", "must be in (0, 1]", v))
        }
    }

    /// The raw yield rate.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// `1 / yield`, the die-area inflation factor of Eq. 4.
    #[inline]
    pub fn inflation(self) -> f64 {
        1.0 / self.0
    }
}

impl core::fmt::Display for FabYield {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "yield {}", self.0)
    }
}

/// A generic fraction in `[0, 1]` (energy-mix shares, reuse rates ρ,
/// potable splits β, plant energy shares).
#[derive(
    Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct Fraction(f64);

impl Fraction {
    /// Zero.
    pub const ZERO: Fraction = Fraction(0.0);
    /// One.
    pub const ONE: Fraction = Fraction(1.0);

    /// Constructs a fraction, rejecting values outside `[0, 1]`.
    pub fn new(v: f64) -> Result<Self, UnitError> {
        if v.is_finite() && (0.0..=1.0).contains(&v) {
            Ok(Self(v))
        } else {
            Err(UnitError::new("Fraction", "must be in [0, 1]", v))
        }
    }

    /// Constructs from a percentage in `[0, 100]`.
    pub fn from_percent(pct: f64) -> Result<Self, UnitError> {
        Self::new(pct / 100.0)
    }

    /// Clamps an arbitrary finite value into `[0, 1]`.
    #[inline]
    pub fn clamped(v: f64) -> Self {
        debug_assert!(!v.is_nan(), "Fraction must not be NaN");
        Self(v.clamp(0.0, 1.0))
    }

    /// The raw value in `[0, 1]`.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The value as a percentage.
    #[inline]
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// The complement `1 - self`.
    #[inline]
    pub fn complement(self) -> Self {
        Self(1.0 - self.0)
    }
}

impl core::fmt::Display for Fraction {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*} %", prec, self.percent())
        } else {
            write!(f, "{} %", self.percent())
        }
    }
}

/// Regional water scarcity index (AWARE-style), `≥ 0`.
///
/// The paper's Table 2 quotes a 0.1–100 data range; Fig. 8(b) uses
/// AWARE-global values in `[0, 0.7]`. Both fit a non-negative index whose
/// only algebra is scaling a water intensity (Eq. 9).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct WaterScarcityIndex(f64);

impl WaterScarcityIndex {
    /// Constructs a WSI, rejecting negative or non-finite values.
    pub fn new(v: f64) -> Result<Self, UnitError> {
        if v.is_finite() && v >= 0.0 {
            Ok(Self(v))
        } else {
            Err(UnitError::new(
                "WaterScarcityIndex",
                "must be finite and >= 0",
                v,
            ))
        }
    }

    /// The raw index.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl core::fmt::Display for WaterScarcityIndex {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "WSI {}", self.0)
    }
}

/// Eq. 9: `WI_WSI = WI · WSI`.
impl core::ops::Mul<WaterScarcityIndex> for LitersPerKilowattHour {
    type Output = LitersPerKilowattHour;
    #[inline]
    fn mul(self, rhs: WaterScarcityIndex) -> LitersPerKilowattHour {
        LitersPerKilowattHour::new(self.value() * rhs.0)
    }
}

impl core::ops::Mul<LitersPerKilowattHour> for WaterScarcityIndex {
    type Output = LitersPerKilowattHour;
    #[inline]
    fn mul(self, rhs: LitersPerKilowattHour) -> LitersPerKilowattHour {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pue_validation() {
        assert!(Pue::new(1.0).is_ok());
        assert!(Pue::new(1.65).is_ok());
        assert!(Pue::new(0.99).is_err());
        assert!(Pue::new(f64::NAN).is_err());
        assert!(Pue::new(f64::INFINITY).is_err());
    }

    #[test]
    fn pue_scales_ewf() {
        let pue = Pue::new(1.25).unwrap();
        let ewf = LitersPerKilowattHour::new(4.0);
        assert_eq!(pue * ewf, LitersPerKilowattHour::new(5.0));
        assert_eq!(ewf * pue, LitersPerKilowattHour::new(5.0));
    }

    #[test]
    fn yield_validation_and_inflation() {
        let y = FabYield::new(0.875).unwrap();
        assert!((y.inflation() - 1.142_857_142_857).abs() < 1e-9);
        assert!(FabYield::new(0.0).is_err());
        assert!(FabYield::new(1.01).is_err());
        assert!(FabYield::new(-0.5).is_err());
        assert_eq!(FabYield::DEFAULT.value(), 0.875);
    }

    #[test]
    fn fraction_behaviour() {
        let f = Fraction::from_percent(37.0).unwrap();
        assert!((f.value() - 0.37).abs() < 1e-12);
        assert!((f.complement().value() - 0.63).abs() < 1e-12);
        assert!(Fraction::new(1.5).is_err());
        assert_eq!(Fraction::clamped(2.0), Fraction::ONE);
        assert_eq!(Fraction::clamped(-1.0), Fraction::ZERO);
        assert_eq!(format!("{:.0}", f), "37 %");
    }

    #[test]
    fn wsi_scales_intensity() {
        let wsi = WaterScarcityIndex::new(0.55).unwrap();
        let wi = LitersPerKilowattHour::new(6.0);
        assert!(((wi * wsi).value() - 3.3).abs() < 1e-12);
        assert!(((wsi * wi).value() - 3.3).abs() < 1e-12);
        assert!(WaterScarcityIndex::new(-0.1).is_err());
    }
}
