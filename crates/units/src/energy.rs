//! Energy quantities. Canonical unit: **kilowatt-hour**, matching the
//! paper's Table 2 (`E` in kWh) and the L/kWh intensities.

quantity!(
    /// Energy in kilowatt-hours — the canonical energy unit.
    KilowattHours,
    "kWh"
);

quantity!(
    /// Energy in megawatt-hours, for facility-scale reporting.
    MegawattHours,
    "MWh"
);

impl From<MegawattHours> for KilowattHours {
    #[inline]
    fn from(m: MegawattHours) -> Self {
        KilowattHours::new(m.value() * 1000.0)
    }
}

impl From<KilowattHours> for MegawattHours {
    #[inline]
    fn from(k: KilowattHours) -> Self {
        MegawattHours::new(k.value() / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let k: KilowattHours = MegawattHours::new(1.5).into();
        assert_eq!(k, KilowattHours::new(1500.0));
        let m: MegawattHours = KilowattHours::new(250.0).into();
        assert_eq!(m, MegawattHours::new(0.25));
    }
}
