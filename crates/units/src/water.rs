//! Water-volume quantities.
//!
//! The canonical unit throughout the framework is the **liter**, matching
//! the paper's L/kWh intensity metrics. US-style gallons and megaliters are
//! provided for reporting (the paper's anecdotes — "60 gallons per minute",
//! "30 million gallons per year" — are gallon-denominated).

quantity!(
    /// Volume of water in liters — the canonical water unit.
    Liters,
    "L"
);

quantity!(
    /// Volume of water in US gallons (reporting convenience).
    Gallons,
    "gal"
);

quantity!(
    /// Volume of water in megaliters (10⁶ L), for facility-scale reporting.
    MegaLiters,
    "ML"
);

/// Liters per US gallon.
pub const LITERS_PER_GALLON: f64 = 3.785_411_784;

/// Average US household water use, gallons per day (EPA WaterSense: "an
/// average American family uses more than 300 gallons of water per day at
/// home" — the paper's §1 comparison unit).
pub const US_HOUSEHOLD_GALLONS_PER_DAY: f64 = 300.0;

impl Liters {
    /// This volume expressed in **US household-years**: how many average
    /// American households this much water would supply for a year. The
    /// paper's intuition pump — "Frontier's yearly water consumption …
    /// enough water to supply a city of 300 households".
    pub fn us_household_years(self) -> f64 {
        self.value() / (US_HOUSEHOLD_GALLONS_PER_DAY * LITERS_PER_GALLON * 365.0)
    }
}

impl From<Gallons> for Liters {
    #[inline]
    fn from(g: Gallons) -> Self {
        Liters::new(g.value() * LITERS_PER_GALLON)
    }
}

impl From<Liters> for Gallons {
    #[inline]
    fn from(l: Liters) -> Self {
        Gallons::new(l.value() / LITERS_PER_GALLON)
    }
}

impl From<MegaLiters> for Liters {
    #[inline]
    fn from(m: MegaLiters) -> Self {
        Liters::new(m.value() * 1.0e6)
    }
}

impl From<Liters> for MegaLiters {
    #[inline]
    fn from(l: Liters) -> Self {
        MegaLiters::new(l.value() / 1.0e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gallon_round_trip() {
        let g = Gallons::new(100.0);
        let l: Liters = g.into();
        assert!((l.value() - 378.541_178_4).abs() < 1e-9);
        let back: Gallons = l.into();
        assert!((back.value() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn frontier_anecdote_in_household_years() {
        // Paper §1: 30 million gallons/year ≈ a city of 300 US households.
        let frontier_direct: Liters = Gallons::new(30.0e6).into();
        let households = frontier_direct.us_household_years();
        assert!((households - 274.0).abs() < 30.0, "{households}");
    }

    #[test]
    fn megaliter_round_trip() {
        let m = MegaLiters::new(2.5);
        let l: Liters = m.into();
        assert_eq!(l, Liters::new(2.5e6));
        let back: MegaLiters = l.into();
        assert_eq!(back, m);
    }
}
