//! Typed physical quantities for the ThirstyFLOPS water-footprint framework.
//!
//! Every model equation in the paper mixes several unit systems — liters of
//! water, kilowatt-hours of energy, liters-per-kilowatt-hour intensities,
//! grams of CO₂, die areas in mm², storage capacities in GB. Carrying these
//! around as bare `f64` invites silent unit bugs (L vs gal, kWh vs MWh), so
//! each quantity gets a thin newtype with only the physically meaningful
//! arithmetic implemented. Cross-unit products (e.g. `KilowattHours ×
//! LitersPerKilowattHour = Liters`, the heart of Eq. 6–8) are explicit
//! `Mul`/`Div` impls.
//!
//! All quantities are `f64`-backed, `Copy`, totally ordered via
//! [`f64::total_cmp`]-free `PartialOrd` (NaN is considered a construction
//! bug), and serialize transparently with serde.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[macro_use]
mod scalar;

mod carbon;
mod climate;
mod energy;
mod error;
mod geometry;
mod intensity;
mod power;
mod ratio;
mod storage;
mod water;

pub use carbon::{GramsCo2, GramsCo2PerKwh, KilogramsCo2};
pub use climate::{Celsius, RelativeHumidity};
pub use energy::{KilowattHours, MegawattHours};
pub use error::UnitError;
pub use geometry::{LitersPerSquareCm, SquareCentimeters, SquareMillimeters};
pub use intensity::LitersPerKilowattHour;
pub use power::{Hours, Kilowatts, Megawatts};
pub use ratio::{FabYield, Fraction, Pue, WaterScarcityIndex};
pub use storage::{Gigabytes, LitersPerGigabyte, Petabytes, Terabytes};
pub use water::{Gallons, Liters, MegaLiters};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_unit_products_compose_like_the_paper_equations() {
        // Eq. 6: W_direct = E * WUE
        let e = KilowattHours::new(1000.0);
        let wue = LitersPerKilowattHour::new(2.5);
        assert_eq!(e * wue, Liters::new(2500.0));

        // Eq. 7: W_indirect = E * PUE * EWF
        let pue = Pue::new(1.25).unwrap();
        let ewf = LitersPerKilowattHour::new(4.0);
        let w_ind = e * pue * ewf;
        assert_eq!(w_ind, Liters::new(5000.0));

        // Eq. 8: WI = WUE + PUE * EWF
        let wi = wue + pue * ewf;
        assert_eq!(wi, LitersPerKilowattHour::new(7.5));
    }

    #[test]
    fn energy_conversions_round_trip() {
        let mwh = MegawattHours::new(3.0);
        let kwh: KilowattHours = mwh.into();
        assert_eq!(kwh, KilowattHours::new(3000.0));
        let back: MegawattHours = kwh.into();
        assert!((back.value() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn power_times_time_is_energy() {
        let p = Kilowatts::new(500.0);
        let t = Hours::new(2.0);
        assert_eq!(p * t, KilowattHours::new(1000.0));
        let mw = Megawatts::new(0.5);
        let as_kw: Kilowatts = mw.into();
        assert_eq!(as_kw, p);
    }

    #[test]
    fn water_gallons_conversion_matches_frontier_anecdote() {
        // Frontier: ~60 gal/min ≈ 30M gal/year ≈ 114M liters/year.
        let per_year = Gallons::new(60.0 * 60.0 * 24.0 * 365.0);
        let liters: Liters = per_year.into();
        assert!(liters.value() > 1.1e8 && liters.value() < 1.3e8);
    }
}
