//! Water intensity: **liters per kilowatt-hour**.
//!
//! This single unit carries three of the paper's central metrics:
//!
//! * **WUE** — water usage effectiveness (Eq. 6), cooling water per IT kWh;
//! * **EWF** — energy water factor (Eq. 7), generation water per grid kWh;
//! * **WI**  — water intensity (Eq. 8), `WUE + PUE·EWF`.
//!
//! The product `KilowattHours × LitersPerKilowattHour = Liters` realizes
//! Eq. 6/7; `Pue × LitersPerKilowattHour` scales EWF into the indirect
//! intensity term of Eq. 8.

use crate::energy::KilowattHours;
use crate::water::Liters;

quantity!(
    /// Water intensity in liters per kilowatt-hour (WUE, EWF, or WI).
    LitersPerKilowattHour,
    "L/kWh"
);

impl core::ops::Mul<LitersPerKilowattHour> for KilowattHours {
    type Output = Liters;
    #[inline]
    fn mul(self, rhs: LitersPerKilowattHour) -> Liters {
        Liters::new(self.value() * rhs.value())
    }
}

impl core::ops::Mul<KilowattHours> for LitersPerKilowattHour {
    type Output = Liters;
    #[inline]
    fn mul(self, rhs: KilowattHours) -> Liters {
        rhs * self
    }
}

impl core::ops::Div<KilowattHours> for Liters {
    type Output = LitersPerKilowattHour;
    #[inline]
    fn div(self, rhs: KilowattHours) -> LitersPerKilowattHour {
        LitersPerKilowattHour::new(self.value() / rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_energy_volume_triangle() {
        let wi = LitersPerKilowattHour::new(6.3);
        let e = KilowattHours::new(100.0);
        assert_eq!(e * wi, Liters::new(630.0));
        assert_eq!(wi * e, Liters::new(630.0));
        let derived = Liters::new(630.0) / e;
        assert!((derived.value() - 6.3).abs() < 1e-12);
    }
}
