//! Validation errors for constrained quantities.

/// Error returned when constructing a constrained quantity from an
/// out-of-range magnitude (e.g. a PUE below 1, a fab yield outside `(0, 1]`).
#[derive(Debug, Clone, PartialEq)]
pub struct UnitError {
    quantity: &'static str,
    constraint: &'static str,
    value: f64,
}

impl UnitError {
    pub(crate) fn new(quantity: &'static str, constraint: &'static str, value: f64) -> Self {
        Self {
            quantity,
            constraint,
            value,
        }
    }

    /// Name of the offending quantity type.
    pub fn quantity(&self) -> &'static str {
        self.quantity
    }

    /// Human-readable constraint that was violated.
    pub fn constraint(&self) -> &'static str {
        self.constraint
    }

    /// The rejected magnitude.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl core::fmt::Display for UnitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "invalid {}: {} (got {})",
            self.quantity, self.constraint, self.value
        )
    }
}

impl std::error::Error for UnitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_all_parts() {
        let e = UnitError::new("Pue", "must be >= 1", 0.5);
        let s = e.to_string();
        assert!(s.contains("Pue"));
        assert!(s.contains(">= 1"));
        assert!(s.contains("0.5"));
        assert_eq!(e.quantity(), "Pue");
        assert_eq!(e.value(), 0.5);
    }
}
