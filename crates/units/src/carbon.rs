//! Carbon quantities, used by the carbon-comparator crate for the paper's
//! water-vs-carbon analyses (Figs. 5, 12, 13, 14).

use crate::energy::KilowattHours;

quantity!(
    /// Mass of CO₂-equivalent emissions in grams.
    GramsCo2,
    "gCO2"
);

quantity!(
    /// Mass of CO₂-equivalent emissions in kilograms.
    KilogramsCo2,
    "kgCO2"
);

quantity!(
    /// Carbon intensity in grams CO₂-eq per kilowatt-hour.
    GramsCo2PerKwh,
    "gCO2/kWh"
);

impl From<KilogramsCo2> for GramsCo2 {
    #[inline]
    fn from(k: KilogramsCo2) -> Self {
        GramsCo2::new(k.value() * 1000.0)
    }
}

impl From<GramsCo2> for KilogramsCo2 {
    #[inline]
    fn from(g: GramsCo2) -> Self {
        KilogramsCo2::new(g.value() / 1000.0)
    }
}

impl core::ops::Mul<GramsCo2PerKwh> for KilowattHours {
    type Output = GramsCo2;
    #[inline]
    fn mul(self, rhs: GramsCo2PerKwh) -> GramsCo2 {
        GramsCo2::new(self.value() * rhs.value())
    }
}

impl core::ops::Mul<KilowattHours> for GramsCo2PerKwh {
    type Output = GramsCo2;
    #[inline]
    fn mul(self, rhs: KilowattHours) -> GramsCo2 {
        rhs * self
    }
}

impl core::ops::Div<KilowattHours> for GramsCo2 {
    type Output = GramsCo2PerKwh;
    #[inline]
    fn div(self, rhs: KilowattHours) -> GramsCo2PerKwh {
        GramsCo2PerKwh::new(self.value() / rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carbon_triangle() {
        let ci = GramsCo2PerKwh::new(420.0);
        let e = KilowattHours::new(10.0);
        assert_eq!(e * ci, GramsCo2::new(4200.0));
        let kg: KilogramsCo2 = GramsCo2::new(4200.0).into();
        assert_eq!(kg, KilogramsCo2::new(4.2));
        let back: GramsCo2 = kg.into();
        assert_eq!(back, GramsCo2::new(4200.0));
        let derived = GramsCo2::new(4200.0) / e;
        assert!((derived.value() - 420.0).abs() < 1e-12);
    }
}
