//! Climate quantities feeding the WUE model: dry-bulb temperature and
//! relative humidity (inputs to the Stull wet-bulb formula, Eq. 6).

quantity!(
    /// Temperature in degrees Celsius (dry-bulb or wet-bulb).
    Celsius,
    "°C"
);

/// Relative humidity in percent, validated to `[0, 100]`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct RelativeHumidity(f64);

impl RelativeHumidity {
    /// Constructs a relative humidity, clamping into `[0, 100]`.
    ///
    /// Clamping (rather than erroring) matches how noisy synthetic weather
    /// is consumed: a generator overshooting 100 % RH means "saturated",
    /// not "invalid input".
    #[inline]
    pub fn clamped(percent: f64) -> Self {
        debug_assert!(!percent.is_nan(), "RelativeHumidity must not be NaN");
        Self(percent.clamp(0.0, 100.0))
    }

    /// Constructs from an exact percentage, returning `None` outside
    /// `[0, 100]`.
    #[inline]
    pub fn new(percent: f64) -> Option<Self> {
        if (0.0..=100.0).contains(&percent) {
            Some(Self(percent))
        } else {
            None
        }
    }

    /// The humidity in percent.
    #[inline]
    pub fn percent(self) -> f64 {
        self.0
    }

    /// The humidity as a fraction in `[0, 1]`.
    #[inline]
    pub fn fraction(self) -> f64 {
        self.0 / 100.0
    }
}

impl core::fmt::Display for RelativeHumidity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*} %RH", prec, self.0)
        } else {
            write!(f, "{} %RH", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn humidity_validation_and_clamping() {
        assert_eq!(RelativeHumidity::new(55.0).unwrap().percent(), 55.0);
        assert!(RelativeHumidity::new(-1.0).is_none());
        assert!(RelativeHumidity::new(100.1).is_none());
        assert_eq!(RelativeHumidity::clamped(130.0).percent(), 100.0);
        assert_eq!(RelativeHumidity::clamped(-5.0).percent(), 0.0);
        assert!((RelativeHumidity::clamped(42.0).fraction() - 0.42).abs() < 1e-12);
    }

    #[test]
    fn celsius_is_a_plain_quantity() {
        let t = Celsius::new(23.5);
        assert_eq!(t + Celsius::new(0.5), Celsius::new(24.0));
        assert_eq!(format!("{:.1}", t), "23.5 °C");
    }
}
