//! Water-aware operations on top of the ThirstyFLOPS models — the
//! paper's "implications" turned into runnable schedulers:
//!
//! * [`starttime`] — Fig. 13 / Takeaway 9: rank candidate application
//!   start times by water and by carbon impact (they differ!);
//! * [`objective`] — multi-objective scalarization and Pareto fronts over
//!   energy/water/carbon (§6 "co-optimization of multiple sustainability
//!   metrics");
//! * [`geo`] — geo-distributed load balancing baselines (energy-only,
//!   carbon-only, water-only, and a WaterWise-style co-optimizer) over
//!   multiple sites (Takeaway 7);
//! * [`capping`] — Takeaway 5's "water capping": split a constrained
//!   water budget between datacenter cooling and energy generation by
//!   choosing the generation mix;
//! * [`forecast`] — the intensity forecasters a deployed scheduler would
//!   use instead of oracle series (persistence / seasonal-naive /
//!   smoothed), with forecast-regret checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capping;
pub mod deadline;
pub mod forecast;
pub mod geo;
pub mod objective;
pub mod starttime;

pub use capping::{CapOutcome, WaterCapPlanner};
pub use deadline::{DeadlineDecision, DeadlineObjective, DeadlineScheduler};
pub use forecast::Forecaster;
pub use geo::{GeoBalancer, Placement, Policy, SiteSeries};
pub use objective::{MultiObjective, ParetoPoint};
pub use starttime::{StartTimeImpact, StartTimeOptimizer};
