//! Geo-distributed load balancing across HPC sites (Takeaway 7 and the
//! WACE / WaterWise related work).
//!
//! Each hour, a divisible workload of `load_kwh` IT-energy must be placed
//! on one of several sites. Policies:
//!
//! * **EnergyOnly** — minimize facility energy (pick the lowest PUE):
//!   the classical energy-aware baseline the paper warns about;
//! * **CarbonOnly** — minimize `PUE · CI`;
//! * **WaterOnly** — minimize `WI = WUE + PUE·EWF`;
//! * **CoOptimize** — minimize a weighted combination of normalized
//!   water and carbon (WaterWise-style).

use thirstyflops_core::SystemYear;
use thirstyflops_timeseries::{HourlySeries, HOURS_PER_YEAR};
use thirstyflops_units::{GramsCo2, KilowattHours, Liters, Pue};

use crate::objective::MultiObjective;

/// Pre-extracted per-site hourly series used by the balancer.
#[derive(Debug, Clone)]
pub struct SiteSeries {
    /// Site label.
    pub name: String,
    /// Facility PUE.
    pub pue: Pue,
    /// Hourly water intensity, L/kWh (WUE + PUE·EWF).
    pub wi: HourlySeries,
    /// Hourly `PUE·CI`, g/kWh.
    pub effective_ci: HourlySeries,
}

impl SiteSeries {
    /// Extracts balancer inputs from a simulated system-year.
    pub fn from_year(year: &SystemYear) -> Self {
        Self {
            name: year.spec.id.to_string(),
            pue: year.spec.pue,
            wi: year.water_intensity(),
            effective_ci: year.carbon.scale(year.spec.pue.value()),
        }
    }
}

/// A placement policy.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Policy {
    /// Minimize facility energy (lowest PUE wins every hour).
    EnergyOnly,
    /// Minimize effective carbon intensity.
    CarbonOnly,
    /// Minimize water intensity.
    WaterOnly,
    /// Minimize normalized water+carbon blend.
    CoOptimize(MultiObjective),
}

/// Aggregate outcome of a year of placements.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Placement {
    /// Policy used.
    pub policy: Policy,
    /// Total water over the year.
    pub water: Liters,
    /// Total carbon over the year.
    pub carbon: GramsCo2,
    /// Total facility energy over the year.
    pub facility_energy: KilowattHours,
    /// How many hours each site won (same order as the input sites).
    pub hours_per_site: Vec<usize>,
}

/// The geo load balancer.
#[derive(Debug, Clone)]
pub struct GeoBalancer {
    sites: Vec<SiteSeries>,
}

impl GeoBalancer {
    /// Builds from at least two sites.
    pub fn new(sites: Vec<SiteSeries>) -> Result<Self, String> {
        if sites.len() < 2 {
            return Err("geo balancing needs at least two sites".into());
        }
        Ok(Self { sites })
    }

    /// The sites.
    pub fn sites(&self) -> &[SiteSeries] {
        &self.sites
    }

    /// Places `load_kwh` of IT energy every hour of the year according to
    /// `policy` and accumulates the footprint.
    pub fn run_year(&self, load_kwh: f64, policy: Policy) -> Placement {
        // Normalization constants for the co-optimizer: annual mean WI
        // and effective CI across sites.
        let mean_wi: f64 =
            self.sites.iter().map(|s| s.wi.mean()).sum::<f64>() / self.sites.len() as f64;
        let mean_ci: f64 = self
            .sites
            .iter()
            .map(|s| s.effective_ci.mean())
            .sum::<f64>()
            / self.sites.len() as f64;

        let mut water = 0.0;
        let mut carbon = 0.0;
        let mut facility = 0.0;
        let mut hours_per_site = vec![0usize; self.sites.len()];

        for hour in 0..HOURS_PER_YEAR {
            let winner = self.pick(hour, policy, mean_wi, mean_ci);
            let site = &self.sites[winner];
            hours_per_site[winner] += 1;
            water += load_kwh * site.wi.get(hour);
            carbon += load_kwh * site.effective_ci.get(hour);
            facility += load_kwh * site.pue.value();
        }

        Placement {
            policy,
            water: Liters::new(water),
            carbon: GramsCo2::new(carbon),
            facility_energy: KilowattHours::new(facility),
            hours_per_site,
        }
    }

    /// Capacity-constrained placement: each hour the `load_kwh` demand is
    /// spread greedily in policy-score order, but no site may absorb more
    /// than its hourly `capacities[i]` kWh (network, queue, and SLA
    /// limits make single-site placement unrealistic — the WaterWise
    /// framing). Errors if total capacity cannot cover the load.
    pub fn run_year_capped(
        &self,
        load_kwh: f64,
        policy: Policy,
        capacities: &[f64],
    ) -> Result<Placement, String> {
        if capacities.len() != self.sites.len() {
            return Err(format!(
                "{} capacities for {} sites",
                capacities.len(),
                self.sites.len()
            ));
        }
        if capacities.iter().any(|&c| c < 0.0) {
            return Err("capacities must be non-negative".into());
        }
        let total_cap: f64 = capacities.iter().sum();
        if total_cap + 1e-9 < load_kwh {
            return Err(format!(
                "total hourly capacity {total_cap} kWh < load {load_kwh} kWh"
            ));
        }

        let mean_wi: f64 =
            self.sites.iter().map(|s| s.wi.mean()).sum::<f64>() / self.sites.len() as f64;
        let mean_ci: f64 = self
            .sites
            .iter()
            .map(|s| s.effective_ci.mean())
            .sum::<f64>()
            / self.sites.len() as f64;

        let mut water = 0.0;
        let mut carbon = 0.0;
        let mut facility = 0.0;
        let mut hours_per_site = vec![0usize; self.sites.len()];

        for hour in 0..HOURS_PER_YEAR {
            // Order sites by policy score for this hour.
            let mut order: Vec<usize> = (0..self.sites.len()).collect();
            order.sort_by(|&a, &b| {
                self.score(a, hour, policy, mean_wi, mean_ci)
                    .partial_cmp(&self.score(b, hour, policy, mean_wi, mean_ci))
                    .expect("scores are finite")
            });
            let mut remaining = load_kwh;
            for &i in &order {
                if remaining <= 0.0 {
                    break;
                }
                let take = remaining.min(capacities[i]);
                if take <= 0.0 {
                    continue;
                }
                let site = &self.sites[i];
                water += take * site.wi.get(hour);
                carbon += take * site.effective_ci.get(hour);
                facility += take * site.pue.value();
                remaining -= take;
                hours_per_site[i] += 1;
            }
        }

        Ok(Placement {
            policy,
            water: Liters::new(water),
            carbon: GramsCo2::new(carbon),
            facility_energy: KilowattHours::new(facility),
            hours_per_site,
        })
    }

    fn score(&self, i: usize, hour: usize, policy: Policy, mean_wi: f64, mean_ci: f64) -> f64 {
        let s = &self.sites[i];
        match policy {
            Policy::EnergyOnly => s.pue.value(),
            Policy::CarbonOnly => s.effective_ci.get(hour),
            Policy::WaterOnly => s.wi.get(hour),
            Policy::CoOptimize(w) => w.score(
                s.pue.value(),
                s.wi.get(hour) / mean_wi.max(1e-12),
                s.effective_ci.get(hour) / mean_ci.max(1e-12),
            ),
        }
    }

    fn pick(&self, hour: usize, policy: Policy, mean_wi: f64, mean_ci: f64) -> usize {
        let score = |i: usize| -> f64 {
            let s = &self.sites[i];
            match policy {
                Policy::EnergyOnly => s.pue.value(),
                Policy::CarbonOnly => s.effective_ci.get(hour),
                Policy::WaterOnly => s.wi.get(hour),
                Policy::CoOptimize(w) => w.score(
                    s.pue.value(), // energy proxy: PUE (normalized ~1)
                    s.wi.get(hour) / mean_wi.max(1e-12),
                    s.effective_ci.get(hour) / mean_ci.max(1e-12),
                ),
            }
        };
        (0..self.sites.len())
            .min_by(|&a, &b| score(a).partial_cmp(&score(b)).unwrap())
            .expect("at least two sites")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_sites() -> Vec<SiteSeries> {
        // Site A: efficient (PUE 1.1) but thirsty grid; water peaks at
        // midday. Site B: inefficient (PUE 1.6) but water-light; carbon
        // heavy. Site C: middling on both, carbon-light.
        let a = SiteSeries {
            name: "A".into(),
            pue: Pue::new(1.1).unwrap(),
            wi: HourlySeries::from_fn(|h| {
                6.0 + 2.0 * (((h % 24) as f64 - 13.0) / 24.0 * core::f64::consts::TAU).cos()
            }),
            effective_ci: HourlySeries::constant(350.0),
        };
        let b = SiteSeries {
            name: "B".into(),
            pue: Pue::new(1.6).unwrap(),
            wi: HourlySeries::constant(2.0),
            effective_ci: HourlySeries::constant(800.0),
        };
        let c = SiteSeries {
            name: "C".into(),
            pue: Pue::new(1.3).unwrap(),
            wi: HourlySeries::constant(5.0),
            effective_ci: HourlySeries::constant(150.0),
        };
        vec![a, b, c]
    }

    #[test]
    fn each_pure_policy_wins_its_own_metric() {
        let balancer = GeoBalancer::new(synthetic_sites()).unwrap();
        let energy = balancer.run_year(100.0, Policy::EnergyOnly);
        let water = balancer.run_year(100.0, Policy::WaterOnly);
        let carbon = balancer.run_year(100.0, Policy::CarbonOnly);

        // Water-only has the least water; carbon-only the least carbon;
        // energy-only the least facility energy.
        assert!(water.water.value() <= energy.water.value());
        assert!(water.water.value() <= carbon.water.value());
        assert!(carbon.carbon.value() <= energy.carbon.value());
        assert!(carbon.carbon.value() <= water.carbon.value());
        assert!(energy.facility_energy.value() <= water.facility_energy.value());
        assert!(energy.facility_energy.value() <= carbon.facility_energy.value());
    }

    #[test]
    fn takeaway7_energy_optimal_is_not_water_optimal() {
        let balancer = GeoBalancer::new(synthetic_sites()).unwrap();
        let energy = balancer.run_year(100.0, Policy::EnergyOnly);
        let water = balancer.run_year(100.0, Policy::WaterOnly);
        // The energy-aware placement wastes a lot of water vs water-aware.
        assert!(
            energy.water.value() > 1.5 * water.water.value(),
            "energy policy water {} vs water policy {}",
            energy.water,
            water.water
        );
    }

    #[test]
    fn co_optimizer_sits_between_extremes() {
        let balancer = GeoBalancer::new(synthetic_sites()).unwrap();
        let water = balancer.run_year(100.0, Policy::WaterOnly);
        let carbon = balancer.run_year(100.0, Policy::CarbonOnly);
        let co = balancer.run_year(
            100.0,
            Policy::CoOptimize(MultiObjective::new(0.0, 0.5, 0.5).unwrap()),
        );
        // Co-optimized water is no worse than carbon-only's water, and
        // its carbon no worse than water-only's carbon.
        assert!(co.water.value() <= carbon.water.value() + 1e-6);
        assert!(co.carbon.value() <= water.carbon.value() + 1e-6);
    }

    #[test]
    fn placements_cover_every_hour() {
        let balancer = GeoBalancer::new(synthetic_sites()).unwrap();
        let p = balancer.run_year(50.0, Policy::WaterOnly);
        assert_eq!(p.hours_per_site.iter().sum::<usize>(), HOURS_PER_YEAR);
        // Site B (constant 2.0 WI) wins except when A's trough dips
        // below... A's min is 4.0, so B wins always.
        assert_eq!(p.hours_per_site[1], HOURS_PER_YEAR);
    }

    #[test]
    fn capped_placement_spills_to_second_best() {
        let balancer = GeoBalancer::new(synthetic_sites()).unwrap();
        // Site B (the water winner) can only take half the load.
        let uncapped = balancer.run_year(100.0, Policy::WaterOnly);
        let capped = balancer
            .run_year_capped(100.0, Policy::WaterOnly, &[100.0, 50.0, 100.0])
            .unwrap();
        // Capping the winner costs water.
        assert!(capped.water.value() > uncapped.water.value());
        // But the capped plan is still better than ignoring water.
        let energy_capped = balancer
            .run_year_capped(100.0, Policy::EnergyOnly, &[100.0, 50.0, 100.0])
            .unwrap();
        assert!(capped.water.value() < energy_capped.water.value());
        // Multiple sites used every hour.
        assert!(capped.hours_per_site.iter().filter(|&&h| h > 0).count() >= 2);
    }

    #[test]
    fn capped_validation() {
        let balancer = GeoBalancer::new(synthetic_sites()).unwrap();
        assert!(balancer
            .run_year_capped(100.0, Policy::WaterOnly, &[10.0, 10.0])
            .is_err()); // wrong arity
        assert!(balancer
            .run_year_capped(100.0, Policy::WaterOnly, &[10.0, 10.0, 10.0])
            .is_err()); // insufficient capacity
        assert!(balancer
            .run_year_capped(100.0, Policy::WaterOnly, &[-1.0, 200.0, 10.0])
            .is_err()); // negative capacity
    }

    #[test]
    fn capped_with_slack_matches_uncapped() {
        let balancer = GeoBalancer::new(synthetic_sites()).unwrap();
        let uncapped = balancer.run_year(100.0, Policy::CarbonOnly);
        let capped = balancer
            .run_year_capped(100.0, Policy::CarbonOnly, &[1e9, 1e9, 1e9])
            .unwrap();
        assert!((capped.water.value() - uncapped.water.value()).abs() < 1e-6);
        assert!((capped.carbon.value() - uncapped.carbon.value()).abs() < 1e-6);
    }

    #[test]
    fn needs_two_sites() {
        assert!(GeoBalancer::new(vec![]).is_err());
        assert!(GeoBalancer::new(synthetic_sites()[..1].to_vec()).is_err());
    }
}
