//! Start-time ranking (Fig. 13).
//!
//! A fixed-energy job started at hour `t` and running `d` hours costs
//! `E · mean(WI[t .. t+d])` liters and `E · PUE · mean(CI[t .. t+d])`
//! grams. Because WI and CI have different diurnal shapes (cooling peaks
//! mid-afternoon; carbon dips with midday solar), the best start time for
//! water generally differs from the best for carbon — Takeaway 9's case
//! for multi-metric schedulers.

use thirstyflops_timeseries::HourlySeries;
use thirstyflops_units::{GramsCo2, KilowattHours, Liters, Pue};

/// Water/carbon impact of one candidate start time.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StartTimeImpact {
    /// Candidate start hour-of-year.
    pub start_hour: usize,
    /// Water consumed by the run.
    pub water: Liters,
    /// Carbon emitted by the run.
    pub carbon: GramsCo2,
    /// Rank by water (1 = best/lowest water).
    pub water_rank: usize,
    /// Rank by carbon (1 = best/lowest carbon).
    pub carbon_rank: usize,
}

/// Ranks candidate start times for a fixed-energy job.
///
/// ```
/// use thirstyflops_scheduler::StartTimeOptimizer;
/// use thirstyflops_timeseries::HourlySeries;
/// use thirstyflops_units::{KilowattHours, Pue};
///
/// // WI peaks mid-afternoon; CI is flat: the water-optimal start is at night.
/// let wi = HourlySeries::from_fn(|h| {
///     let hod = (h % 24) as f64;
///     4.0 + 2.0 * ((hod - 15.0) / 24.0 * std::f64::consts::TAU).cos()
/// });
/// let ci = HourlySeries::constant(300.0);
/// let opt = StartTimeOptimizer::new(wi, ci, Pue::new(1.1).unwrap());
/// let impacts = opt.evaluate(&[0, 6, 15], 2, KilowattHours::new(100.0)).unwrap();
/// let best = StartTimeOptimizer::best_for_water(&impacts);
/// assert_ne!(best.start_hour, 15); // never the afternoon peak
/// ```
#[derive(Debug, Clone)]
pub struct StartTimeOptimizer {
    wi: HourlySeries,
    ci: HourlySeries,
    pue: Pue,
}

impl StartTimeOptimizer {
    /// Builds from hourly water intensity (WI, L/kWh) and carbon
    /// intensity (CI, g/kWh) forecasts plus the facility PUE.
    pub fn new(wi: HourlySeries, ci: HourlySeries, pue: Pue) -> Self {
        Self { wi, ci, pue }
    }

    /// Evaluates candidate start hours for a job consuming `energy` over
    /// `duration_hours`, returning per-candidate impacts with water and
    /// carbon ranks (1 = best). Candidates wrap around the year boundary.
    pub fn evaluate(
        &self,
        candidates: &[usize],
        duration_hours: usize,
        energy: KilowattHours,
    ) -> Result<Vec<StartTimeImpact>, String> {
        if candidates.is_empty() {
            return Err("no candidate start times".into());
        }
        if duration_hours == 0 {
            return Err("job duration must be positive".into());
        }
        let mut impacts: Vec<StartTimeImpact> = candidates
            .iter()
            .map(|&start| {
                let mean_wi = self.wi.wrapping_window_mean(start, duration_hours);
                let mean_ci = self.ci.wrapping_window_mean(start, duration_hours);
                StartTimeImpact {
                    start_hour: start,
                    water: Liters::new(energy.value() * mean_wi),
                    carbon: GramsCo2::new(energy.value() * self.pue.value() * mean_ci),
                    water_rank: 0,
                    carbon_rank: 0,
                }
            })
            .collect();

        assign_ranks(&mut impacts, |i| i.water.value(), |i, r| i.water_rank = r);
        assign_ranks(&mut impacts, |i| i.carbon.value(), |i, r| i.carbon_rank = r);
        Ok(impacts)
    }

    /// The candidate minimizing water.
    pub fn best_for_water(impacts: &[StartTimeImpact]) -> StartTimeImpact {
        *impacts
            .iter()
            .min_by(|a, b| a.water.value().partial_cmp(&b.water.value()).unwrap())
            .expect("impacts non-empty")
    }

    /// The candidate minimizing carbon.
    pub fn best_for_carbon(impacts: &[StartTimeImpact]) -> StartTimeImpact {
        *impacts
            .iter()
            .min_by(|a, b| a.carbon.value().partial_cmp(&b.carbon.value()).unwrap())
            .expect("impacts non-empty")
    }
}

fn assign_ranks(
    impacts: &mut [StartTimeImpact],
    key: impl Fn(&StartTimeImpact) -> f64,
    set: impl Fn(&mut StartTimeImpact, usize),
) {
    let mut order: Vec<usize> = (0..impacts.len()).collect();
    order.sort_by(|&a, &b| key(&impacts[a]).partial_cmp(&key(&impacts[b])).unwrap());
    for (rank0, &idx) in order.iter().enumerate() {
        set(&mut impacts[idx], rank0 + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// WI peaks at 15:00 (hot afternoons); CI peaks at 21:00 (evening
    /// fossil ramp, solar gone).
    fn optimizer() -> StartTimeOptimizer {
        let wi = HourlySeries::from_fn(|h| {
            let hod = (h % 24) as f64;
            5.0 + 3.0 * ((hod - 15.0) / 24.0 * core::f64::consts::TAU).cos()
        });
        let ci = HourlySeries::from_fn(|h| {
            let hod = (h % 24) as f64;
            400.0 + 150.0 * ((hod - 21.0) / 24.0 * core::f64::consts::TAU).cos()
        });
        StartTimeOptimizer::new(wi, ci, Pue::new(1.05).unwrap())
    }

    #[test]
    fn fig13_best_times_differ_between_metrics() {
        let opt = optimizer();
        // Seven candidate start times over a day, as in the paper.
        let candidates: Vec<usize> = (0..7).map(|i| 100 * 24 + i * 3).collect();
        let impacts = opt
            .evaluate(&candidates, 2, KilowattHours::new(100.0))
            .unwrap();
        let best_water = StartTimeOptimizer::best_for_water(&impacts);
        let best_carbon = StartTimeOptimizer::best_for_carbon(&impacts);
        assert_ne!(
            best_water.start_hour, best_carbon.start_hour,
            "water and carbon optima should differ"
        );
        assert_eq!(best_water.water_rank, 1);
        assert_eq!(best_carbon.carbon_rank, 1);
    }

    #[test]
    fn ranks_are_a_permutation() {
        let opt = optimizer();
        let candidates: Vec<usize> = (0..7).map(|i| i * 4).collect();
        let impacts = opt
            .evaluate(&candidates, 3, KilowattHours::new(50.0))
            .unwrap();
        let mut wr: Vec<usize> = impacts.iter().map(|i| i.water_rank).collect();
        wr.sort_unstable();
        assert_eq!(wr, (1..=7).collect::<Vec<_>>());
        let mut cr: Vec<usize> = impacts.iter().map(|i| i.carbon_rank).collect();
        cr.sort_unstable();
        assert_eq!(cr, (1..=7).collect::<Vec<_>>());
    }

    #[test]
    fn energy_is_start_time_invariant_water_is_not() {
        // The paper: "in all cases, as expected, the miniAMR consumes the
        // same amount of energy" — only water/carbon change with start.
        let opt = optimizer();
        let impacts = opt
            .evaluate(&[0, 6, 12, 18], 2, KilowattHours::new(10.0))
            .unwrap();
        let waters: Vec<f64> = impacts.iter().map(|i| i.water.value()).collect();
        assert!(waters.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9));
    }

    #[test]
    fn window_mean_used_not_point_sample() {
        // A 24 h job averages the whole diurnal cycle: all start times
        // yield (nearly) identical impacts.
        let opt = optimizer();
        let impacts = opt
            .evaluate(&[0, 5, 13, 21], 24, KilowattHours::new(10.0))
            .unwrap();
        let w0 = impacts[0].water.value();
        for i in &impacts {
            assert!((i.water.value() - w0).abs() < 1e-9);
        }
    }

    #[test]
    fn validation() {
        let opt = optimizer();
        assert!(opt.evaluate(&[], 2, KilowattHours::new(1.0)).is_err());
        assert!(opt.evaluate(&[0], 0, KilowattHours::new(1.0)).is_err());
    }
}
