//! Intensity forecasting for schedulers.
//!
//! A real scheduler cannot see tomorrow's WI/CI; it forecasts them. This
//! module provides the standard cheap baselines (persistence,
//! seasonal-naive, smoothed seasonal-naive), an accuracy metric, and a
//! check the paper's Takeaway 9 implies: a start-time decision made from
//! a decent forecast should land close to the oracle decision.

use thirstyflops_timeseries::HourlySeries;

/// A forecasting method producing a full-year forecast series: entry `h`
/// is the forecast *for* hour `h`, made from information before `h`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Forecaster {
    /// Forecast = value one hour earlier.
    Persistence,
    /// Forecast = value 24 h earlier (same hour yesterday) — captures the
    /// diurnal cycle that dominates WI/CI.
    SeasonalNaive,
    /// Forecast = mean of the same hour over the previous `days` days.
    SmoothedSeasonal {
        /// How many previous days to average.
        days: usize,
    },
}

impl Forecaster {
    /// Produces the forecast series for `actual`.
    pub fn forecast(self, actual: &HourlySeries) -> HourlySeries {
        match self {
            Forecaster::Persistence => actual.lagged(1),
            Forecaster::SeasonalNaive => actual.lagged(24),
            Forecaster::SmoothedSeasonal { days } => {
                let days = days.max(1);
                // Mean of the lags {24, 48, …, 24·days}.
                let mut acc = actual.lagged(24);
                for d in 2..=days {
                    acc = acc.add(&actual.lagged(24 * d));
                }
                acc.scale(1.0 / days as f64)
            }
        }
    }

    /// Mean absolute forecast error against the actual series.
    pub fn mae(self, actual: &HourlySeries) -> f64 {
        self.forecast(actual).mae(actual)
    }

    /// Forecast skill relative to persistence: `1 − MAE/MAE_persistence`
    /// (positive = better than persistence).
    pub fn skill(self, actual: &HourlySeries) -> f64 {
        let base = Forecaster::Persistence.mae(actual);
        if base == 0.0 {
            return 0.0;
        }
        1.0 - self.mae(actual) / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::starttime::StartTimeOptimizer;
    use thirstyflops_units::{KilowattHours, Pue};

    /// Strongly diurnal signal plus slow drift and noise-ish texture —
    /// the shape of real WI series.
    fn diurnal_series() -> HourlySeries {
        HourlySeries::from_fn(|h| {
            let hod = (h % 24) as f64;
            let day = (h / 24) as f64;
            5.0 + 3.0 * ((hod - 15.0) / 24.0 * core::f64::consts::TAU).cos()
                + 0.5 * (day / 30.0).sin()
                + 0.2 * (((h * 2654435761) % 97) as f64 / 97.0)
        })
    }

    #[test]
    fn seasonal_naive_beats_persistence_on_diurnal_signals() {
        let s = diurnal_series();
        let p = Forecaster::Persistence.mae(&s);
        let sn = Forecaster::SeasonalNaive.mae(&s);
        assert!(sn < p, "seasonal-naive {sn} vs persistence {p}");
        assert!(Forecaster::SeasonalNaive.skill(&s) > 0.0);
    }

    #[test]
    fn smoothing_helps_when_noise_dominates_drift() {
        // Diurnal cycle + heavy uncorrelated noise, negligible drift: a
        // week of same-hour averaging filters the noise.
        fn hash_noise(h: usize) -> f64 {
            // Full splitmix64 finalizer: decorrelates at every lag.
            let mut x = (h as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        }
        let s = HourlySeries::from_fn(|h| {
            let hod = (h % 24) as f64;
            5.0 + 2.0 * ((hod - 15.0) / 24.0 * core::f64::consts::TAU).cos() + 2.0 * hash_noise(h)
        });
        let one = Forecaster::SeasonalNaive.mae(&s);
        let smooth = Forecaster::SmoothedSeasonal { days: 7 }.mae(&s);
        assert!(smooth < one, "smoothed {smooth} vs naive {one}");
    }

    #[test]
    fn perfect_forecast_of_pure_diurnal_signal() {
        // A signal with an exact 24 h period is forecast perfectly by
        // seasonal-naive.
        let s = HourlySeries::from_fn(|h| ((h % 24) as f64).sin());
        assert!(Forecaster::SeasonalNaive.mae(&s) < 1e-12);
    }

    #[test]
    fn forecast_driven_start_time_is_near_oracle() {
        let wi = diurnal_series();
        let ci = HourlySeries::constant(300.0);
        let pue = Pue::new(1.1).unwrap();
        let energy = KilowattHours::new(100.0);
        let candidates: Vec<usize> = (0..8).map(|i| 200 * 24 + i * 3).collect();

        let oracle = StartTimeOptimizer::new(wi.clone(), ci.clone(), pue);
        let oracle_impacts = oracle.evaluate(&candidates, 3, energy).unwrap();
        let oracle_best = StartTimeOptimizer::best_for_water(&oracle_impacts);

        let forecast_wi = Forecaster::SmoothedSeasonal { days: 7 }.forecast(&wi);
        let forecaster = StartTimeOptimizer::new(forecast_wi, ci, pue);
        let forecast_impacts = forecaster.evaluate(&candidates, 3, energy).unwrap();
        let forecast_best = StartTimeOptimizer::best_for_water(&forecast_impacts);

        // The forecast-chosen slot's *actual* water is within 10 % of the
        // oracle optimum.
        let actual_of = |start: usize| {
            oracle_impacts
                .iter()
                .find(|i| i.start_hour == start)
                .unwrap()
                .water
                .value()
        };
        let regret = actual_of(forecast_best.start_hour) / actual_of(oracle_best.start_hour);
        assert!(regret < 1.10, "forecast regret {regret}");
    }

    #[test]
    fn smoothed_seasonal_clamps_zero_days() {
        let s = diurnal_series();
        let a = Forecaster::SmoothedSeasonal { days: 0 }.forecast(&s);
        let b = Forecaster::SeasonalNaive.forecast(&s);
        assert_eq!(a.values(), b.values());
    }
}
