//! Deadline-constrained water-aware scheduling: the WACE-style question —
//! how much water does a little start-time slack buy?
//!
//! A job submitted at hour `t` with `slack` hours of acceptable delay may
//! start anywhere in `[t, t + slack]`. The scheduler picks the start
//! minimizing water (or carbon) inside the window; the saving relative to
//! starting immediately grows with slack until the full diurnal cycle is
//! reachable (~24 h), after which returns flatten — exactly the shape the
//! WACE paper reports ("minor increases in job delays" buy most of the
//! benefit).

use thirstyflops_timeseries::{HourlySeries, HOURS_PER_YEAR};
use thirstyflops_units::{KilowattHours, Pue};

use crate::starttime::{StartTimeImpact, StartTimeOptimizer};

/// Which metric the deadline scheduler minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DeadlineObjective {
    /// Minimize water.
    Water,
    /// Minimize carbon.
    Carbon,
}

/// Result of a slack-window scheduling decision.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DeadlineDecision {
    /// Chosen start hour.
    pub start_hour: usize,
    /// Delay versus immediate start, hours.
    pub delay_hours: usize,
    /// Impact of the chosen start.
    pub chosen: StartTimeImpact,
    /// Impact of starting immediately (the baseline).
    pub immediate: StartTimeImpact,
}

impl DeadlineDecision {
    /// Relative water saving vs starting immediately, in `[0, 1)`.
    pub fn water_saving(&self) -> f64 {
        let base = self.immediate.water.value();
        if base <= 0.0 {
            return 0.0;
        }
        1.0 - self.chosen.water.value() / base
    }

    /// Relative carbon saving vs starting immediately.
    pub fn carbon_saving(&self) -> f64 {
        let base = self.immediate.carbon.value();
        if base <= 0.0 {
            return 0.0;
        }
        1.0 - self.chosen.carbon.value() / base
    }
}

/// Deadline-window scheduler over WI/CI forecasts.
#[derive(Debug, Clone)]
pub struct DeadlineScheduler {
    optimizer: StartTimeOptimizer,
}

impl DeadlineScheduler {
    /// Builds from hourly WI (L/kWh) and CI (g/kWh) series plus PUE.
    pub fn new(wi: HourlySeries, ci: HourlySeries, pue: Pue) -> Self {
        Self {
            optimizer: StartTimeOptimizer::new(wi, ci, pue),
        }
    }

    /// Chooses a start in `[submit, submit + slack]` minimizing the
    /// objective for a job of `duration_hours` consuming `energy`.
    pub fn schedule(
        &self,
        submit_hour: usize,
        slack_hours: usize,
        duration_hours: usize,
        energy: KilowattHours,
        objective: DeadlineObjective,
    ) -> Result<DeadlineDecision, String> {
        if submit_hour >= HOURS_PER_YEAR {
            return Err(format!("submit hour {submit_hour} outside the year"));
        }
        let candidates: Vec<usize> = (0..=slack_hours)
            .map(|d| (submit_hour + d) % HOURS_PER_YEAR)
            .collect();
        let impacts = self
            .optimizer
            .evaluate(&candidates, duration_hours, energy)?;
        let immediate = impacts[0];
        let chosen = match objective {
            DeadlineObjective::Water => StartTimeOptimizer::best_for_water(&impacts),
            DeadlineObjective::Carbon => StartTimeOptimizer::best_for_carbon(&impacts),
        };
        let delay = (chosen.start_hour + HOURS_PER_YEAR - submit_hour) % HOURS_PER_YEAR;
        Ok(DeadlineDecision {
            start_hour: chosen.start_hour,
            delay_hours: delay,
            chosen,
            immediate,
        })
    }

    /// The slack-vs-saving curve: mean water saving over many submit
    /// hours, per slack value. This is the WACE-style figure.
    pub fn saving_curve(
        &self,
        slacks: &[usize],
        duration_hours: usize,
        energy: KilowattHours,
        submit_stride: usize,
    ) -> Result<Vec<(usize, f64)>, String> {
        if submit_stride == 0 {
            return Err("submit stride must be positive".into());
        }
        let mut curve = Vec::with_capacity(slacks.len());
        for &slack in slacks {
            let mut total = 0.0;
            let mut n = 0.0;
            let mut submit = 0usize;
            while submit < HOURS_PER_YEAR {
                let d = self.schedule(
                    submit,
                    slack,
                    duration_hours,
                    energy,
                    DeadlineObjective::Water,
                )?;
                total += d.water_saving();
                n += 1.0;
                submit += submit_stride;
            }
            curve.push((slack, total / n));
        }
        Ok(curve)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler() -> DeadlineScheduler {
        // Diurnal WI peaking at 15:00, CI peaking at 21:00.
        let wi = HourlySeries::from_fn(|h| {
            let hod = (h % 24) as f64;
            5.0 + 3.0 * ((hod - 15.0) / 24.0 * core::f64::consts::TAU).cos()
        });
        let ci = HourlySeries::from_fn(|h| {
            let hod = (h % 24) as f64;
            400.0 + 150.0 * ((hod - 21.0) / 24.0 * core::f64::consts::TAU).cos()
        });
        DeadlineScheduler::new(wi, ci, Pue::new(1.1).unwrap())
    }

    #[test]
    fn zero_slack_means_immediate_start() {
        let s = scheduler();
        let d = s
            .schedule(
                1000,
                0,
                2,
                KilowattHours::new(10.0),
                DeadlineObjective::Water,
            )
            .unwrap();
        assert_eq!(d.delay_hours, 0);
        assert_eq!(d.start_hour, 1000);
        assert_eq!(d.water_saving(), 0.0);
    }

    #[test]
    fn saving_grows_with_slack_then_saturates() {
        let s = scheduler();
        let curve = s
            .saving_curve(&[0, 3, 6, 12, 24, 48], 2, KilowattHours::new(10.0), 97)
            .unwrap();
        // Monotone non-decreasing.
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9, "{curve:?}");
        }
        // Zero slack saves nothing; full-day slack saves substantially.
        assert_eq!(curve[0].1, 0.0);
        let day = curve.iter().find(|(s, _)| *s == 24).unwrap().1;
        assert!(day > 0.15, "24h slack saves {day}");
        // Beyond one day the diurnal cycle is already covered: marginal
        // gain is small.
        let two_day = curve.iter().find(|(s, _)| *s == 48).unwrap().1;
        assert!(two_day - day < 0.05, "returns should flatten: {curve:?}");
    }

    #[test]
    fn chosen_start_respects_deadline() {
        let s = scheduler();
        for slack in [1usize, 5, 13] {
            let d = s
                .schedule(
                    500,
                    slack,
                    3,
                    KilowattHours::new(5.0),
                    DeadlineObjective::Water,
                )
                .unwrap();
            assert!(d.delay_hours <= slack);
            // Chosen is never worse than immediate.
            assert!(d.chosen.water.value() <= d.immediate.water.value() + 1e-9);
        }
    }

    #[test]
    fn carbon_objective_optimizes_carbon() {
        let s = scheduler();
        // Submit near the CI peak (21:00) so delaying pays.
        let d = s
            .schedule(
                2012,
                23,
                2,
                KilowattHours::new(10.0),
                DeadlineObjective::Carbon,
            )
            .unwrap();
        assert!(d.carbon_saving() > 0.0);
        assert!(d.chosen.carbon.value() <= d.immediate.carbon.value());
    }

    #[test]
    fn validation() {
        let s = scheduler();
        assert!(s
            .schedule(
                9000,
                1,
                1,
                KilowattHours::new(1.0),
                DeadlineObjective::Water
            )
            .is_err());
        assert!(s
            .saving_curve(&[0, 1], 1, KilowattHours::new(1.0), 0)
            .is_err());
    }

    #[test]
    fn window_wraps_the_year_boundary() {
        let s = scheduler();
        let d = s
            .schedule(
                HOURS_PER_YEAR - 2,
                10,
                2,
                KilowattHours::new(5.0),
                DeadlineObjective::Water,
            )
            .unwrap();
        assert!(d.delay_hours <= 10);
    }
}
