//! Multi-objective scalarization and Pareto fronts over
//! (energy, water, carbon) — §6(a)'s "adjustable weights" hook.

use thirstyflops_units::Fraction;

/// Weights over the three sustainability metrics, summing to one.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MultiObjective {
    /// Weight on energy.
    pub energy: Fraction,
    /// Weight on water.
    pub water: Fraction,
    /// Weight on carbon.
    pub carbon: Fraction,
}

impl MultiObjective {
    /// Builds a weight vector; the three weights must sum to 1 (±1e-6).
    pub fn new(energy: f64, water: f64, carbon: f64) -> Result<Self, String> {
        let sum = energy + water + carbon;
        if (sum - 1.0).abs() > 1e-6 {
            return Err(format!("weights sum to {sum}, expected 1"));
        }
        Ok(Self {
            energy: Fraction::new(energy).map_err(|e| e.to_string())?,
            water: Fraction::new(water).map_err(|e| e.to_string())?,
            carbon: Fraction::new(carbon).map_err(|e| e.to_string())?,
        })
    }

    /// Pure single-metric objectives.
    pub fn energy_only() -> Self {
        Self::new(1.0, 0.0, 0.0).expect("static weights")
    }

    /// Water-only weights.
    pub fn water_only() -> Self {
        Self::new(0.0, 1.0, 0.0).expect("static weights")
    }

    /// Carbon-only weights.
    pub fn carbon_only() -> Self {
        Self::new(0.0, 0.0, 1.0).expect("static weights")
    }

    /// Equal thirds.
    pub fn balanced() -> Self {
        Self::new(1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0).expect("static weights")
    }

    /// Scalarizes *normalized* metric values (each in comparable units,
    /// lower = better).
    pub fn score(&self, energy: f64, water: f64, carbon: f64) -> f64 {
        self.energy.value() * energy + self.water.value() * water + self.carbon.value() * carbon
    }
}

/// A candidate with its three metric values (lower is better on each).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ParetoPoint<T> {
    /// The candidate payload (a schedule, a site, a start time…).
    pub candidate: T,
    /// Energy metric.
    pub energy: f64,
    /// Water metric.
    pub water: f64,
    /// Carbon metric.
    pub carbon: f64,
}

impl<T> ParetoPoint<T> {
    /// True if `self` dominates `other` (no worse on all metrics, better
    /// on at least one).
    pub fn dominates(&self, other: &Self) -> bool {
        let no_worse =
            self.energy <= other.energy && self.water <= other.water && self.carbon <= other.carbon;
        let better =
            self.energy < other.energy || self.water < other.water || self.carbon < other.carbon;
        no_worse && better
    }
}

/// Extracts the Pareto-efficient subset (indices into `points`).
pub fn pareto_front<T>(points: &[ParetoPoint<T>]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, p)| j != i && p.dominates(&points[i]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_validate() {
        assert!(MultiObjective::new(0.5, 0.3, 0.2).is_ok());
        assert!(MultiObjective::new(0.5, 0.5, 0.5).is_err());
        assert!(MultiObjective::new(1.2, -0.2, 0.0).is_err());
    }

    #[test]
    fn single_metric_objectives_ignore_others() {
        let w = MultiObjective::water_only();
        assert_eq!(w.score(100.0, 2.0, 500.0), 2.0);
        let e = MultiObjective::energy_only();
        assert_eq!(e.score(100.0, 2.0, 500.0), 100.0);
        let c = MultiObjective::carbon_only();
        assert_eq!(c.score(100.0, 2.0, 500.0), 500.0);
    }

    #[test]
    fn balanced_score_is_mean() {
        let b = MultiObjective::balanced();
        assert!((b.score(3.0, 6.0, 9.0) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn dominance_and_front() {
        let points = vec![
            ParetoPoint {
                candidate: "a",
                energy: 1.0,
                water: 5.0,
                carbon: 3.0,
            },
            ParetoPoint {
                candidate: "b",
                energy: 2.0,
                water: 2.0,
                carbon: 2.0,
            },
            ParetoPoint {
                candidate: "c",
                energy: 3.0,
                water: 3.0,
                carbon: 3.0,
            }, // dominated by b
            ParetoPoint {
                candidate: "d",
                energy: 0.5,
                water: 9.0,
                carbon: 9.0,
            },
        ];
        assert!(points[1].dominates(&points[2]));
        assert!(!points[0].dominates(&points[1]));
        let front = pareto_front(&points);
        assert_eq!(front, vec![0, 1, 3]);
    }

    #[test]
    fn identical_points_do_not_dominate_each_other() {
        let a = ParetoPoint {
            candidate: 1,
            energy: 1.0,
            water: 1.0,
            carbon: 1.0,
        };
        let b = ParetoPoint {
            candidate: 2,
            energy: 1.0,
            water: 1.0,
            carbon: 1.0,
        };
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
        let front = pareto_front(&[a, b]);
        assert_eq!(front.len(), 2);
    }
}
