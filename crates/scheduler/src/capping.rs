//! Water capping (Takeaway 5): when water is a constrained shared
//! resource, the facility and the power provider must decide how much
//! goes to cooling and how much to generation.
//!
//! Given an hourly IT demand `E` (kWh), the facility's current WUE
//! (cooling water per kWh — weather-driven, not a choice), a PUE, and a
//! menu of generation sources with per-source EWF/CI and capacity caps,
//! the planner chooses the generation mix that **minimizes carbon subject
//! to a total water budget** `E·WUE + E·PUE·Σ mix·EWF ≤ budget`.
//!
//! The solver is exact for this structure: it starts from the
//! carbon-greedy dispatch and, while the budget is violated, re-dispatches
//! marginal energy along the best Δcarbon/Δwater trade — a classic
//! two-resource exchange argument.

use thirstyflops_grid::EnergySource;
use thirstyflops_units::{KilowattHours, Liters, LitersPerKilowattHour, Pue};

/// One generation option available to the power provider this hour.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SourceOffer {
    /// The technology.
    pub source: EnergySource,
    /// Maximum energy available from it this hour, kWh (at the grid
    /// feeding this facility).
    pub capacity_kwh: f64,
}

/// Outcome of a capped dispatch.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CapOutcome {
    /// Chosen dispatch, kWh per source (same order as the offers).
    pub dispatch_kwh: Vec<f64>,
    /// Cooling water (fixed by weather).
    pub cooling_water: Liters,
    /// Generation water under the chosen dispatch.
    pub generation_water: Liters,
    /// Carbon emitted, grams.
    pub carbon_g: f64,
    /// True if the budget was satisfiable at all.
    pub feasible: bool,
}

impl CapOutcome {
    /// Total water use.
    pub fn total_water(&self) -> Liters {
        self.cooling_water + self.generation_water
    }
}

/// The water-cap dispatch planner.
#[derive(Debug, Clone)]
pub struct WaterCapPlanner {
    /// Facility PUE.
    pub pue: Pue,
}

impl WaterCapPlanner {
    /// A planner for a facility with the given PUE.
    pub fn new(pue: Pue) -> Self {
        Self { pue }
    }

    /// Dispatches `it_energy` of IT demand against `offers` under a total
    /// water `budget`, at the current weather-driven `wue`.
    ///
    /// Returns an error if the offers cannot cover the demand at all; if
    /// the demand is coverable but the budget is not satisfiable even by
    /// the water-min dispatch, `feasible = false` and the water-min
    /// dispatch is returned (the best the operators can do).
    pub fn dispatch(
        &self,
        it_energy: KilowattHours,
        wue: LitersPerKilowattHour,
        offers: &[SourceOffer],
        budget: Liters,
    ) -> Result<CapOutcome, String> {
        let demand = it_energy.value() * self.pue.value(); // generation must cover PUE overhead
        let total_capacity: f64 = offers.iter().map(|o| o.capacity_kwh).sum();
        if total_capacity + 1e-9 < demand {
            return Err(format!(
                "offers cover {total_capacity} kWh but demand is {demand} kWh"
            ));
        }
        if offers.iter().any(|o| o.capacity_kwh < 0.0) {
            return Err("negative capacity".into());
        }

        let cooling = it_energy.value() * wue.value();
        let gen_budget = budget.value() - cooling;

        // Start carbon-greedy: fill sources in ascending carbon intensity.
        let mut order: Vec<usize> = (0..offers.len()).collect();
        order.sort_by(|&a, &b| {
            offers[a]
                .source
                .carbon_intensity()
                .value()
                .partial_cmp(&offers[b].source.carbon_intensity().value())
                .unwrap()
        });
        let mut dispatch = vec![0.0; offers.len()];
        let mut remaining = demand;
        for &i in &order {
            let take = offers[i].capacity_kwh.min(remaining);
            dispatch[i] = take;
            remaining -= take;
            if remaining <= 1e-12 {
                break;
            }
        }

        // Exchange loop: while the water budget is violated, move energy
        // from the dispatched source with the highest EWF to the
        // undispatched capacity with the lowest EWF, preferring moves
        // with the least carbon increase per liter saved.
        let water_of = |d: &[f64]| -> f64 {
            d.iter()
                .zip(offers)
                .map(|(&kwh, o)| kwh * o.source.ewf().value())
                .sum()
        };
        let mut guard = 0;
        while water_of(&dispatch) > gen_budget + 1e-9 {
            guard += 1;
            if guard > 10_000 {
                break;
            }
            // Best exchange: (from, to) minimizing Δcarbon/Δwater with
            // Δwater > 0.
            let mut best: Option<(usize, usize, f64)> = None;
            for from in 0..offers.len() {
                if dispatch[from] <= 1e-12 {
                    continue;
                }
                for to in 0..offers.len() {
                    if to == from || dispatch[to] + 1e-12 >= offers[to].capacity_kwh {
                        continue;
                    }
                    let d_water =
                        offers[from].source.ewf().value() - offers[to].source.ewf().value();
                    if d_water <= 1e-12 {
                        continue;
                    }
                    let d_carbon = offers[to].source.carbon_intensity().value()
                        - offers[from].source.carbon_intensity().value();
                    let rate = d_carbon / d_water;
                    if best.is_none() || rate < best.unwrap().2 {
                        best = Some((from, to, rate));
                    }
                }
            }
            let Some((from, to, _)) = best else {
                break; // already at the water-min dispatch
            };
            // Move as much as useful: bounded by the donor's dispatch, the
            // receiver's headroom, and the amount needed to meet budget.
            let d_water_rate = offers[from].source.ewf().value() - offers[to].source.ewf().value();
            let needed = (water_of(&dispatch) - gen_budget) / d_water_rate;
            let movable = dispatch[from]
                .min(offers[to].capacity_kwh - dispatch[to])
                .min(needed.max(0.0));
            if movable <= 1e-12 {
                break;
            }
            dispatch[from] -= movable;
            dispatch[to] += movable;
        }

        let generation_water = water_of(&dispatch);
        let carbon_g: f64 = dispatch
            .iter()
            .zip(offers)
            .map(|(&kwh, o)| kwh * o.source.carbon_intensity().value())
            .sum();
        let feasible = cooling + generation_water <= budget.value() + 1e-6;

        Ok(CapOutcome {
            dispatch_kwh: dispatch,
            cooling_water: Liters::new(cooling),
            generation_water: Liters::new(generation_water),
            carbon_g,
            feasible,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offers() -> Vec<SourceOffer> {
        vec![
            SourceOffer {
                source: EnergySource::Hydro,
                capacity_kwh: 1000.0,
            }, // low C, high W
            SourceOffer {
                source: EnergySource::Nuclear,
                capacity_kwh: 1000.0,
            }, // low C, mid W
            SourceOffer {
                source: EnergySource::Gas,
                capacity_kwh: 1000.0,
            }, // mid C, low W
            SourceOffer {
                source: EnergySource::Wind,
                capacity_kwh: 200.0,
            }, // low C, ~no W
        ]
    }

    fn planner() -> WaterCapPlanner {
        WaterCapPlanner::new(Pue::new(1.2).unwrap())
    }

    #[test]
    fn unconstrained_budget_gives_carbon_greedy_dispatch() {
        let out = planner()
            .dispatch(
                KilowattHours::new(1000.0),
                LitersPerKilowattHour::new(2.0),
                &offers(),
                Liters::new(1e9),
            )
            .unwrap();
        assert!(out.feasible);
        // Carbon-greedy: wind (11) then nuclear (12) then hydro (24) fill
        // the 1200 kWh facility demand before gas (490).
        assert_eq!(out.dispatch_kwh[3], 200.0); // wind exhausted
        assert_eq!(out.dispatch_kwh[1], 1000.0); // nuclear exhausted
        assert!((out.dispatch_kwh[0] - 0.0).abs() < 1e-9 || out.dispatch_kwh[0] > 0.0);
        let total: f64 = out.dispatch_kwh.iter().sum();
        assert!((total - 1200.0).abs() < 1e-6);
        assert_eq!(out.dispatch_kwh[2], 0.0, "gas unused when budget is loose");
    }

    #[test]
    fn takeaway5_tight_budget_shifts_to_low_water_sources_at_carbon_cost() {
        let p = planner();
        let e = KilowattHours::new(1000.0);
        let wue = LitersPerKilowattHour::new(2.0);
        let loose = p.dispatch(e, wue, &offers(), Liters::new(1e9)).unwrap();
        // Budget: cooling 2000 L + a tight generation allowance.
        let tight = p.dispatch(e, wue, &offers(), Liters::new(4500.0)).unwrap();
        assert!(tight.feasible, "tight budget should still be feasible");
        assert!(tight.total_water().value() <= 4500.0 + 1e-6);
        // Water went down, carbon went up.
        assert!(tight.generation_water.value() < loose.generation_water.value());
        assert!(tight.carbon_g > loose.carbon_g);
        // The shift lands on gas (low EWF, higher CI).
        assert!(tight.dispatch_kwh[2] > 0.0);
    }

    #[test]
    fn hot_day_leaves_less_water_for_generation() {
        // Same budget, higher WUE (hotter weather) ⇒ generation must get
        // even more water-frugal ⇒ more carbon.
        let p = planner();
        let e = KilowattHours::new(1000.0);
        let budget = Liters::new(6000.0);
        let cool = p
            .dispatch(e, LitersPerKilowattHour::new(1.0), &offers(), budget)
            .unwrap();
        let hot = p
            .dispatch(e, LitersPerKilowattHour::new(3.5), &offers(), budget)
            .unwrap();
        assert!(
            hot.carbon_g >= cool.carbon_g,
            "hot {} vs cool {}",
            hot.carbon_g,
            cool.carbon_g
        );
        assert!(hot.generation_water.value() <= cool.generation_water.value());
    }

    #[test]
    fn infeasible_budget_reports_water_min_dispatch() {
        let p = planner();
        let out = p
            .dispatch(
                KilowattHours::new(1000.0),
                LitersPerKilowattHour::new(5.0),
                &offers(),
                Liters::new(100.0), // less than cooling alone
            )
            .unwrap();
        assert!(!out.feasible);
        // The dispatch is still water-minimal: hydro unused.
        assert!(out.dispatch_kwh[0] < 1e-9);
    }

    #[test]
    fn insufficient_capacity_errors() {
        let p = planner();
        let small = vec![SourceOffer {
            source: EnergySource::Gas,
            capacity_kwh: 10.0,
        }];
        assert!(p
            .dispatch(
                KilowattHours::new(1000.0),
                LitersPerKilowattHour::new(1.0),
                &small,
                Liters::new(1e9)
            )
            .is_err());
    }

    #[test]
    fn dispatch_meets_facility_demand_exactly() {
        let p = planner();
        let out = p
            .dispatch(
                KilowattHours::new(500.0),
                LitersPerKilowattHour::new(2.0),
                &offers(),
                Liters::new(3000.0),
            )
            .unwrap();
        let total: f64 = out.dispatch_kwh.iter().sum();
        assert!((total - 600.0).abs() < 1e-6); // 500 × PUE 1.2
    }
}
