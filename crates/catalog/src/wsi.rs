//! Water scarcity index tables at country, state, and county granularity.
//!
//! The paper uses AWARE / AWARE-US characterization factors. We embed an
//! AWARE-global-like snapshot on a 0–1 scale for the locations the
//! analysis touches (Fig. 8(b)) plus all US states (Fig. 1(b)), and
//! synthesize county-level fields (Fig. 10) as a seeded, spatially
//! correlated random walk around the state mean — reproducing the paper's
//! point that WSI varies significantly even at kilometer scale, without
//! the licensed raster.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thirstyflops_units::WaterScarcityIndex;

/// Country-level AWARE-like WSI snapshot.
pub fn country_wsi(country: &str) -> Option<WaterScarcityIndex> {
    let v = match country {
        "Italy" => 0.35,
        "Japan" => 0.13,
        "United States" | "US" | "USA" => 0.30,
        "Germany" => 0.12,
        "France" => 0.18,
        "Spain" => 0.55,
        "India" => 0.75,
        "China" => 0.45,
        "Australia" => 0.60,
        "Finland" => 0.04,
        "Switzerland" => 0.08,
        "Saudi Arabia" => 0.97,
        "Somalia" => 0.90,
        "Ethiopia" => 0.80,
        _ => return None,
    };
    Some(WaterScarcityIndex::new(v).expect("static WSI is non-negative"))
}

/// State-level WSI for all 50 US states (+ DC), 0–1 scale.
///
/// The spatial pattern follows AWARE-US: the arid Southwest and High
/// Plains are scarce; the Southeast and Pacific Northwest are wet.
pub fn state_wsi(abbr: &str) -> Option<WaterScarcityIndex> {
    let v = match abbr {
        "AL" => 0.12,
        "AK" => 0.02,
        "AZ" => 0.92,
        "AR" => 0.15,
        "CA" => 0.78,
        "CO" => 0.70,
        "CT" => 0.12,
        "DC" => 0.15,
        "DE" => 0.18,
        "FL" => 0.25,
        "GA" => 0.20,
        "HI" => 0.30,
        "ID" => 0.45,
        "IL" => 0.50,
        "IN" => 0.35,
        "IA" => 0.38,
        "KS" => 0.68,
        "KY" => 0.15,
        "LA" => 0.10,
        "ME" => 0.04,
        "MD" => 0.18,
        "MA" => 0.10,
        "MI" => 0.08,
        "MN" => 0.20,
        "MS" => 0.10,
        "MO" => 0.28,
        "MT" => 0.35,
        "NE" => 0.60,
        "NV" => 0.95,
        "NH" => 0.05,
        "NJ" => 0.20,
        "NM" => 0.90,
        "NY" => 0.10,
        "NC" => 0.18,
        "ND" => 0.40,
        "OH" => 0.22,
        "OK" => 0.55,
        "OR" => 0.25,
        "PA" => 0.14,
        "RI" => 0.10,
        "SC" => 0.18,
        "SD" => 0.45,
        "TN" => 0.28,
        "TX" => 0.72,
        "UT" => 0.88,
        "VT" => 0.05,
        "VA" => 0.16,
        "WA" => 0.22,
        "WV" => 0.10,
        "WI" => 0.15,
        "WY" => 0.55,
        _ => return None,
    };
    Some(WaterScarcityIndex::new(v).expect("static WSI is non-negative"))
}

/// All 50 state abbreviations + DC.
pub const STATE_ABBRS: [&str; 51] = [
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DC", "DE", "FL", "GA", "HI", "ID", "IL", "IN", "IA",
    "KS", "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ", "NM",
    "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT", "VT", "VA", "WA",
    "WV", "WI", "WY",
];

/// A synthetic county-level WSI field for one state (Fig. 10).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CountyWsiField {
    state: String,
    values: Vec<f64>,
}

impl CountyWsiField {
    /// Generates `n_counties` county WSIs for `state_abbr`, spatially
    /// correlated (random walk along a space-filling county ordering) and
    /// re-centered on the state mean. Deterministic for a given seed.
    pub fn generate(state_abbr: &str, n_counties: usize, seed: u64) -> Option<Self> {
        let mean = state_wsi(state_abbr)?.value();
        assert!(n_counties > 0, "a state has at least one county");
        let mut rng = StdRng::seed_from_u64(seed ^ hash_str(state_abbr));
        // Random walk with reversion toward the state mean; step size
        // scales with the mean so scarce states also vary more in
        // absolute terms (matching the AWARE-US rasters).
        let step = 0.18 * mean.max(0.05);
        let mut x = mean;
        let mut values = Vec::with_capacity(n_counties);
        for _ in 0..n_counties {
            let drift = 0.25 * (mean - x);
            x = (x + drift + (rng.random::<f64>() - 0.5) * 2.0 * step).max(0.005);
            values.push(x);
        }
        // Re-center so the county mean equals the state value.
        let actual_mean = values.iter().sum::<f64>() / n_counties as f64;
        let shift = mean - actual_mean;
        for v in &mut values {
            *v = (*v + shift).max(0.005);
        }
        Some(Self {
            state: state_abbr.to_string(),
            values,
        })
    }

    /// The state abbreviation.
    pub fn state(&self) -> &str {
        &self.state
    }

    /// County WSI values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Minimum county WSI.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum county WSI.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean county WSI (≈ the state WSI by construction).
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Relative spread `(max − min) / mean` — the "significant variation
    /// even at a kilometer scale" of Takeaway 6.
    pub fn relative_spread(&self) -> f64 {
        (self.max() - self.min()) / self.mean().max(1e-9)
    }
}

fn hash_str(s: &str) -> u64 {
    // FNV-1a, good enough to decorrelate state seeds.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8b_site_ordering() {
        // Illinois (Chicago area) scarcer than Tennessee; Italy scarcer
        // than Japan.
        assert!(state_wsi("IL").unwrap().value() > state_wsi("TN").unwrap().value());
        assert!(country_wsi("Italy").unwrap().value() > country_wsi("Japan").unwrap().value());
    }

    #[test]
    fn all_states_have_values() {
        for abbr in STATE_ABBRS {
            let v = state_wsi(abbr).unwrap().value();
            assert!((0.0..=1.0).contains(&v), "{abbr}: {v}");
        }
        assert!(state_wsi("ZZ").is_none());
        assert!(country_wsi("Atlantis").is_none());
    }

    #[test]
    fn southwest_is_scarcer_than_northeast() {
        for dry in ["AZ", "NV", "NM", "UT", "CA"] {
            for wet in ["ME", "VT", "NH", "NY", "WV"] {
                assert!(
                    state_wsi(dry).unwrap().value() > state_wsi(wet).unwrap().value(),
                    "{dry} vs {wet}"
                );
            }
        }
    }

    #[test]
    fn county_fields_center_on_state_mean() {
        let il = CountyWsiField::generate("IL", 102, 7).unwrap();
        assert_eq!(il.values().len(), 102);
        assert!((il.mean() - 0.50).abs() < 1e-9);
        let tn = CountyWsiField::generate("TN", 95, 7).unwrap();
        assert!((tn.mean() - 0.28).abs() < 1e-9);
        // Fig. 10: both states show significant internal variation.
        assert!(
            il.relative_spread() > 0.3,
            "IL spread {}",
            il.relative_spread()
        );
        assert!(
            tn.relative_spread() > 0.3,
            "TN spread {}",
            tn.relative_spread()
        );
        // All values positive.
        assert!(il.min() > 0.0 && tn.min() > 0.0);
    }

    #[test]
    fn county_fields_are_deterministic_and_seed_sensitive() {
        let a = CountyWsiField::generate("IL", 102, 7).unwrap();
        let b = CountyWsiField::generate("IL", 102, 7).unwrap();
        assert_eq!(a, b);
        let c = CountyWsiField::generate("IL", 102, 8).unwrap();
        assert_ne!(a, c);
        // Different states decorrelate even with the same seed.
        let tn = CountyWsiField::generate("TN", 102, 7).unwrap();
        assert_ne!(a.values()[0], tn.values()[0]);
    }

    #[test]
    fn unknown_state_yields_none() {
        assert!(CountyWsiField::generate("XX", 10, 1).is_none());
    }
}
