//! Synthetic fleet generation: §6(b)'s "ThirstyFLOPS is not restricted to
//! only the systems evaluated in the paper" made concrete.
//!
//! [`synthesize_fleet`] samples plausible systems around the cataloged
//! archetypes (scaled node counts, perturbed PUE/utilization, resized
//! storage) so Water500-style rankings and policy studies can run over a
//! population instead of four machines.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thirstyflops_units::Pue;

use crate::systems::{SystemId, SystemSpec};

/// Generates `n` synthetic system specifications, deterministically for a
/// seed. Each entry is derived from a cataloged archetype (its `id` field
/// records which) with:
///
/// * node count scaled by 0.05–0.6× (capped at 20 000 nodes so the
///   cluster simulation stays cheap);
/// * PUE perturbed within ±0.15 (floored at 1.03);
/// * mean utilization drawn from 0.55–0.90;
/// * storage tiers scaled with the node count;
/// * a generated operator name (`Synth-03 (Frontier-class)`).
pub fn synthesize_fleet(n: usize, seed: u64) -> Vec<SystemSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let archetypes = [
        SystemId::Marconi,
        SystemId::Fugaku,
        SystemId::Polaris,
        SystemId::Frontier,
        SystemId::Aurora,
        SystemId::ElCapitan,
    ];
    (0..n)
        .map(|i| {
            let archetype = archetypes[rng.random_range(0..archetypes.len())];
            let mut spec = SystemSpec::reference(archetype);
            let scale: f64 = rng.random_range(0.05..0.6);
            spec.nodes = ((spec.nodes as f64 * scale) as u32).clamp(64, 20_000);
            let pue = (spec.pue.value() + rng.random_range(-0.15..0.15)).max(1.03);
            spec.pue = Pue::new(pue).expect("floored at 1.03");
            spec.mean_utilization = rng.random_range(0.55..0.90);
            spec.storage.hdd_pb *= scale;
            spec.storage.ssd_pb *= scale;
            spec.operator = format!("Synth-{i:02} ({archetype}-class)");
            spec
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_is_deterministic_and_valid() {
        let a = synthesize_fleet(12, 5);
        let b = synthesize_fleet(12, 5);
        assert_eq!(a, b);
        let c = synthesize_fleet(12, 6);
        assert_ne!(a, c);
        for spec in &a {
            assert!(spec.nodes >= 64 && spec.nodes <= 20_000);
            assert!(spec.pue.value() >= 1.03);
            assert!((0.55..0.90).contains(&spec.mean_utilization));
            assert!(spec.storage.hdd_pb >= 0.0 && spec.storage.ssd_pb >= 0.0);
            assert!(spec.operator.starts_with("Synth-"));
        }
    }

    #[test]
    fn fleet_members_are_diverse() {
        let fleet = synthesize_fleet(16, 9);
        let mut nodes: Vec<u32> = fleet.iter().map(|s| s.nodes).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert!(nodes.len() > 10, "node counts too uniform: {nodes:?}");
        // More than one archetype appears.
        let mut ids: Vec<SystemId> = fleet.iter().map(|s| s.id).collect();
        ids.sort();
        ids.dedup();
        assert!(ids.len() >= 3, "archetypes: {ids:?}");
    }

    #[test]
    fn empty_fleet_is_fine() {
        assert!(synthesize_fleet(0, 1).is_empty());
    }
}
