//! The supercomputer catalog: Table 1's four systems plus the §6
//! extension systems (Aurora, El Capitan).
//!
//! Hardware figures come from vendor sheets / WikiChip / TechPowerUp as
//! the paper's Table 2 prescribes; PUE values are the paper's (Marconi
//! 1.25, Fugaku 1.4, Polaris 1.65, Frontier 1.05). Each system also
//! carries its grid region, climate preset, site WSI, supplying plant
//! fleet (Fig. 9), and a mean utilization for the trace generator.

use thirstyflops_grid::{PlantFleet, PowerPlant, RegionId};
use thirstyflops_units::{Megawatts, Pue, WaterScarcityIndex};
use thirstyflops_weather::ClimatePreset;

use crate::hardware::{FabSite, NodeConfig, ProcessorSpec, StorageConfig};
use thirstyflops_grid::EnergySource;

/// Identifier of a cataloged system.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
#[allow(missing_docs)]
pub enum SystemId {
    Marconi,
    Fugaku,
    Polaris,
    Frontier,
    Aurora,
    ElCapitan,
}

impl SystemId {
    /// The paper's four evaluated systems, Table 1 order.
    pub const PAPER: [SystemId; 4] = [
        SystemId::Marconi,
        SystemId::Fugaku,
        SystemId::Polaris,
        SystemId::Frontier,
    ];

    /// All cataloged systems including §6 extensions.
    pub const ALL: [SystemId; 6] = [
        SystemId::Marconi,
        SystemId::Fugaku,
        SystemId::Polaris,
        SystemId::Frontier,
        SystemId::Aurora,
        SystemId::ElCapitan,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SystemId::Marconi => "Marconi100",
            SystemId::Fugaku => "Fugaku",
            SystemId::Polaris => "Polaris",
            SystemId::Frontier => "Frontier",
            SystemId::Aurora => "Aurora",
            SystemId::ElCapitan => "El Capitan",
        }
    }

    /// Canonical lowercase token, used as the CLI argument and in API
    /// URL paths (`/v1/footprint/{slug}`). Every slug parses back via
    /// [`FromStr`](core::str::FromStr).
    pub fn slug(self) -> &'static str {
        match self {
            SystemId::Marconi => "marconi",
            SystemId::Fugaku => "fugaku",
            SystemId::Polaris => "polaris",
            SystemId::Frontier => "frontier",
            SystemId::Aurora => "aurora",
            SystemId::ElCapitan => "elcapitan",
        }
    }
}

/// Error for [`SystemId::from_str`](core::str::FromStr): the input named
/// no cataloged system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSystemIdError {
    input: String,
}

impl core::fmt::Display for ParseSystemIdError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "unknown system {:?}", self.input)
    }
}

impl std::error::Error for ParseSystemIdError {}

impl core::str::FromStr for SystemId {
    type Err = ParseSystemIdError;

    /// Parses a system name: the canonical slug, the display name, or a
    /// historical alias — case-insensitive. This is the one alias table
    /// shared by the CLI and the HTTP API.
    fn from_str(s: &str) -> Result<SystemId, ParseSystemIdError> {
        match s.to_ascii_lowercase().as_str() {
            "marconi" | "marconi100" => Ok(SystemId::Marconi),
            "fugaku" => Ok(SystemId::Fugaku),
            "polaris" => Ok(SystemId::Polaris),
            "frontier" => Ok(SystemId::Frontier),
            "aurora" => Ok(SystemId::Aurora),
            "elcapitan" | "el-capitan" | "el_capitan" | "el capitan" => Ok(SystemId::ElCapitan),
            _ => Err(ParseSystemIdError {
                input: s.to_string(),
            }),
        }
    }
}

impl core::fmt::Display for SystemId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full specification of a cataloged system.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SystemSpec {
    /// Identifier.
    pub id: SystemId,
    /// Facility / operator.
    pub operator: String,
    /// City, country.
    pub location: String,
    /// Year of first operation (Table 1's "Start Year").
    pub start_year: u32,
    /// Compute node count.
    pub nodes: u32,
    /// Per-node hardware.
    pub node: NodeConfig,
    /// File-system storage tiers.
    pub storage: StorageConfig,
    /// Facility PUE.
    pub pue: Pue,
    /// Electricity grid region.
    pub region: RegionId,
    /// Site climate preset.
    pub climate: ClimatePreset,
    /// Direct (datacenter-site) water scarcity index.
    pub site_wsi: WaterScarcityIndex,
    /// Plants supplying the facility (for the indirect WSI of Fig. 9).
    pub fleet: PlantFleet,
    /// Long-run mean machine utilization for the trace generator.
    pub mean_utilization: f64,
}

impl SystemSpec {
    /// The reference specification for a cataloged system.
    pub fn reference(id: SystemId) -> SystemSpec {
        match id {
            SystemId::Marconi => marconi(),
            SystemId::Fugaku => fugaku(),
            SystemId::Polaris => polaris(),
            SystemId::Frontier => frontier(),
            SystemId::Aurora => aurora(),
            SystemId::ElCapitan => el_capitan(),
        }
    }

    /// Peak facility IT power.
    pub fn peak_power(&self) -> Megawatts {
        Megawatts::new(self.node.peak_power_watts() * self.nodes as f64 / 1.0e6)
    }

    /// True if the system has GPU accelerators.
    pub fn has_gpus(&self) -> bool {
        self.node.gpu.is_some() && self.node.gpus_per_node > 0
    }
}

fn wsi(v: f64) -> WaterScarcityIndex {
    WaterScarcityIndex::new(v).expect("static WSI is non-negative")
}

fn plant(name: &str, source: EnergySource, share: f64, wsi: f64) -> PowerPlant {
    PowerPlant::new(name, source, share, wsi).expect("static plant data is valid")
}

fn marconi() -> SystemSpec {
    SystemSpec {
        id: SystemId::Marconi,
        operator: "CINECA".into(),
        location: "Bologna, Italy".into(),
        start_year: 2019,
        nodes: 980,
        node: NodeConfig {
            // IBM POWER9 (AC922): 695 mm², GlobalFoundries 14 nm.
            cpu: ProcessorSpec::new(
                "IBM POWER9 AC922",
                695.0,
                14,
                FabSite::GlobalFoundriesUs,
                190.0,
            ),
            cpus_per_node: 2,
            // NVIDIA V100 SXM2: 815 mm², TSMC 12 nm.
            gpu: Some(ProcessorSpec::with_yield(
                "NVIDIA V100 SXM2",
                815.0,
                12,
                FabSite::TsmcTaiwan,
                300.0,
                0.70,
            )),
            gpus_per_node: 4,
            dram_gb: 256.0,
            ics_per_node: 26,
            misc_power_watts: 300.0,
            idle_fraction: 0.35,
        },
        storage: StorageConfig {
            hdd_pb: 8.0,
            ssd_pb: 1.0,
        },
        pue: Pue::new(1.25).expect("paper PUE"),
        region: RegionId::EmiliaRomagna,
        climate: ClimatePreset::Bologna,
        site_wsi: wsi(0.35),
        fleet: PlantFleet::new(vec![
            plant("Alpine Hydro Cascade", EnergySource::Hydro, 0.25, 0.20),
            plant("Po Valley CCGT", EnergySource::Gas, 0.50, 0.42),
            plant("Adriatic Wind", EnergySource::Wind, 0.10, 0.30),
            plant("Emilia Solar Parks", EnergySource::Solar, 0.15, 0.38),
        ])
        .expect("static fleet sums to 1"),
        mean_utilization: 0.80,
    }
}

fn fugaku() -> SystemSpec {
    SystemSpec {
        id: SystemId::Fugaku,
        operator: "RIKEN R-CCS".into(),
        location: "Kobe, Japan".into(),
        start_year: 2020,
        nodes: 158_976,
        node: NodeConfig {
            // Fujitsu A64FX 48C: ~400 mm², TSMC 7 nm, ~140 W with HBM.
            cpu: ProcessorSpec::new("Fujitsu A64FX 48C", 400.0, 7, FabSite::TsmcTaiwan, 140.0),
            cpus_per_node: 1,
            gpu: None,
            gpus_per_node: 0,
            dram_gb: 32.0, // HBM2 on package
            ics_per_node: 9,
            misc_power_watts: 30.0,
            idle_fraction: 0.30,
        },
        storage: StorageConfig {
            hdd_pb: 150.0,
            ssd_pb: 16.0,
        },
        pue: Pue::new(1.4).expect("paper PUE"),
        region: RegionId::Kansai,
        climate: ClimatePreset::Kobe,
        site_wsi: wsi(0.13),
        fleet: PlantFleet::new(vec![
            plant("Kansai Nuclear Units", EnergySource::Nuclear, 0.25, 0.12),
            plant("Kobe Bay LNG", EnergySource::Gas, 0.45, 0.14),
            plant("Harima Coal", EnergySource::Coal, 0.25, 0.13),
            plant("Rooftop Solar Aggregation", EnergySource::Solar, 0.05, 0.13),
        ])
        .expect("static fleet sums to 1"),
        mean_utilization: 0.75,
    }
}

fn polaris() -> SystemSpec {
    SystemSpec {
        id: SystemId::Polaris,
        operator: "Argonne National Laboratory".into(),
        location: "Lemont, Illinois, US".into(),
        start_year: 2021,
        nodes: 560,
        node: NodeConfig {
            // AMD EPYC 7532 (Rome MCM): ~712 mm² silicon, TSMC 7 nm
            // (IOD on GF 14 nm folded into the aggregate area).
            cpu: ProcessorSpec::new("AMD EPYC 7532", 712.0, 7, FabSite::TsmcTaiwan, 200.0),
            cpus_per_node: 1,
            // NVIDIA A100 PCIe 40 GB: 826 mm², TSMC 7 nm.
            gpu: Some(ProcessorSpec::with_yield(
                "NVIDIA A100 PCIe",
                826.0,
                7,
                FabSite::TsmcTaiwan,
                250.0,
                0.70,
            )),
            gpus_per_node: 4,
            dram_gb: 512.0,
            ics_per_node: 21,
            misc_power_watts: 250.0,
            idle_fraction: 0.30,
        },
        // Paper: "Polaris employs an all-flash storage".
        storage: StorageConfig {
            hdd_pb: 0.0,
            ssd_pb: 4.0,
        },
        pue: Pue::new(1.65).expect("paper PUE"),
        region: RegionId::NorthernIllinois,
        climate: ClimatePreset::Lemont,
        site_wsi: wsi(0.55),
        fleet: PlantFleet::new(vec![
            plant("Byron Nuclear", EnergySource::Nuclear, 0.35, 0.55),
            plant("Braidwood Nuclear", EnergySource::Nuclear, 0.25, 0.65),
            plant("Joliet Gas Peakers", EnergySource::Gas, 0.25, 0.60),
            plant("Iowa Wind Imports", EnergySource::Wind, 0.15, 0.35),
        ])
        .expect("static fleet sums to 1"),
        mean_utilization: 0.70,
    }
}

fn frontier() -> SystemSpec {
    SystemSpec {
        id: SystemId::Frontier,
        operator: "Oak Ridge National Laboratory".into(),
        location: "Oak Ridge, Tennessee, US".into(),
        start_year: 2021,
        nodes: 9_408,
        node: NodeConfig {
            // AMD EPYC 7A53 (Trento): 8×CCD + IOD ≈ 1008 mm².
            cpu: ProcessorSpec::new("AMD EPYC 7A53", 1008.0, 7, FabSite::TsmcTaiwan, 225.0),
            cpus_per_node: 1,
            // AMD Instinct MI250X: dual GCD, 2×724 mm², TSMC 6 nm.
            gpu: Some(ProcessorSpec::with_yield(
                "AMD Instinct MI250X",
                1448.0,
                6,
                FabSite::TsmcTaiwan,
                560.0,
                0.70,
            )),
            gpus_per_node: 4,
            dram_gb: 1024.0, // 512 GB DDR4 + 512 GB HBM2e
            ics_per_node: 25,
            misc_power_watts: 350.0,
            idle_fraction: 0.30,
        },
        // Orion: 679 PB HDD tier (the paper's headline), ~11 PB flash.
        storage: StorageConfig {
            hdd_pb: 679.0,
            ssd_pb: 11.0,
        },
        pue: Pue::new(1.05).expect("paper PUE"),
        region: RegionId::Tennessee,
        climate: ClimatePreset::OakRidge,
        site_wsi: wsi(0.10),
        fleet: PlantFleet::new(vec![
            plant("Watts Bar Nuclear", EnergySource::Nuclear, 0.40, 0.12),
            plant("TVA Hydro Dams", EnergySource::Hydro, 0.15, 0.08),
            plant("Cumberland Gas", EnergySource::Gas, 0.30, 0.11),
            plant("Kingston Coal", EnergySource::Coal, 0.15, 0.14),
        ])
        .expect("static fleet sums to 1"),
        mean_utilization: 0.85,
    }
}

fn aurora() -> SystemSpec {
    SystemSpec {
        id: SystemId::Aurora,
        operator: "Argonne National Laboratory".into(),
        location: "Lemont, Illinois, US".into(),
        start_year: 2023,
        nodes: 10_624,
        node: NodeConfig {
            // Intel Xeon Max 9470 (Sapphire Rapids HBM): 4 tiles ≈ 1600 mm².
            cpu: ProcessorSpec::new(
                "Intel Xeon Max 9470",
                1600.0,
                10,
                FabSite::IntelOregon,
                350.0,
            ),
            cpus_per_node: 2,
            // Intel Data Center GPU Max 1550 (Ponte Vecchio): compute
            // tiles on TSMC N5, ~1280 mm² aggregate.
            gpu: Some(ProcessorSpec::with_yield(
                "Intel Max 1550",
                1280.0,
                5,
                FabSite::TsmcTaiwan,
                600.0,
                0.70,
            )),
            gpus_per_node: 6,
            dram_gb: 1792.0, // 1024 DDR5 + 768 HBM2e
            ics_per_node: 26,
            misc_power_watts: 500.0,
            idle_fraction: 0.30,
        },
        storage: StorageConfig {
            hdd_pb: 0.0,
            ssd_pb: 220.0, // DAOS all-flash
        },
        pue: Pue::new(1.30).expect("static PUE"),
        region: RegionId::NorthernIllinois,
        climate: ClimatePreset::Lemont,
        site_wsi: wsi(0.55),
        fleet: PlantFleet::new(vec![
            plant("Byron Nuclear", EnergySource::Nuclear, 0.40, 0.50),
            plant("Braidwood Nuclear", EnergySource::Nuclear, 0.25, 0.60),
            plant("Joliet Gas Peakers", EnergySource::Gas, 0.20, 0.55),
            plant("Iowa Wind Imports", EnergySource::Wind, 0.15, 0.30),
        ])
        .expect("static fleet sums to 1"),
        mean_utilization: 0.65,
    }
}

fn el_capitan() -> SystemSpec {
    SystemSpec {
        id: SystemId::ElCapitan,
        operator: "Lawrence Livermore National Laboratory".into(),
        location: "Livermore, California, US".into(),
        start_year: 2024,
        nodes: 11_136,
        node: NodeConfig {
            // MI300A APU split for modeling: the Zen4 CCD complex is
            // booked as "CPU" silicon, the XCD/IOD stack as "GPU".
            cpu: ProcessorSpec::new("MI300A Zen4 CCDs", 220.0, 5, FabSite::TsmcTaiwan, 100.0),
            cpus_per_node: 4,
            gpu: Some(ProcessorSpec::new(
                "MI300A XCD stack",
                800.0,
                5,
                FabSite::TsmcTaiwan,
                450.0,
            )),
            gpus_per_node: 4,
            dram_gb: 512.0, // HBM3
            ics_per_node: 16,
            misc_power_watts: 400.0,
            idle_fraction: 0.30,
        },
        storage: StorageConfig {
            hdd_pb: 0.0,
            ssd_pb: 90.0, // Rabbit near-node flash
        },
        pue: Pue::new(1.10).expect("static PUE"),
        region: RegionId::California,
        climate: ClimatePreset::Livermore,
        site_wsi: wsi(0.70),
        fleet: PlantFleet::new(vec![
            plant("Diablo Canyon Nuclear", EnergySource::Nuclear, 0.20, 0.65),
            plant("Central Valley Solar", EnergySource::Solar, 0.30, 0.75),
            plant("Sierra Hydro", EnergySource::Hydro, 0.15, 0.55),
            plant("Bay Area CCGT", EnergySource::Gas, 0.35, 0.70),
        ])
        .expect("static fleet sums to 1"),
        mean_utilization: 0.70,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_metadata_matches_paper() {
        let m = SystemSpec::reference(SystemId::Marconi);
        assert_eq!(m.start_year, 2019);
        assert!(m.location.contains("Bologna"));
        assert_eq!(m.pue.value(), 1.25);

        let f = SystemSpec::reference(SystemId::Fugaku);
        assert_eq!(f.start_year, 2020);
        assert!(!f.has_gpus());
        assert_eq!(f.pue.value(), 1.4);

        let p = SystemSpec::reference(SystemId::Polaris);
        assert_eq!(p.start_year, 2021);
        assert_eq!(p.pue.value(), 1.65);
        assert_eq!(p.storage.hdd_pb, 0.0, "Polaris is all-flash");

        let fr = SystemSpec::reference(SystemId::Frontier);
        assert_eq!(fr.start_year, 2021);
        assert_eq!(fr.pue.value(), 1.05);
        assert_eq!(fr.storage.hdd_pb, 679.0, "679 PB HDD file system");
    }

    #[test]
    fn peak_power_scales_are_realistic() {
        // Fugaku and Frontier are tens of MW; Polaris and Marconi are
        // single-digit MW.
        let fugaku = SystemSpec::reference(SystemId::Fugaku).peak_power().value();
        assert!((15.0..40.0).contains(&fugaku), "Fugaku {fugaku} MW");
        let frontier = SystemSpec::reference(SystemId::Frontier)
            .peak_power()
            .value();
        assert!((15.0..40.0).contains(&frontier), "Frontier {frontier} MW");
        let polaris = SystemSpec::reference(SystemId::Polaris)
            .peak_power()
            .value();
        assert!((0.5..4.0).contains(&polaris), "Polaris {polaris} MW");
        let marconi = SystemSpec::reference(SystemId::Marconi)
            .peak_power()
            .value();
        assert!((1.0..4.0).contains(&marconi), "Marconi {marconi} MW");
    }

    #[test]
    fn ic_counts_in_table2_range() {
        for id in SystemId::ALL {
            let s = SystemSpec::reference(id);
            assert!(
                (9..=26).contains(&s.node.ics_per_node),
                "{id}: {}",
                s.node.ics_per_node
            );
        }
    }

    #[test]
    fn fleets_are_consistent_with_regions() {
        for id in SystemId::ALL {
            let s = SystemSpec::reference(id);
            // Indirect WSI is in the hull of the plant WSIs and finite.
            let ind = s.fleet.indirect_wsi().value();
            assert!(ind > 0.0 && ind < 1.0, "{id}: {ind}");
            assert!(s.mean_utilization > 0.3 && s.mean_utilization <= 0.95);
        }
    }

    #[test]
    fn polaris_site_is_scarcest_of_the_four() {
        // Fig. 8(b): Chicago-area WSI is the highest among the four sites.
        let polaris = SystemSpec::reference(SystemId::Polaris).site_wsi.value();
        for id in SystemId::PAPER {
            if id != SystemId::Polaris {
                let other = SystemSpec::reference(id).site_wsi.value();
                assert!(polaris > other, "{id}");
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(SystemId::Marconi.to_string(), "Marconi100");
        assert_eq!(SystemId::ALL.len(), 6);
        assert_eq!(SystemId::PAPER.len(), 4);
    }

    #[test]
    fn every_slug_and_name_round_trips_through_from_str() {
        for id in SystemId::ALL {
            assert_eq!(id.slug().parse::<SystemId>(), Ok(id));
            assert_eq!(id.name().parse::<SystemId>(), Ok(id), "{}", id.name());
            assert_eq!(
                id.slug(),
                id.slug().to_ascii_lowercase(),
                "slug is lowercase"
            );
        }
    }

    #[test]
    fn historical_aliases_still_parse() {
        assert_eq!("Marconi100".parse::<SystemId>(), Ok(SystemId::Marconi));
        for alias in ["elcapitan", "el-capitan", "el_capitan", "El Capitan"] {
            assert_eq!(
                alias.parse::<SystemId>(),
                Ok(SystemId::ElCapitan),
                "{alias}"
            );
        }
    }

    #[test]
    fn unknown_names_error_with_the_input() {
        let err = "colossus".parse::<SystemId>().unwrap_err();
        assert_eq!(err.to_string(), "unknown system \"colossus\"");
    }
}
