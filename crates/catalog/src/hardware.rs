//! Hardware specifications and manufacturing water factors.
//!
//! Eq. 4 prices a processor's manufacturing water as
//! `A_die / Yield · (UPW + PCW + WPA)`:
//!
//! * **UPW** — ultrapure water for wafer production, lithography and
//!   etching, rising as process nodes shrink (more layers, more cleaning
//!   steps). The paper's Table 2 range is 5.9–14.2 L (per cm² of die)
//!   across 28 nm down to 3 nm;
//! * **PCW** — process cooling water for chemical-mechanical polishing,
//!   proportional to UPW with a fab-site-specific factor;
//! * **WPA** — water embedded in the electricity that powers the fab:
//!   energy-per-area at the node times the fab region's grid EWF.
//!
//! Eq. 5 prices memory and storage at **WPC** liters per GB: DRAM 0.8,
//! HDD 0.033, SSD 0.022 (SK hynix / Seagate sustainability sheets, as
//! cited in Table 2). Note HDD > SSD *per drive fleet* because HDD
//! capacities dominate; per GB the factors already encode the paper's
//! Takeaway 1 (SSD is the water-friendlier medium per GB... see
//! `wpc` tests).

use thirstyflops_units::{
    FabYield, LitersPerGigabyte, LitersPerSquareCm, SquareMillimeters, WaterScarcityIndex,
};

/// Packaging water overhead per integrated circuit (Eq. 3), liters.
/// Table 2: `W_IC = 0.6 L` (SPIL sustainability report).
pub const W_IC_LITERS: f64 = 0.6;

/// Water footprint per GB of DRAM (SK hynix sustainability report).
pub const WPC_DRAM: f64 = 0.8;

/// Water footprint per GB of HDD capacity (Seagate Exos sustainability
/// report).
pub const WPC_HDD: f64 = 0.033;

/// Water footprint per GB of SSD capacity (Seagate Nytro sustainability
/// report).
pub const WPC_SSD: f64 = 0.022;

/// Memory/storage medium for WPC lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)]
pub enum Medium {
    Dram,
    Hdd,
    Ssd,
}

/// WPC for a medium as a typed factor.
pub fn wpc(medium: Medium) -> LitersPerGigabyte {
    LitersPerGigabyte::new(match medium {
        Medium::Dram => WPC_DRAM,
        Medium::Hdd => WPC_HDD,
        Medium::Ssd => WPC_SSD,
    })
}

/// A semiconductor fabrication site (Table 2's "Location" row: "TSMC or
/// GlobalFoundries", extended with the fabs of the systems' other parts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FabSite {
    /// TSMC, Hsinchu / Tainan, Taiwan.
    TsmcTaiwan,
    /// GlobalFoundries, Malta, New York, US.
    GlobalFoundriesUs,
    /// Samsung, Hwaseong, South Korea.
    SamsungKorea,
    /// Intel, Hillsboro, Oregon, US.
    IntelOregon,
}

impl FabSite {
    /// All fab sites.
    pub const ALL: [FabSite; 4] = [
        FabSite::TsmcTaiwan,
        FabSite::GlobalFoundriesUs,
        FabSite::SamsungKorea,
        FabSite::IntelOregon,
    ];

    /// Process-cooling-water factor relative to UPW (site water-recycling
    /// practice; PCW ≈ factor × UPW).
    pub fn pcw_factor(self) -> f64 {
        match self {
            FabSite::TsmcTaiwan => 1.15,
            FabSite::GlobalFoundriesUs => 1.05,
            FabSite::SamsungKorea => 1.10,
            FabSite::IntelOregon => 1.00,
        }
    }

    /// Grid EWF at the fab's location, L/kWh — converts fab energy into
    /// WPA water.
    pub fn grid_ewf(self) -> f64 {
        match self {
            FabSite::TsmcTaiwan => 1.8,
            FabSite::GlobalFoundriesUs => 1.9,
            FabSite::SamsungKorea => 1.5,
            FabSite::IntelOregon => 2.1,
        }
    }

    /// Water scarcity index of the fab's watershed (manufacturing-side WSI
    /// for the Fig. 4 analysis). Taiwan's 2021 drought is why TSMC's WSI
    /// is the highest here.
    pub fn wsi(self) -> WaterScarcityIndex {
        let v = match self {
            FabSite::TsmcTaiwan => 0.65,
            FabSite::GlobalFoundriesUs => 0.15,
            FabSite::SamsungKorea => 0.30,
            FabSite::IntelOregon => 0.25,
        };
        WaterScarcityIndex::new(v).expect("static WSIs are non-negative")
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FabSite::TsmcTaiwan => "TSMC (Taiwan)",
            FabSite::GlobalFoundriesUs => "GlobalFoundries (US)",
            FabSite::SamsungKorea => "Samsung (Korea)",
            FabSite::IntelOregon => "Intel (Oregon, US)",
        }
    }
}

/// Ultrapure water per cm² of die at a process node, L/cm².
///
/// Interpolates the Table 2 range (5.9 L at 28 nm up to 14.2 L at 3 nm)
/// over the IEDM DTCO (PPACE) trend: finer nodes need more masks and
/// cleaning cycles.
pub fn upw_per_cm2(process_node_nm: u32) -> LitersPerSquareCm {
    let v = match process_node_nm {
        0..=3 => 14.2,
        4 => 13.6,
        5 => 13.0,
        6 => 12.2,
        7 => 11.5,
        8..=10 => 9.8,
        11..=12 => 8.9,
        13..=14 => 8.2,
        15..=16 => 7.7,
        17..=22 => 6.6,
        _ => 5.9,
    };
    LitersPerSquareCm::new(v)
}

/// Fab energy per cm² of die at a process node, kWh/cm² (ACT-style EPA
/// trend) — multiplied by the fab grid's EWF to obtain WPA.
pub fn fab_energy_kwh_per_cm2(process_node_nm: u32) -> f64 {
    match process_node_nm {
        0..=3 => 3.0,
        4 => 2.8,
        5 => 2.6,
        6 => 2.3,
        7 => 2.1,
        8..=10 => 1.6,
        11..=12 => 1.4,
        13..=14 => 1.25,
        15..=16 => 1.1,
        17..=22 => 0.9,
        _ => 0.8,
    }
}

/// A CPU or GPU specification (the Eq. 4 inputs plus power for the
/// workload simulator).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProcessorSpec {
    /// Marketing name (e.g. "NVIDIA A100 PCIe").
    pub name: String,
    /// Total silicon die area per package.
    pub die: SquareMillimeters,
    /// Process node in nm.
    pub process_node_nm: u32,
    /// Manufacturing site.
    pub fab: FabSite,
    /// Fab yield for this product.
    pub yield_rate: FabYield,
    /// Thermal design power per package, watts.
    pub tdp_watts: f64,
}

impl ProcessorSpec {
    /// Convenience constructor with the paper's default yield.
    pub fn new(
        name: impl Into<String>,
        die_mm2: f64,
        process_node_nm: u32,
        fab: FabSite,
        tdp_watts: f64,
    ) -> Self {
        Self {
            name: name.into(),
            die: SquareMillimeters::new(die_mm2),
            process_node_nm,
            fab,
            yield_rate: FabYield::DEFAULT,
            tdp_watts,
        }
    }

    /// Same, but with an explicit yield — large monolithic dies (V100,
    /// A100, MI250X GCDs) yield substantially worse than the 0.875
    /// default, which matters for Eq. 4's `1/Yield` factor.
    pub fn with_yield(
        name: impl Into<String>,
        die_mm2: f64,
        process_node_nm: u32,
        fab: FabSite,
        tdp_watts: f64,
        yield_rate: f64,
    ) -> Self {
        let mut spec = Self::new(name, die_mm2, process_node_nm, fab, tdp_watts);
        spec.yield_rate = FabYield::new(yield_rate).expect("catalog yields are in (0,1]");
        spec
    }

    /// UPW + PCW + WPA for this processor, L/cm².
    pub fn water_per_cm2(&self) -> LitersPerSquareCm {
        let upw = upw_per_cm2(self.process_node_nm).value();
        let pcw = upw * self.fab.pcw_factor();
        let wpa = fab_energy_kwh_per_cm2(self.process_node_nm) * self.fab.grid_ewf();
        LitersPerSquareCm::new(upw + pcw + wpa)
    }
}

/// Per-node hardware configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NodeConfig {
    /// CPU spec.
    pub cpu: ProcessorSpec,
    /// CPU packages per node.
    pub cpus_per_node: u32,
    /// GPU spec, if the system has accelerators.
    pub gpu: Option<ProcessorSpec>,
    /// GPU packages per node.
    pub gpus_per_node: u32,
    /// DRAM (DDR + HBM) per node, GB.
    pub dram_gb: f64,
    /// Integrated circuits per node needing packaging (Eq. 3's N_IC;
    /// Table 2 range 9–26).
    pub ics_per_node: u32,
    /// Non-processor node power (NICs, fans, board), watts.
    pub misc_power_watts: f64,
    /// Fraction of peak power drawn when idle.
    pub idle_fraction: f64,
}

impl NodeConfig {
    /// Peak node power, watts (TDP sum + misc).
    pub fn peak_power_watts(&self) -> f64 {
        let cpu = self.cpu.tdp_watts * self.cpus_per_node as f64;
        let gpu = self
            .gpu
            .as_ref()
            .map_or(0.0, |g| g.tdp_watts * self.gpus_per_node as f64);
        cpu + gpu + self.misc_power_watts
    }

    /// Node power at a given utilization in `[0, 1]`: idle floor plus
    /// linear scaling — the estimation path the paper uses when only job
    /// logs (not power logs) are available.
    pub fn power_at_utilization_watts(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        let peak = self.peak_power_watts();
        peak * (self.idle_fraction + (1.0 - self.idle_fraction) * u)
    }
}

/// System-level storage configuration (file-system scale).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StorageConfig {
    /// HDD tier capacity, PB.
    pub hdd_pb: f64,
    /// SSD/flash tier capacity, PB.
    pub ssd_pb: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upw_matches_table2_range_and_is_monotone() {
        assert_eq!(upw_per_cm2(3).value(), 14.2);
        assert_eq!(upw_per_cm2(28).value(), 5.9);
        let mut prev = f64::INFINITY;
        for node in [3u32, 5, 6, 7, 10, 12, 14, 16, 22, 28] {
            let v = upw_per_cm2(node).value();
            assert!(v <= prev, "UPW should shrink with coarser nodes");
            prev = v;
        }
    }

    #[test]
    fn fab_energy_monotone() {
        let mut prev = f64::INFINITY;
        for node in [3u32, 5, 7, 10, 14, 22, 28] {
            let v = fab_energy_kwh_per_cm2(node);
            assert!(v <= prev);
            prev = v;
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn wpc_ssd_below_hdd_below_dram() {
        // Takeaway 1's per-GB ordering: SSD < HDD << DRAM.
        assert!(WPC_SSD < WPC_HDD);
        assert!(WPC_HDD < WPC_DRAM);
        assert_eq!(wpc(Medium::Dram).value(), 0.8);
        assert_eq!(wpc(Medium::Hdd).value(), 0.033);
        assert_eq!(wpc(Medium::Ssd).value(), 0.022);
    }

    #[test]
    fn processor_water_per_cm2_is_plausible() {
        let a100 = ProcessorSpec::new("A100", 826.0, 7, FabSite::TsmcTaiwan, 250.0);
        let w = a100.water_per_cm2().value();
        // 7 nm TSMC: 11.5 + 11.5*1.15 + 2.1*1.8 ≈ 28.5 L/cm².
        assert!((w - 28.505).abs() < 0.01, "got {w}");
    }

    #[test]
    fn finer_nodes_cost_more_water_per_cm2() {
        let at = |node| {
            ProcessorSpec::new("X", 100.0, node, FabSite::TsmcTaiwan, 100.0)
                .water_per_cm2()
                .value()
        };
        assert!(at(3) > at(7));
        assert!(at(7) > at(14));
        assert!(at(14) > at(28));
    }

    #[test]
    fn node_power_model() {
        let cpu = ProcessorSpec::new("CPU", 700.0, 14, FabSite::GlobalFoundriesUs, 200.0);
        let gpu = ProcessorSpec::new("GPU", 800.0, 7, FabSite::TsmcTaiwan, 300.0);
        let node = NodeConfig {
            cpu,
            cpus_per_node: 2,
            gpu: Some(gpu),
            gpus_per_node: 4,
            dram_gb: 512.0,
            ics_per_node: 20,
            misc_power_watts: 400.0,
            idle_fraction: 0.3,
        };
        assert_eq!(node.peak_power_watts(), 2.0 * 200.0 + 4.0 * 300.0 + 400.0);
        let peak = node.peak_power_watts();
        assert_eq!(node.power_at_utilization_watts(1.0), peak);
        assert_eq!(node.power_at_utilization_watts(0.0), 0.3 * peak);
        // Out-of-range utilization clamps.
        assert_eq!(node.power_at_utilization_watts(2.0), peak);
        let half = node.power_at_utilization_watts(0.5);
        assert!((half - peak * 0.65).abs() < 1e-9);
    }

    #[test]
    fn fab_metadata() {
        for fab in FabSite::ALL {
            assert!(fab.pcw_factor() > 0.9 && fab.pcw_factor() < 1.3);
            assert!(fab.grid_ewf() > 1.0 && fab.grid_ewf() < 3.0);
            assert!(fab.wsi().value() >= 0.0);
            assert!(!fab.name().is_empty());
        }
        // Taiwan (drought-prone) is the scarcest fab watershed here.
        for fab in FabSite::ALL {
            assert!(FabSite::TsmcTaiwan.wsi().value() >= fab.wsi().value());
        }
    }
}
