//! The Fig. 1 US panorama: state-level carbon intensity, water scarcity,
//! and aggregate HPC power.
//!
//! Carbon intensities approximate Electricity Maps' major-agency values
//! per state (coastal grids lean cleaner, inland/coal grids dirtier — the
//! Fig. 1(a) pattern). The HPC power snapshot is a synthetic TOP500-US
//! subset: real site names with public peak-power figures where known,
//! rounded; it only needs to reproduce where US HPC power concentrates
//! (Fig. 1(c)).

use thirstyflops_units::{GramsCo2PerKwh, Megawatts};

use crate::wsi::{state_wsi, STATE_ABBRS};

/// State-level grid carbon intensity, gCO₂/kWh.
pub fn state_carbon_intensity(abbr: &str) -> Option<GramsCo2PerKwh> {
    let v = match abbr {
        "AL" => 330.0,
        "AK" => 450.0,
        "AZ" => 400.0,
        "AR" => 420.0,
        "CA" => 230.0,
        "CO" => 560.0,
        "CT" => 250.0,
        "DC" => 350.0,
        "DE" => 430.0,
        "FL" => 400.0,
        "GA" => 360.0,
        "HI" => 600.0,
        "ID" => 120.0,
        "IL" => 270.0,
        "IN" => 680.0,
        "IA" => 350.0,
        "KS" => 420.0,
        "KY" => 720.0,
        "LA" => 400.0,
        "ME" => 180.0,
        "MD" => 320.0,
        "MA" => 290.0,
        "MI" => 460.0,
        "MN" => 380.0,
        "MS" => 410.0,
        "MO" => 650.0,
        "MT" => 480.0,
        "NE" => 540.0,
        "NV" => 350.0,
        "NH" => 150.0,
        "NJ" => 270.0,
        "NM" => 520.0,
        "NY" => 210.0,
        "NC" => 330.0,
        "ND" => 700.0,
        "OH" => 560.0,
        "OK" => 430.0,
        "OR" => 160.0,
        "PA" => 360.0,
        "RI" => 390.0,
        "SC" => 260.0,
        "SD" => 250.0,
        "TN" => 300.0,
        "TX" => 420.0,
        "UT" => 640.0,
        "VT" => 30.0,
        "VA" => 300.0,
        "WA" => 110.0,
        "WV" => 850.0,
        "WI" => 550.0,
        "WY" => 790.0,
        _ => return None,
    };
    Some(GramsCo2PerKwh::new(v))
}

/// One US HPC installation in the synthetic TOP500 snapshot.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HpcSite {
    /// System name.
    pub name: &'static str,
    /// State abbreviation.
    pub state: &'static str,
    /// Approximate peak system power, MW.
    pub power_mw: f64,
}

/// The synthetic US TOP500 snapshot used for Fig. 1(c).
pub fn hpc_snapshot() -> Vec<HpcSite> {
    vec![
        HpcSite {
            name: "Frontier",
            state: "TN",
            power_mw: 21.1,
        },
        HpcSite {
            name: "Summit",
            state: "TN",
            power_mw: 13.0,
        },
        HpcSite {
            name: "Aurora",
            state: "IL",
            power_mw: 38.7,
        },
        HpcSite {
            name: "Polaris",
            state: "IL",
            power_mw: 1.8,
        },
        HpcSite {
            name: "Theta-legacy",
            state: "IL",
            power_mw: 1.7,
        },
        HpcSite {
            name: "El Capitan",
            state: "CA",
            power_mw: 29.6,
        },
        HpcSite {
            name: "Sierra",
            state: "CA",
            power_mw: 11.0,
        },
        HpcSite {
            name: "Perlmutter",
            state: "CA",
            power_mw: 6.0,
        },
        HpcSite {
            name: "Expanse",
            state: "CA",
            power_mw: 1.3,
        },
        HpcSite {
            name: "Lassen",
            state: "CA",
            power_mw: 2.2,
        },
        HpcSite {
            name: "Frontera",
            state: "TX",
            power_mw: 6.0,
        },
        HpcSite {
            name: "Stampede3",
            state: "TX",
            power_mw: 4.0,
        },
        HpcSite {
            name: "Vista",
            state: "TX",
            power_mw: 1.5,
        },
        HpcSite {
            name: "Trinity-legacy",
            state: "NM",
            power_mw: 8.5,
        },
        HpcSite {
            name: "Crossroads",
            state: "NM",
            power_mw: 6.0,
        },
        HpcSite {
            name: "Eagle",
            state: "CO",
            power_mw: 2.5,
        },
        HpcSite {
            name: "Kestrel",
            state: "CO",
            power_mw: 4.0,
        },
        HpcSite {
            name: "Derecho",
            state: "WY",
            power_mw: 4.0,
        },
        HpcSite {
            name: "Anvil",
            state: "IN",
            power_mw: 1.0,
        },
        HpcSite {
            name: "Bridges-2",
            state: "PA",
            power_mw: 1.6,
        },
        HpcSite {
            name: "Sapphire-ARL",
            state: "MD",
            power_mw: 2.0,
        },
        HpcSite {
            name: "Narwhal",
            state: "MS",
            power_mw: 3.0,
        },
        HpcSite {
            name: "Cascade-lab",
            state: "WA",
            power_mw: 1.5,
        },
        HpcSite {
            name: "Delta",
            state: "IL",
            power_mw: 1.0,
        },
        HpcSite {
            name: "Hive",
            state: "GA",
            power_mw: 0.8,
        },
        HpcSite {
            name: "Osprey",
            state: "FL",
            power_mw: 0.7,
        },
    ]
}

/// One Fig. 1 row: a state with its three overlays.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StateOverview {
    /// State abbreviation.
    pub state: String,
    /// Grid carbon intensity, gCO₂/kWh (Fig. 1(a)).
    pub carbon_intensity: f64,
    /// Water scarcity index (Fig. 1(b)).
    pub wsi: f64,
    /// Aggregate HPC power, MW (Fig. 1(c)); zero for states without
    /// snapshot systems.
    pub hpc_power_mw: f64,
}

/// Builds the full Fig. 1 table over all states.
pub fn state_overview() -> Vec<StateOverview> {
    let snapshot = hpc_snapshot();
    STATE_ABBRS
        .iter()
        .map(|&abbr| {
            let hpc: f64 = snapshot
                .iter()
                .filter(|s| s.state == abbr)
                .map(|s| s.power_mw)
                .sum();
            StateOverview {
                state: abbr.to_string(),
                carbon_intensity: state_carbon_intensity(abbr)
                    .expect("all states covered")
                    .value(),
                wsi: state_wsi(abbr).expect("all states covered").value(),
                hpc_power_mw: hpc,
            }
        })
        .collect()
}

/// Total snapshot HPC power, MW.
pub fn total_hpc_power() -> Megawatts {
    Megawatts::new(hpc_snapshot().iter().map(|s| s.power_mw).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_state_has_carbon_intensity() {
        for abbr in STATE_ABBRS {
            let ci = state_carbon_intensity(abbr).unwrap().value();
            assert!((20.0..900.0).contains(&ci), "{abbr}: {ci}");
        }
        assert!(state_carbon_intensity("ZZ").is_none());
    }

    #[test]
    fn coastal_cleaner_than_coal_belt() {
        // The Fig. 1(a) pattern: coastal states (CA, NY, WA, OR) cleaner
        // than the coal belt (WV, KY, WY, IN).
        for coast in ["CA", "NY", "WA", "OR"] {
            for inland in ["WV", "KY", "WY", "IN"] {
                assert!(
                    state_carbon_intensity(coast).unwrap().value()
                        < state_carbon_intensity(inland).unwrap().value(),
                    "{coast} vs {inland}"
                );
            }
        }
    }

    #[test]
    fn snapshot_states_exist_and_power_positive() {
        for site in hpc_snapshot() {
            assert!(state_wsi(site.state).is_some(), "{}", site.name);
            assert!(site.power_mw > 0.0);
        }
        assert!(total_hpc_power().value() > 100.0);
    }

    #[test]
    fn some_hpc_power_sits_in_water_stressed_states() {
        // The paper's motivation: HPC centers are not all in water-rich
        // places. At least 25 % of snapshot power is in states with
        // WSI ≥ 0.5.
        let total = total_hpc_power().value();
        let stressed: f64 = hpc_snapshot()
            .iter()
            .filter(|s| state_wsi(s.state).unwrap().value() >= 0.5)
            .map(|s| s.power_mw)
            .sum();
        assert!(
            stressed / total > 0.25,
            "stressed share {}",
            stressed / total
        );
    }

    #[test]
    fn overview_covers_all_states_and_aggregates() {
        let rows = state_overview();
        assert_eq!(rows.len(), 51);
        let il = rows.iter().find(|r| r.state == "IL").unwrap();
        // Aurora + Polaris + Theta + Delta.
        assert!((il.hpc_power_mw - 43.2).abs() < 1e-9);
        let vt = rows.iter().find(|r| r.state == "VT").unwrap();
        assert_eq!(vt.hpc_power_mw, 0.0);
    }
}
