//! The hardware and system catalog: everything Table 1 and Table 2 of the
//! paper encode as data.
//!
//! * [`hardware`] — processor/memory/storage specs, semiconductor fab
//!   sites, and the per-process-node manufacturing water factors
//!   (UPW/PCW/WPA of Eq. 4, WPC of Eq. 5);
//! * [`systems`] — the four paper systems (Marconi100, Fugaku, Polaris,
//!   Frontier) plus the §6 extension systems (Aurora, El Capitan) with
//!   full bills of materials, PUE, grid region, climate, and plant fleet;
//! * [`wsi`] — AWARE-style water scarcity indices at country, state, and
//!   (synthetic) county granularity;
//! * [`usmap`] — the Fig. 1 state-level panorama: carbon intensity, WSI,
//!   and a synthetic US TOP500 power snapshot;
//! * [`fleet`] — synthetic system generation around the cataloged
//!   archetypes (§6(b): applying the tool beyond the evaluated systems).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod hardware;
pub mod systems;
pub mod usmap;
pub mod wsi;

pub use fleet::synthesize_fleet;
pub use hardware::{FabSite, NodeConfig, ProcessorSpec, StorageConfig};
pub use systems::{ParseSystemIdError, SystemId, SystemSpec};
