//! The nine energy sources of Fig. 5 with their energy water factors and
//! carbon intensities.
//!
//! EWF values (L of water consumed per kWh generated) follow the
//! operational consumption factors surveyed by Macknick et al. (NREL
//! TP-6A20-50900) and the WRI guidance the paper cites; carbon intensities
//! are life-cycle medians in gCO₂-eq/kWh. The paper's headline
//! observation — "greener" sources like hydro and geothermal can be highly
//! water-intensive — is encoded in the data: hydro's median EWF (17 L/kWh,
//! reservoir evaporation) is the largest of all sources while its carbon
//! intensity is among the smallest.

use thirstyflops_units::{GramsCo2PerKwh, LitersPerKilowattHour};

/// An electricity generation technology.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
#[allow(missing_docs)]
pub enum EnergySource {
    Solar,
    Biomass,
    Nuclear,
    Coal,
    Wind,
    Hydro,
    Gas,
    Oil,
    Geothermal,
}

/// `(min, median, max)` range of a per-source factor.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FactorRange {
    /// Lower bound.
    pub min: f64,
    /// Median / typical value used in mix arithmetic.
    pub median: f64,
    /// Upper bound.
    pub max: f64,
}

impl EnergySource {
    /// All nine sources, in the paper's Fig. 5 x-axis order.
    pub const ALL: [EnergySource; 9] = [
        EnergySource::Solar,
        EnergySource::Biomass,
        EnergySource::Nuclear,
        EnergySource::Coal,
        EnergySource::Wind,
        EnergySource::Hydro,
        EnergySource::Gas,
        EnergySource::Oil,
        EnergySource::Geothermal,
    ];

    /// Energy water factor range, L/kWh consumed during generation.
    ///
    /// Nuclear spans once-through cooling (0.5–1.5 L/kWh, river-return) up
    /// to wet cooling towers (2.2–3.2 L/kWh) — the §5 discussion.
    pub fn ewf_range(self) -> FactorRange {
        match self {
            EnergySource::Solar => FactorRange {
                min: 0.02,
                median: 0.15,
                max: 0.33,
            },
            EnergySource::Biomass => FactorRange {
                min: 1.9,
                median: 2.5,
                max: 3.3,
            },
            EnergySource::Nuclear => FactorRange {
                min: 0.5,
                median: 2.7,
                max: 3.2,
            },
            EnergySource::Coal => FactorRange {
                min: 1.2,
                median: 2.2,
                max: 2.6,
            },
            EnergySource::Wind => FactorRange {
                min: 0.0,
                median: 0.004,
                max: 0.01,
            },
            EnergySource::Hydro => FactorRange {
                min: 1.0,
                median: 17.0,
                max: 26.0,
            },
            EnergySource::Gas => FactorRange {
                min: 0.5,
                median: 0.85,
                max: 1.1,
            },
            EnergySource::Oil => FactorRange {
                min: 1.2,
                median: 1.8,
                max: 2.4,
            },
            EnergySource::Geothermal => FactorRange {
                min: 1.0,
                median: 5.3,
                max: 14.0,
            },
        }
    }

    /// Median EWF as a typed intensity.
    pub fn ewf(self) -> LitersPerKilowattHour {
        LitersPerKilowattHour::new(self.ewf_range().median)
    }

    /// Water **withdrawal** factor range, L/kWh — the volume removed from
    /// the source, most of which once-through plants return (§2: consumption
    /// = withdrawal − discharge). Once-through thermal plants withdraw two
    /// orders of magnitude more than they consume; wind/solar withdraw
    /// almost nothing. Values follow the Macknick et al. withdrawal survey.
    pub fn withdrawal_range(self) -> FactorRange {
        match self {
            EnergySource::Solar => FactorRange {
                min: 0.02,
                median: 0.15,
                max: 0.4,
            },
            EnergySource::Biomass => FactorRange {
                min: 2.0,
                median: 40.0,
                max: 140.0,
            },
            // Nuclear once-through: up to ~230 L/kWh withdrawn.
            EnergySource::Nuclear => FactorRange {
                min: 3.0,
                median: 90.0,
                max: 230.0,
            },
            EnergySource::Coal => FactorRange {
                min: 2.0,
                median: 70.0,
                max: 140.0,
            },
            EnergySource::Wind => FactorRange {
                min: 0.0,
                median: 0.004,
                max: 0.01,
            },
            // Hydro "withdrawal" is the turbined flow; conventions vary, so
            // we follow the consumptive-only accounting (≈ EWF).
            EnergySource::Hydro => FactorRange {
                min: 1.0,
                median: 17.0,
                max: 26.0,
            },
            EnergySource::Gas => FactorRange {
                min: 1.0,
                median: 35.0,
                max: 80.0,
            },
            EnergySource::Oil => FactorRange {
                min: 2.0,
                median: 60.0,
                max: 120.0,
            },
            EnergySource::Geothermal => FactorRange {
                min: 1.0,
                median: 7.0,
                max: 15.0,
            },
        }
    }

    /// Life-cycle carbon intensity range, gCO₂-eq/kWh.
    pub fn carbon_range(self) -> FactorRange {
        match self {
            EnergySource::Solar => FactorRange {
                min: 41.0,
                median: 45.0,
                max: 48.0,
            },
            EnergySource::Biomass => FactorRange {
                min: 130.0,
                median: 230.0,
                max: 420.0,
            },
            EnergySource::Nuclear => FactorRange {
                min: 4.0,
                median: 12.0,
                max: 110.0,
            },
            EnergySource::Coal => FactorRange {
                min: 740.0,
                median: 820.0,
                max: 910.0,
            },
            EnergySource::Wind => FactorRange {
                min: 7.0,
                median: 11.0,
                max: 56.0,
            },
            EnergySource::Hydro => FactorRange {
                min: 1.0,
                median: 24.0,
                max: 150.0,
            },
            EnergySource::Gas => FactorRange {
                min: 410.0,
                median: 490.0,
                max: 650.0,
            },
            EnergySource::Oil => FactorRange {
                min: 650.0,
                median: 740.0,
                max: 890.0,
            },
            EnergySource::Geothermal => FactorRange {
                min: 6.0,
                median: 38.0,
                max: 79.0,
            },
        }
    }

    /// Median carbon intensity as a typed quantity.
    pub fn carbon_intensity(self) -> GramsCo2PerKwh {
        GramsCo2PerKwh::new(self.carbon_range().median)
    }

    /// Renewable (low-carbon, non-fossil, non-nuclear) sources.
    pub fn is_renewable(self) -> bool {
        matches!(
            self,
            EnergySource::Solar
                | EnergySource::Wind
                | EnergySource::Hydro
                | EnergySource::Biomass
                | EnergySource::Geothermal
        )
    }

    /// Sources the paper flags as water-intensive despite low carbon
    /// (Takeaway 3).
    pub fn is_water_intensive(self) -> bool {
        self.ewf_range().median >= 2.5
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EnergySource::Solar => "Solar",
            EnergySource::Biomass => "Biomass",
            EnergySource::Nuclear => "Nuclear",
            EnergySource::Coal => "Coal",
            EnergySource::Wind => "Wind",
            EnergySource::Hydro => "Hydro",
            EnergySource::Gas => "Gas",
            EnergySource::Oil => "Oil",
            EnergySource::Geothermal => "Geothermal",
        }
    }

    /// Canonical lowercase token, used as the key of scenario-spec mix
    /// maps (`"mix_delta": {"hydro": -0.2}` — see `docs/SCENARIOS.md`).
    /// Every slug parses back via [`FromStr`](core::str::FromStr).
    pub fn slug(self) -> &'static str {
        match self {
            EnergySource::Solar => "solar",
            EnergySource::Biomass => "biomass",
            EnergySource::Nuclear => "nuclear",
            EnergySource::Coal => "coal",
            EnergySource::Wind => "wind",
            EnergySource::Hydro => "hydro",
            EnergySource::Gas => "gas",
            EnergySource::Oil => "oil",
            EnergySource::Geothermal => "geothermal",
        }
    }
}

/// Error for [`EnergySource::from_str`](core::str::FromStr): the input
/// named no generation technology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEnergySourceError {
    input: String,
}

impl core::fmt::Display for ParseEnergySourceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "unknown energy source {:?} (known: solar, biomass, nuclear, coal, wind, hydro, \
             gas, oil, geothermal)",
            self.input
        )
    }
}

impl std::error::Error for ParseEnergySourceError {}

impl core::str::FromStr for EnergySource {
    type Err = ParseEnergySourceError;

    /// Parses a source slug, case-insensitive.
    fn from_str(s: &str) -> Result<EnergySource, ParseEnergySourceError> {
        EnergySource::ALL
            .iter()
            .find(|src| src.slug().eq_ignore_ascii_case(s))
            .copied()
            .ok_or_else(|| ParseEnergySourceError {
                input: s.to_string(),
            })
    }
}

impl core::fmt::Display for EnergySource {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_slugs_round_trip_through_from_str() {
        for s in EnergySource::ALL {
            assert_eq!(s.slug().parse::<EnergySource>(), Ok(s));
            assert_eq!(s.name().parse::<EnergySource>(), Ok(s), "{}", s.name());
        }
        assert!("fusion".parse::<EnergySource>().is_err());
    }

    #[test]
    fn ranges_are_ordered() {
        for s in EnergySource::ALL {
            let e = s.ewf_range();
            assert!(e.min <= e.median && e.median <= e.max, "{s} EWF range");
            let c = s.carbon_range();
            assert!(c.min <= c.median && c.median <= c.max, "{s} CI range");
            assert!(e.min >= 0.0 && c.min >= 0.0);
        }
    }

    #[test]
    fn hydro_is_thirstiest_but_low_carbon() {
        // Fig. 5 / Takeaway 3: green ≠ water-friendly.
        let hydro = EnergySource::Hydro;
        for s in EnergySource::ALL {
            assert!(hydro.ewf().value() >= s.ewf().value(), "{s}");
        }
        assert!(hydro.carbon_intensity().value() < 50.0);
        assert!(hydro.is_water_intensive());
        assert!(hydro.is_renewable());
    }

    #[test]
    fn coal_is_highest_carbon() {
        let coal = EnergySource::Coal;
        for s in EnergySource::ALL {
            assert!(coal.carbon_intensity().value() >= s.carbon_intensity().value());
        }
        assert!(!coal.is_renewable());
    }

    #[test]
    fn wind_and_solar_are_water_light() {
        assert!(!EnergySource::Wind.is_water_intensive());
        assert!(!EnergySource::Solar.is_water_intensive());
        assert!(EnergySource::Wind.ewf().value() < 0.01);
    }

    #[test]
    fn nuclear_wet_tower_range_matches_paper() {
        // §5: "2.2–3.2 L/kWh" wet tower; "0.5–1.5" once-through. The full
        // range spans both regimes.
        let r = EnergySource::Nuclear.ewf_range();
        assert_eq!(r.min, 0.5);
        assert_eq!(r.max, 3.2);
        assert!(r.median >= 2.2 && r.median <= 3.2);
        // Nuclear is carbon-friendly.
        assert!(EnergySource::Nuclear.carbon_intensity().value() < 20.0);
    }

    #[test]
    fn table2_ewf_envelope() {
        // Table 2: EWF_energy data range 1–17 L/kWh for the dominant
        // sources; medians fall within [0, 17].
        for s in EnergySource::ALL {
            assert!(s.ewf().value() <= 17.0);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(EnergySource::Gas.to_string(), "Gas");
        assert_eq!(EnergySource::ALL.len(), 9);
    }

    #[test]
    fn withdrawal_dwarfs_consumption_for_thermal_sources() {
        // §2's distinction: once-through thermal plants withdraw orders of
        // magnitude more than they consume.
        for s in [EnergySource::Nuclear, EnergySource::Coal, EnergySource::Gas] {
            let w = s.withdrawal_range();
            let c = s.ewf_range();
            assert!(
                w.median > 10.0 * c.median,
                "{s}: {} vs {}",
                w.median,
                c.median
            );
            assert!(w.min <= w.median && w.median <= w.max);
        }
        // Wind withdraws essentially nothing either way.
        assert!(EnergySource::Wind.withdrawal_range().median < 0.01);
    }
}
