//! The Fig. 14 what-if energy scenarios: replacing a region's current mix
//! with a single class of generation and comparing carbon and water.

use thirstyflops_units::{GramsCo2PerKwh, LitersPerKilowattHour};

use crate::mix::EnergyMix;
use crate::sources::EnergySource;

/// An energy-supply scenario for an HPC center.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Scenario {
    /// The region's current (simulated) energy mix — the normalization
    /// point of Fig. 14.
    CurrentMix,
    /// 100 % coal: the non-carbon-friendly anchor.
    AllCoal,
    /// 100 % nuclear: the §5 small-modular-reactor scenario.
    AllNuclear,
    /// 100 % non-water-intensive renewables (solar + wind).
    OtherRenewable,
    /// 100 % water-intensive renewables (hydro).
    WaterIntensiveRenewable,
}

impl Scenario {
    /// All scenarios in Fig. 14 legend order.
    pub const ALL: [Scenario; 5] = [
        Scenario::CurrentMix,
        Scenario::AllCoal,
        Scenario::AllNuclear,
        Scenario::OtherRenewable,
        Scenario::WaterIntensiveRenewable,
    ];

    /// The scenario's replacement mix; `None` for the current mix.
    pub fn replacement_mix(self) -> Option<EnergyMix> {
        match self {
            Scenario::CurrentMix => None,
            Scenario::AllCoal => Some(EnergyMix::single(EnergySource::Coal)),
            Scenario::AllNuclear => Some(EnergyMix::single(EnergySource::Nuclear)),
            Scenario::OtherRenewable => Some(
                EnergyMix::new(&[(EnergySource::Solar, 0.5), (EnergySource::Wind, 0.5)])
                    .expect("static mix sums to 1"),
            ),
            Scenario::WaterIntensiveRenewable => Some(EnergyMix::single(EnergySource::Hydro)),
        }
    }

    /// EWF under this scenario, falling back to `current_ewf` for
    /// [`Scenario::CurrentMix`].
    pub fn ewf(self, current_ewf: LitersPerKilowattHour) -> LitersPerKilowattHour {
        self.replacement_mix().map_or(current_ewf, |m| m.ewf())
    }

    /// Carbon intensity under this scenario.
    pub fn carbon_intensity(self, current_ci: GramsCo2PerKwh) -> GramsCo2PerKwh {
        self.replacement_mix()
            .map_or(current_ci, |m| m.carbon_intensity())
    }

    /// Display label matching the Fig. 14 legend.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::CurrentMix => "Current Energy Mix",
            Scenario::AllCoal => "100% Coal Usage",
            Scenario::AllNuclear => "100% Nuclear Usage",
            Scenario::OtherRenewable => "Other Renewable Energy Mix",
            Scenario::WaterIntensiveRenewable => "Water-Intensive Renewable Energy Mix",
        }
    }
}

impl core::fmt::Display for Scenario {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_mix_passes_through() {
        let ewf = LitersPerKilowattHour::new(3.3);
        let ci = GramsCo2PerKwh::new(300.0);
        assert_eq!(Scenario::CurrentMix.ewf(ewf), ewf);
        assert_eq!(Scenario::CurrentMix.carbon_intensity(ci), ci);
        assert!(Scenario::CurrentMix.replacement_mix().is_none());
    }

    #[test]
    fn coal_maximizes_carbon_hydro_maximizes_water() {
        let ewf = LitersPerKilowattHour::new(3.3);
        let ci = GramsCo2PerKwh::new(300.0);
        let carbon: Vec<f64> = Scenario::ALL
            .iter()
            .map(|s| s.carbon_intensity(ci).value())
            .collect();
        let water: Vec<f64> = Scenario::ALL.iter().map(|s| s.ewf(ewf).value()).collect();
        // AllCoal (index 1) has the highest carbon.
        assert!(carbon[1] >= *carbon.iter().fold(&0.0, |a, b| if b > a { b } else { a }) - 1e-9);
        // WaterIntensiveRenewable (index 4) has the highest water.
        let max_water = water.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!((water[4] - max_water).abs() < 1e-9);
    }

    #[test]
    fn nuclear_is_low_carbon_moderate_water() {
        let s = Scenario::AllNuclear;
        assert!(s.carbon_intensity(GramsCo2PerKwh::new(300.0)).value() < 20.0);
        let w = s.ewf(LitersPerKilowattHour::new(1.0)).value();
        assert!(w > 2.0 && w < 3.5); // wet-tower median
    }

    #[test]
    fn other_renewable_is_low_on_both() {
        let s = Scenario::OtherRenewable;
        assert!(s.ewf(LitersPerKilowattHour::new(5.0)).value() < 0.2);
        assert!(s.carbon_intensity(GramsCo2PerKwh::new(300.0)).value() < 50.0);
    }

    #[test]
    fn labels_match_figure_legend() {
        assert_eq!(Scenario::AllNuclear.label(), "100% Nuclear Usage");
        assert_eq!(Scenario::ALL.len(), 5);
    }
}
