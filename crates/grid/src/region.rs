//! Regional grid profiles: seasonal monthly mixes plus diurnal modulation,
//! producing the hourly EWF and carbon-intensity series of Fig. 6(a) and
//! Fig. 12.
//!
//! Profiles are calibrated to the paper's reported behaviour:
//!
//! * **Emilia-Romagna (Marconi)** — gas-dominated with a strong seasonal
//!   hydro swing (Alpine snowmelt peaking in May–June). Hydro's 17 L/kWh
//!   EWF makes this the widest EWF range of the four regions, peaking
//!   above 10 L/kWh (paper: 10.59), and drives the summer water/carbon
//!   divergence in Fig. 12;
//! * **Kansai (Fugaku)** — gas/coal/nuclear, modest variation;
//! * **Northern Illinois (Polaris)** — nuclear-heavy, lowest EWF of the
//!   four (paper: down to 1.52 L/kWh);
//! * **Tennessee Valley (Frontier)** — nuclear + notable hydro share.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thirstyflops_timeseries::{HourlySeries, Month, SimCalendar, HOURS_PER_YEAR};
use thirstyflops_units::{GramsCo2PerKwh, LitersPerKilowattHour};

use crate::mix::EnergyMix;
use crate::sources::EnergySource;

/// Identifier of a simulated grid region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum RegionId {
    /// Emilia-Romagna, Italy — feeds Marconi100 (Bologna).
    EmiliaRomagna,
    /// Kansai, Japan — feeds Fugaku (Kobe).
    Kansai,
    /// Northern Illinois, US (ComEd-like) — feeds Polaris (Lemont).
    NorthernIllinois,
    /// Tennessee Valley, US (TVA-like) — feeds Frontier (Oak Ridge).
    Tennessee,
    /// Northern California, US (CAISO-like) — feeds the §6 extension
    /// system El Capitan (Livermore).
    California,
    /// A user-defined region built with [`GridRegion::custom`].
    Custom,
}

impl RegionId {
    /// The four paper regions, in Table 1 system order.
    pub const ALL: [RegionId; 4] = [
        RegionId::EmiliaRomagna,
        RegionId::Kansai,
        RegionId::NorthernIllinois,
        RegionId::Tennessee,
    ];

    /// All simulated regions including extensions.
    pub const ALL_WITH_EXTENSIONS: [RegionId; 5] = [
        RegionId::EmiliaRomagna,
        RegionId::Kansai,
        RegionId::NorthernIllinois,
        RegionId::Tennessee,
        RegionId::California,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RegionId::EmiliaRomagna => "Emilia-Romagna (IT)",
            RegionId::Kansai => "Kansai (JP)",
            RegionId::NorthernIllinois => "Northern Illinois (US)",
            RegionId::Tennessee => "Tennessee Valley (US)",
            RegionId::California => "Northern California (US)",
            RegionId::Custom => "Custom region",
        }
    }

    /// Canonical lowercase token, used in scenario spec files
    /// (`"grid": {"region": "california"}` — see `docs/SCENARIOS.md`).
    /// Every preset slug parses back via
    /// [`FromStr`](core::str::FromStr); [`RegionId::Custom`] has a slug
    /// for display but is rejected by the parser (custom regions are
    /// built with [`GridRegion::custom`], not named).
    pub fn slug(self) -> &'static str {
        match self {
            RegionId::EmiliaRomagna => "emilia-romagna",
            RegionId::Kansai => "kansai",
            RegionId::NorthernIllinois => "northern-illinois",
            RegionId::Tennessee => "tennessee",
            RegionId::California => "california",
            RegionId::Custom => "custom",
        }
    }
}

/// Error for [`RegionId::from_str`](core::str::FromStr): the input named
/// no preset grid region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegionIdError {
    input: String,
}

impl core::fmt::Display for ParseRegionIdError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "unknown grid region {:?} (known: emilia-romagna, kansai, northern-illinois, \
             tennessee, california)",
            self.input
        )
    }
}

impl std::error::Error for ParseRegionIdError {}

impl core::str::FromStr for RegionId {
    type Err = ParseRegionIdError;

    /// Parses a preset region name, case-insensitive, accepting the
    /// canonical slug and common spellings.
    fn from_str(s: &str) -> Result<RegionId, ParseRegionIdError> {
        match s.to_ascii_lowercase().as_str() {
            "emilia-romagna" | "emilia_romagna" | "emilia romagna" | "emiliaromagna" => {
                Ok(RegionId::EmiliaRomagna)
            }
            "kansai" => Ok(RegionId::Kansai),
            "northern-illinois" | "northern_illinois" | "northern illinois"
            | "northernillinois" => Ok(RegionId::NorthernIllinois),
            "tennessee" => Ok(RegionId::Tennessee),
            "california" => Ok(RegionId::California),
            _ => Err(ParseRegionIdError {
                input: s.to_string(),
            }),
        }
    }
}

impl core::fmt::Display for RegionId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Hydro reservoir-evaporation seasonality: wide shallow reservoirs
/// evaporate most under summer heat (the Scherer & Pfister effect the
/// paper cites for hydro EWF variation).
fn hydro_evaporation_multiplier(month: Month) -> f64 {
    match month {
        Month::June | Month::July | Month::August => 1.30,
        Month::May | Month::September => 1.15,
        Month::April | Month::October => 1.00,
        Month::March | Month::November => 0.92,
        Month::December | Month::January | Month::February => 0.85,
    }
}

/// Monthly weight table for one source (January first). Weights are
/// normalized per hour, so they need not sum to one across sources.
pub type MonthlyShares = [f64; 12];

fn constant(v: f64) -> MonthlyShares {
    [v; 12]
}

/// A simulated grid region: per-month base mixes + diurnal modulation.
#[derive(Debug, Clone)]
pub struct GridRegion {
    id: RegionId,
    /// `(source, monthly base weights)`; gas acts as the balancing
    /// remainder at normalization time.
    profile: Vec<(EnergySource, MonthlyShares)>,
    seed: u64,
}

impl GridRegion {
    /// The calibrated preset for a region.
    pub fn preset(id: RegionId) -> Self {
        let profile: Vec<(EnergySource, MonthlyShares)> = match id {
            RegionId::EmiliaRomagna => vec![
                (
                    EnergySource::Hydro,
                    [
                        0.12, 0.12, 0.18, 0.28, 0.40, 0.38, 0.30, 0.22, 0.18, 0.15, 0.13, 0.12,
                    ],
                ),
                (
                    EnergySource::Solar,
                    [
                        0.05, 0.06, 0.08, 0.10, 0.12, 0.14, 0.14, 0.13, 0.10, 0.07, 0.05, 0.04,
                    ],
                ),
                (EnergySource::Wind, constant(0.07)),
                (EnergySource::Biomass, constant(0.05)),
                (EnergySource::Coal, constant(0.04)),
                (EnergySource::Oil, constant(0.02)),
                (
                    EnergySource::Gas,
                    [
                        0.65, 0.64, 0.56, 0.44, 0.30, 0.32, 0.38, 0.47, 0.53, 0.58, 0.63, 0.66,
                    ],
                ),
            ],
            RegionId::Kansai => vec![
                (EnergySource::Nuclear, constant(0.22)),
                (EnergySource::Coal, constant(0.24)),
                (EnergySource::Hydro, constant(0.05)),
                (EnergySource::Wind, constant(0.02)),
                (
                    EnergySource::Solar,
                    [
                        0.03, 0.04, 0.05, 0.06, 0.07, 0.07, 0.07, 0.07, 0.06, 0.05, 0.04, 0.03,
                    ],
                ),
                (
                    EnergySource::Gas,
                    [
                        0.44, 0.43, 0.42, 0.41, 0.40, 0.40, 0.40, 0.40, 0.41, 0.42, 0.43, 0.44,
                    ],
                ),
            ],
            RegionId::NorthernIllinois => vec![
                (EnergySource::Nuclear, constant(0.52)),
                (EnergySource::Coal, constant(0.14)),
                (
                    EnergySource::Wind,
                    [
                        0.14, 0.13, 0.13, 0.12, 0.10, 0.08, 0.08, 0.08, 0.10, 0.12, 0.13, 0.14,
                    ],
                ),
                (
                    EnergySource::Solar,
                    [
                        0.01, 0.01, 0.02, 0.03, 0.04, 0.04, 0.04, 0.04, 0.03, 0.02, 0.01, 0.01,
                    ],
                ),
                (
                    EnergySource::Gas,
                    [
                        0.19, 0.20, 0.19, 0.19, 0.20, 0.22, 0.22, 0.22, 0.21, 0.20, 0.20, 0.19,
                    ],
                ),
            ],
            RegionId::Tennessee => vec![
                (EnergySource::Nuclear, constant(0.40)),
                (EnergySource::Coal, constant(0.14)),
                (
                    EnergySource::Hydro,
                    [
                        0.14, 0.15, 0.16, 0.16, 0.14, 0.12, 0.10, 0.09, 0.09, 0.10, 0.12, 0.13,
                    ],
                ),
                (
                    EnergySource::Solar,
                    [
                        0.03, 0.03, 0.04, 0.05, 0.06, 0.06, 0.06, 0.06, 0.05, 0.04, 0.03, 0.03,
                    ],
                ),
                (EnergySource::Wind, constant(0.02)),
                (EnergySource::Biomass, constant(0.05)),
                (
                    EnergySource::Gas,
                    [
                        0.22, 0.21, 0.19, 0.18, 0.18, 0.21, 0.23, 0.25, 0.25, 0.25, 0.24, 0.23,
                    ],
                ),
            ],
            RegionId::California => vec![
                (
                    EnergySource::Solar,
                    [
                        0.12, 0.14, 0.18, 0.22, 0.25, 0.27, 0.27, 0.26, 0.22, 0.17, 0.13, 0.11,
                    ],
                ),
                (
                    EnergySource::Hydro,
                    [
                        0.08, 0.09, 0.12, 0.14, 0.15, 0.13, 0.10, 0.08, 0.07, 0.06, 0.06, 0.07,
                    ],
                ),
                (EnergySource::Wind, constant(0.07)),
                (EnergySource::Nuclear, constant(0.08)),
                (EnergySource::Geothermal, constant(0.05)),
                (
                    EnergySource::Gas,
                    [
                        0.60, 0.56, 0.48, 0.41, 0.36, 0.36, 0.41, 0.45, 0.51, 0.58, 0.63, 0.65,
                    ],
                ),
            ],
            // A generic default for the Custom id; real custom regions
            // come from [`GridRegion::custom`].
            RegionId::Custom => vec![
                (EnergySource::Gas, constant(0.5)),
                (EnergySource::Nuclear, constant(0.3)),
                (EnergySource::Wind, constant(0.2)),
            ],
        };
        Self {
            id,
            profile,
            seed: 0x6e1d_0000 ^ (id as u64),
        }
    }

    /// Builds a user-defined region from per-source monthly weight
    /// tables (the §6 path for modeling *other* HPC sites: supply your
    /// grid's mix profile and reuse the whole pipeline).
    ///
    /// Weights need not sum to one — they are normalized per hour — but
    /// every month must have a positive total and no weight may be
    /// negative.
    pub fn custom(profile: Vec<(EnergySource, MonthlyShares)>, seed: u64) -> Result<Self, String> {
        if profile.is_empty() {
            return Err("custom region needs at least one source".into());
        }
        for (source, shares) in &profile {
            if shares.iter().any(|&w| w < 0.0 || !w.is_finite()) {
                return Err(format!("negative or non-finite weight for {source}"));
            }
        }
        for m in 0..12 {
            let total: f64 = profile.iter().map(|(_, s)| s[m]).sum();
            if total <= 0.0 {
                return Err(format!("month {} has zero total generation", m + 1));
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for (source, _) in &profile {
            if !seen.insert(*source) {
                return Err(format!("duplicate source {source}"));
            }
        }
        Ok(Self {
            id: RegionId::Custom,
            profile,
            seed,
        })
    }

    /// The region's identifier.
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// The base (noise- and diurnal-free) mix for a month.
    pub fn monthly_mix(&self, month: Month) -> EnergyMix {
        let pairs: Vec<(EnergySource, f64)> = self
            .profile
            .iter()
            .map(|(s, shares)| (*s, shares[month.index()]))
            .collect();
        EnergyMix::normalized(&pairs).expect("presets have positive totals")
    }

    /// The annual-average base mix.
    pub fn annual_mix(&self) -> EnergyMix {
        let pairs: Vec<(EnergySource, f64)> = self
            .profile
            .iter()
            .map(|(s, shares)| (*s, shares.iter().sum::<f64>() / 12.0))
            .collect();
        EnergyMix::normalized(&pairs).expect("presets have positive totals")
    }

    /// Simulates a year of hourly grid state.
    pub fn simulate_year(&self) -> GridYear {
        self.simulate_inner(None)
    }

    /// Failure injection: simulates the year with `source` forced offline
    /// during `[start_hour, end_hour)` (drought curtailing hydro, a
    /// nuclear outage, a gas supply shock). The remaining sources
    /// renormalize to cover demand, shifting both EWF and carbon
    /// intensity for the outage window.
    pub fn simulate_year_with_outage(
        &self,
        source: EnergySource,
        start_hour: usize,
        end_hour: usize,
    ) -> Result<GridYear, String> {
        if start_hour >= end_hour || end_hour > HOURS_PER_YEAR {
            return Err(format!("bad outage window [{start_hour}, {end_hour})"));
        }
        if !self.profile.iter().any(|(s, _)| *s == source) {
            return Err(format!("{source} is not part of this region's mix"));
        }
        // An outage of the only baseload source could zero the mix; the
        // normalizer rejects that, so no additional guard is needed here.
        Ok(self.simulate_inner(Some((source, start_hour, end_hour))))
    }

    /// The hot loop behind every `SystemYear`: 8760 hours × every source.
    ///
    /// The mix math is hoisted out of the hour loop: the modulated base
    /// weight of a source depends only on `(month, hour-of-day)`, so a
    /// 12×24 table per source is precomputed **with the exact original
    /// expression order**, and the per-hour normalization + weighted
    /// EWF/CI sums run over flat reused buffers instead of building an
    /// [`EnergyMix`] (a `BTreeMap` plus two allocations) per hour. The
    /// weighted sums accumulate in `EnergySource` order — the order the
    /// `BTreeMap` iterated — so the output stays bit-identical to the
    /// unhoisted loop (`docs/CONCURRENCY.md` determinism contract).
    fn simulate_inner(&self, outage: Option<(EnergySource, usize, usize)>) -> GridYear {
        let cal = SimCalendar;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut ewf = Vec::with_capacity(HOURS_PER_YEAR);
        let mut carbon = Vec::with_capacity(HOURS_PER_YEAR);
        let n = self.profile.len();

        // Per-source modulated base weight by (month, hour-of-day). Each
        // entry evaluates the original per-hour expression verbatim, so
        // hoisting cannot change a single bit.
        let modulation: Vec<[[f64; 24]; 12]> = self
            .profile
            .iter()
            .map(|(source, shares)| {
                let mut table = [[0.0; 24]; 12];
                for (m, row) in table.iter_mut().enumerate() {
                    let base = shares[m];
                    for (h, slot) in row.iter_mut().enumerate() {
                        let hod = h as f64;
                        let daylight = (core::f64::consts::PI * (hod - 6.0) / 12.0).sin().max(0.0);
                        *slot = match source {
                            // Solar produces only in daylight; monthly share is the
                            // daily mean, so scale so the daylight integral matches.
                            EnergySource::Solar => base * daylight * core::f64::consts::PI / 2.0,
                            // Hydro peaks with evening demand.
                            EnergySource::Hydro => {
                                base * (1.0
                                    + 0.15 * ((hod - 19.0) / 24.0 * core::f64::consts::TAU).cos())
                            }
                            // Gas follows the demand curve (morning/evening ramps).
                            EnergySource::Gas => {
                                base * (1.0
                                    + 0.10 * ((hod - 18.0) / 24.0 * core::f64::consts::TAU).cos())
                            }
                            _ => base,
                        };
                    }
                }
                table
            })
            .collect();

        // Per-source factor constants and the hydro evaporation scaling,
        // both formerly re-fetched per hour.
        let ewf_of: Vec<f64> = self.profile.iter().map(|(s, _)| s.ewf().value()).collect();
        let ci_of: Vec<f64> = self
            .profile
            .iter()
            .map(|(s, _)| s.carbon_intensity().value())
            .collect();
        let evap_of: [f64; 12] =
            core::array::from_fn(|m| hydro_evaporation_multiplier(Month::ALL[m]));
        // The weighted sums must accumulate in the order the old
        // `EnergyMix`'s `BTreeMap` iterated: sorted by source.
        let mut sum_order: Vec<usize> = (0..n).collect();
        sum_order.sort_by_key(|&i| self.profile[i].0);

        // Month index per hour, precomputed from the month boundaries.
        let mut month_of: [u8; HOURS_PER_YEAR] = [0; HOURS_PER_YEAR];
        for month in Month::ALL {
            for h in cal.month_hours(month) {
                month_of[h] = month.index() as u8;
            }
        }

        // Slow per-source availability noise (AR(1), ~2-day correlation).
        let alpha = 1.0 - 1.0 / 48.0;
        let mut noise: Vec<f64> = vec![0.0; n];
        let mut weights: Vec<f64> = vec![0.0; n];

        for (hour, &month_idx) in month_of.iter().enumerate() {
            let m = month_idx as usize;
            let hod = cal.hour_of_day(hour);

            for (i, (source, _)) in self.profile.iter().enumerate() {
                noise[i] = alpha * noise[i] + (rng.random::<f64>() - 0.5) * 0.02;
                let mut weight = (modulation[i][m][hod] * (1.0 + noise[i])).max(0.0);
                if let Some((out_source, lo, hi)) = outage {
                    if *source == out_source && (lo..hi).contains(&hour) {
                        weight = 0.0;
                    }
                }
                weights[i] = weight;
            }

            // Inline of `EnergyMix::normalized(..).ewf_with(..)` /
            // `.carbon_intensity()`: normalize in profile order, sum in
            // source order, same elementary operations.
            let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
            assert!(total > 0.0, "modulated weights stay positive");
            let evap = evap_of[m];
            let mut ewf_v = 0.0;
            let mut ci_v = 0.0;
            for &i in &sum_order {
                let share = weights[i].max(0.0) / total;
                let factor = if self.profile[i].0 == EnergySource::Hydro {
                    evap
                } else {
                    1.0
                };
                ewf_v += share * ewf_of[i] * factor;
                ci_v += share * ci_of[i];
            }
            ewf.push(ewf_v);
            carbon.push(ci_v);
        }

        GridYear {
            region: self.id,
            ewf: HourlySeries::from_vec(ewf),
            carbon: HourlySeries::from_vec(carbon),
        }
    }
}

/// One simulated year of hourly grid state for a region.
#[derive(Debug, Clone)]
pub struct GridYear {
    region: RegionId,
    ewf: HourlySeries,
    carbon: HourlySeries,
}

impl GridYear {
    /// The region this year belongs to.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Hourly energy water factor, L/kWh.
    pub fn ewf(&self) -> &HourlySeries {
        &self.ewf
    }

    /// Hourly carbon intensity, gCO₂/kWh.
    pub fn carbon(&self) -> &HourlySeries {
        &self.carbon
    }

    /// Annual mean EWF as a typed intensity.
    pub fn mean_ewf(&self) -> LitersPerKilowattHour {
        LitersPerKilowattHour::new(self.ewf.mean())
    }

    /// Annual mean carbon intensity as a typed quantity.
    pub fn mean_carbon(&self) -> GramsCo2PerKwh {
        GramsCo2PerKwh::new(self.carbon.mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monthly_mixes_are_valid_and_sum_to_one() {
        for id in RegionId::ALL_WITH_EXTENSIONS {
            let region = GridRegion::preset(id);
            for month in Month::ALL {
                let mix = region.monthly_mix(month);
                let total: f64 = mix.iter().map(|(_, f)| f.value()).sum();
                assert!((total - 1.0).abs() < 1e-9, "{id:?} {month}");
            }
        }
    }

    #[test]
    fn marconi_region_has_widest_ewf_range_and_highest_mean() {
        // Fig. 6(a): Marconi (Emilia-Romagna) shows the widest EWF range,
        // peaking above 10 L/kWh; Polaris (N. Illinois) the lowest.
        let years: Vec<GridYear> = RegionId::ALL
            .iter()
            .map(|&id| GridRegion::preset(id).simulate_year())
            .collect();
        let ranges: Vec<f64> = years
            .iter()
            .map(|y| y.ewf().max() - y.ewf().min())
            .collect();
        let means: Vec<f64> = years.iter().map(|y| y.ewf().mean()).collect();
        // Index 0 = EmiliaRomagna, 2 = NorthernIllinois.
        for i in 1..4 {
            assert!(ranges[0] > ranges[i], "range {:?}", ranges);
            assert!(means[0] > means[i], "mean {:?}", means);
        }
        for i in [0usize, 1, 3] {
            assert!(means[2] < means[i], "Polaris lowest: {:?}", means);
        }
        assert!(
            years[0].ewf().max() > 8.0,
            "Marconi peak {}",
            years[0].ewf().max()
        );
    }

    #[test]
    fn polaris_region_min_ewf_near_paper_value() {
        let year = GridRegion::preset(RegionId::NorthernIllinois).simulate_year();
        // Paper: Polaris EWF can reach 1.52 L/kWh. Loose band.
        assert!(
            year.ewf().min() > 1.0 && year.ewf().min() < 2.2,
            "{}",
            year.ewf().min()
        );
    }

    #[test]
    fn carbon_and_water_diverge_in_marconi_summer() {
        // Fig. 12 Marconi: summer hydro availability lowers carbon but
        // raises water (EWF); the monthly trends should anti-correlate.
        let year = GridRegion::preset(RegionId::EmiliaRomagna).simulate_year();
        let ewf_monthly = year.ewf().monthly_mean();
        let ci_monthly = year.carbon().monthly_mean();
        let corr = ewf_monthly.pearson(&ci_monthly);
        assert!(corr < -0.3, "expected anti-correlation, got {corr}");
        // EWF peaks late spring/summer when hydro share peaks.
        let peak = ewf_monthly.argmax();
        assert!(
            matches!(peak, Month::May | Month::June | Month::July),
            "EWF peak in {peak}"
        );
    }

    #[test]
    fn regional_mean_carbon_ordering_is_plausible() {
        // Kansai (fossil-heavy) should be the most carbon-intense; the two
        // nuclear-heavy US regions the least.
        let mean_ci: Vec<(RegionId, f64)> = RegionId::ALL
            .iter()
            .map(|&id| (id, GridRegion::preset(id).simulate_year().carbon().mean()))
            .collect();
        let kansai = mean_ci[1].1;
        for (id, ci) in &mean_ci {
            if *id != RegionId::Kansai {
                assert!(kansai > *ci, "Kansai {kansai} vs {id:?} {ci}");
            }
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = GridRegion::preset(RegionId::Kansai).simulate_year();
        let b = GridRegion::preset(RegionId::Kansai).simulate_year();
        assert_eq!(a.ewf().values(), b.ewf().values());
        assert_eq!(a.carbon().values(), b.carbon().values());
    }

    #[test]
    fn solar_share_vanishes_at_night() {
        let region = GridRegion::preset(RegionId::EmiliaRomagna);
        let year = region.simulate_year();
        // At 2 AM the carbon intensity should exceed the same day's 1 PM
        // value on average (solar displaces gas at midday).
        let mut night = 0.0;
        let mut noon = 0.0;
        let mut days = 0.0;
        for day in 0..365 {
            night += year.carbon().get(day * 24 + 2);
            noon += year.carbon().get(day * 24 + 13);
            days += 1.0;
        }
        assert!(night / days > noon / days);
    }

    #[test]
    fn custom_region_round_trips() {
        let region = GridRegion::custom(
            vec![
                (EnergySource::Geothermal, [0.3; 12]),
                (EnergySource::Wind, [0.2; 12]),
                (EnergySource::Gas, [0.5; 12]),
            ],
            99,
        )
        .unwrap();
        assert_eq!(region.id(), RegionId::Custom);
        let year = region.simulate_year();
        // Geothermal's 5.3 L/kWh share keeps EWF in a predictable band.
        assert!(
            year.ewf().mean() > 1.5 && year.ewf().mean() < 3.0,
            "{}",
            year.ewf().mean()
        );
        // Weighted carbon around 0.3·38 + 0.2·11 + 0.5·490 ≈ 259.
        assert!(
            (year.carbon().mean() - 259.0).abs() < 40.0,
            "{}",
            year.carbon().mean()
        );
    }

    #[test]
    fn custom_region_validation() {
        assert!(GridRegion::custom(vec![], 0).is_err());
        assert!(GridRegion::custom(vec![(EnergySource::Gas, [-0.1; 12])], 0).is_err());
        let mut zero_month = [0.4; 12];
        zero_month[5] = 0.0;
        assert!(GridRegion::custom(vec![(EnergySource::Gas, zero_month)], 0).is_err());
        assert!(GridRegion::custom(
            vec![
                (EnergySource::Gas, [0.5; 12]),
                (EnergySource::Gas, [0.5; 12])
            ],
            0
        )
        .is_err());
        assert!(GridRegion::custom(vec![(EnergySource::Gas, [f64::NAN; 12])], 0).is_err());
    }

    #[test]
    fn hydro_outage_cuts_ewf_but_raises_carbon() {
        // Drought-curtailed hydro in Emilia-Romagna: gas fills the gap, so
        // water intensity falls and carbon rises during the window.
        let region = GridRegion::preset(RegionId::EmiliaRomagna);
        let base = region.simulate_year();
        let window = (120 * 24, 150 * 24); // May
        let out = region
            .simulate_year_with_outage(EnergySource::Hydro, window.0, window.1)
            .unwrap();
        let mean_in = |s: &thirstyflops_timeseries::HourlySeries| {
            s.values()[window.0..window.1].iter().sum::<f64>() / (window.1 - window.0) as f64
        };
        assert!(mean_in(out.ewf()) < 0.6 * mean_in(base.ewf()));
        assert!(mean_in(out.carbon()) > 1.1 * mean_in(base.carbon()));
        // Outside the window, nothing changed.
        assert_eq!(out.ewf().get(10), base.ewf().get(10));
        assert_eq!(out.carbon().get(8000), base.carbon().get(8000));
    }

    #[test]
    fn outage_validation() {
        let region = GridRegion::preset(RegionId::Kansai);
        assert!(region
            .simulate_year_with_outage(EnergySource::Geothermal, 0, 100)
            .is_err());
        assert!(region
            .simulate_year_with_outage(EnergySource::Gas, 100, 100)
            .is_err());
        assert!(region
            .simulate_year_with_outage(EnergySource::Gas, 0, HOURS_PER_YEAR + 1)
            .is_err());
    }

    #[test]
    fn preset_slugs_round_trip_and_custom_is_rejected() {
        for id in RegionId::ALL_WITH_EXTENSIONS {
            assert_eq!(id.slug().parse::<RegionId>(), Ok(id));
        }
        assert_eq!(
            "Northern Illinois".parse::<RegionId>(),
            Ok(RegionId::NorthernIllinois)
        );
        assert!("custom".parse::<RegionId>().is_err());
        assert!("atlantis".parse::<RegionId>().is_err());
    }

    #[test]
    fn evaporation_multiplier_peaks_in_summer() {
        assert!(
            hydro_evaporation_multiplier(Month::July) > hydro_evaporation_multiplier(Month::April)
        );
        assert!(hydro_evaporation_multiplier(Month::January) < 1.0);
    }
}
