//! Power-plant fleets and the indirect water scarcity index.
//!
//! Fig. 9: an HPC center draws electricity from several plants, each
//! sitting in its own watershed with its own WSI. The **indirect WSI** is
//! the energy-share-weighted aggregate of the plant-site WSIs, distinct
//! from the **direct WSI** at the datacenter itself. Fig. 10 shows WSI can
//! vary at kilometer scale, so this distinction materially changes the
//! scarcity-adjusted footprint.

use thirstyflops_units::{Fraction, WaterScarcityIndex};

use crate::sources::EnergySource;

/// A generating plant supplying part of an HPC center's electricity.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PowerPlant {
    /// Plant name.
    pub name: String,
    /// Generation technology.
    pub source: EnergySource,
    /// Share of the HPC center's supply from this plant.
    pub supply_share: Fraction,
    /// Water scarcity index of the plant's watershed.
    pub wsi: WaterScarcityIndex,
}

impl PowerPlant {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        source: EnergySource,
        supply_share: f64,
        wsi: f64,
    ) -> Result<Self, String> {
        Ok(Self {
            name: name.into(),
            source,
            supply_share: Fraction::new(supply_share).map_err(|e| e.to_string())?,
            wsi: WaterScarcityIndex::new(wsi).map_err(|e| e.to_string())?,
        })
    }
}

/// Errors constructing a [`PlantFleet`].
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// Supply shares must sum to 1 (±1e-6).
    SharesDoNotSumToOne(f64),
    /// The fleet was empty.
    Empty,
}

impl core::fmt::Display for FleetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FleetError::SharesDoNotSumToOne(s) => {
                write!(f, "plant supply shares sum to {s}, expected 1")
            }
            FleetError::Empty => write!(f, "plant fleet is empty"),
        }
    }
}

impl std::error::Error for FleetError {}

/// The set of plants supplying one HPC center.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlantFleet {
    plants: Vec<PowerPlant>,
}

impl PlantFleet {
    /// Builds a fleet, validating that supply shares sum to one.
    pub fn new(plants: Vec<PowerPlant>) -> Result<Self, FleetError> {
        if plants.is_empty() {
            return Err(FleetError::Empty);
        }
        let total: f64 = plants.iter().map(|p| p.supply_share.value()).sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(FleetError::SharesDoNotSumToOne(total));
        }
        Ok(Self { plants })
    }

    /// The plants.
    pub fn plants(&self) -> &[PowerPlant] {
        &self.plants
    }

    /// Fig. 9: `WSI_indirect = f(WSI_1 … WSI_n)` — the supply-share-weighted
    /// mean of plant-site WSIs.
    pub fn indirect_wsi(&self) -> WaterScarcityIndex {
        let v: f64 = self
            .plants
            .iter()
            .map(|p| p.supply_share.value() * p.wsi.value())
            .sum();
        WaterScarcityIndex::new(v).expect("weighted mean of non-negative WSIs is non-negative")
    }

    /// The spread (max − min) of plant WSIs — how much the indirect WSI
    /// depends on *which* nearby grid supplies the energy (Takeaway 6).
    pub fn wsi_spread(&self) -> f64 {
        let min = self
            .plants
            .iter()
            .map(|p| p.wsi.value())
            .fold(f64::INFINITY, f64::min);
        let max = self
            .plants
            .iter()
            .map(|p| p.wsi.value())
            .fold(f64::NEG_INFINITY, f64::max);
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> PlantFleet {
        PlantFleet::new(vec![
            PowerPlant::new("Riverbend Nuclear", EnergySource::Nuclear, 0.4, 0.2).unwrap(),
            PowerPlant::new("Dryland Gas", EnergySource::Gas, 0.3, 0.9).unwrap(),
            PowerPlant::new("Highlake Hydro", EnergySource::Hydro, 0.2, 0.1).unwrap(),
            PowerPlant::new("Prairie Wind", EnergySource::Wind, 0.1, 0.5).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn weighted_indirect_wsi() {
        let f = fleet();
        let expected = 0.4 * 0.2 + 0.3 * 0.9 + 0.2 * 0.1 + 0.1 * 0.5;
        assert!((f.indirect_wsi().value() - expected).abs() < 1e-12);
        assert!((f.wsi_spread() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn indirect_wsi_within_plant_hull() {
        let f = fleet();
        let v = f.indirect_wsi().value();
        assert!((0.1..=0.9).contains(&v));
    }

    #[test]
    fn validation() {
        assert!(matches!(PlantFleet::new(vec![]), Err(FleetError::Empty)));
        let bad = PlantFleet::new(vec![
            PowerPlant::new("A", EnergySource::Gas, 0.5, 0.5).unwrap(),
            PowerPlant::new("B", EnergySource::Coal, 0.3, 0.5).unwrap(),
        ]);
        assert!(matches!(bad, Err(FleetError::SharesDoNotSumToOne(_))));
        assert!(PowerPlant::new("C", EnergySource::Gas, 1.2, 0.5).is_err());
        assert!(PowerPlant::new("D", EnergySource::Gas, 0.5, -1.0).is_err());
    }

    #[test]
    fn single_plant_fleet_wsi_is_its_wsi() {
        let f = PlantFleet::new(vec![PowerPlant::new(
            "Solo",
            EnergySource::Nuclear,
            1.0,
            0.42,
        )
        .unwrap()])
        .unwrap();
        assert!((f.indirect_wsi().value() - 0.42).abs() < 1e-12);
        assert_eq!(f.wsi_spread(), 0.0);
        assert_eq!(f.plants().len(), 1);
    }
}
