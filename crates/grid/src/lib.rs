//! Electricity-grid simulation for ThirstyFLOPS.
//!
//! The indirect water footprint (Eq. 7) is `W_indirect = E · PUE · EWF`
//! where the **energy water factor** `EWF = Σ mix_i · EWF_i` depends on the
//! region's time-varying energy-source mix. The paper reads the mix from
//! Electricity Maps; this crate simulates it:
//!
//! * [`EnergySource`] — the nine sources of the paper's Fig. 5 with EWF
//!   (Macknick/NREL operational water factors) and carbon-intensity
//!   (IPCC-style life-cycle medians) ranges;
//! * [`EnergyMix`] — a validated share vector with weighted EWF/CI;
//! * [`GridRegion`] — seasonal + diurnal mix profiles per region producing
//!   hourly EWF and carbon-intensity series (with reservoir-evaporation
//!   seasonality for hydro);
//! * [`PlantFleet`] — named plants with per-plant water scarcity indices
//!   for the Fig. 9 indirect-WSI aggregation;
//! * [`Scenario`] — the Fig. 14 what-ifs (100 % coal / nuclear /
//!   non-water-intensive renewables / water-intensive renewables).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mix;
mod plants;
mod region;
mod scenario;
mod sources;

pub use mix::{EnergyMix, MixError};
pub use plants::{PlantFleet, PowerPlant};
pub use region::{GridRegion, GridYear, ParseRegionIdError, RegionId};
pub use scenario::Scenario;
pub use sources::{EnergySource, ParseEnergySourceError};
