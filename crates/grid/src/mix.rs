//! A validated energy-source share vector and its weighted factors.
//!
//! Eq. 7: `EWF = f(mix%, EWF_energy)` — the regional EWF is the
//! share-weighted sum of per-source EWFs; carbon intensity aggregates the
//! same way.

use std::collections::BTreeMap;

use thirstyflops_units::{Fraction, GramsCo2PerKwh, LitersPerKilowattHour};

use crate::sources::EnergySource;

/// Errors constructing an [`EnergyMix`].
#[derive(Debug, Clone, PartialEq)]
pub enum MixError {
    /// Shares must sum to 1 (±1e-6); carries the actual sum.
    DoesNotSumToOne(f64),
    /// A source appeared twice in the builder input.
    DuplicateSource(EnergySource),
    /// The mix had no sources at all.
    Empty,
}

impl core::fmt::Display for MixError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MixError::DoesNotSumToOne(sum) => {
                write!(f, "energy mix shares sum to {sum}, expected 1")
            }
            MixError::DuplicateSource(s) => write!(f, "duplicate source {s} in mix"),
            MixError::Empty => write!(f, "energy mix has no sources"),
        }
    }
}

impl std::error::Error for MixError {}

/// An energy-source mix: shares over [`EnergySource`]s summing to one.
///
/// ```
/// use thirstyflops_grid::{EnergyMix, EnergySource};
///
/// // Eq. 7: regional EWF is the share-weighted sum of per-source EWFs.
/// let mix = EnergyMix::new(&[
///     (EnergySource::Hydro, 0.2),   // 17 L/kWh — thirsty but low-carbon
///     (EnergySource::Gas, 0.8),     // 0.85 L/kWh
/// ]).unwrap();
/// assert!((mix.ewf().value() - (0.2 * 17.0 + 0.8 * 0.85)).abs() < 1e-12);
/// assert!(mix.carbon_intensity().value() < EnergySource::Gas.carbon_intensity().value());
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnergyMix {
    shares: BTreeMap<EnergySource, Fraction>,
}

impl EnergyMix {
    /// Tolerance on the share sum.
    pub const SUM_TOLERANCE: f64 = 1e-6;

    /// Builds a mix from `(source, share)` pairs.
    pub fn new(pairs: &[(EnergySource, f64)]) -> Result<Self, MixError> {
        if pairs.is_empty() {
            return Err(MixError::Empty);
        }
        let mut shares = BTreeMap::new();
        let mut sum = 0.0;
        for &(source, share) in pairs {
            let frac = Fraction::new(share).map_err(|_| MixError::DoesNotSumToOne(share))?;
            if shares.insert(source, frac).is_some() {
                return Err(MixError::DuplicateSource(source));
            }
            sum += share;
        }
        if (sum - 1.0).abs() > Self::SUM_TOLERANCE {
            return Err(MixError::DoesNotSumToOne(sum));
        }
        Ok(Self { shares })
    }

    /// Builds a mix from possibly-unnormalized non-negative weights,
    /// normalizing them to sum to one. Used by the hourly simulator after
    /// applying diurnal/noise modulation.
    pub fn normalized(pairs: &[(EnergySource, f64)]) -> Result<Self, MixError> {
        if pairs.is_empty() {
            return Err(MixError::Empty);
        }
        let total: f64 = pairs.iter().map(|&(_, w)| w.max(0.0)).sum();
        if total <= 0.0 {
            return Err(MixError::DoesNotSumToOne(0.0));
        }
        let scaled: Vec<(EnergySource, f64)> = pairs
            .iter()
            .map(|&(s, w)| (s, w.max(0.0) / total))
            .collect();
        Self::new(&scaled)
    }

    /// A single-source mix (the Fig. 14 "100 % X" scenarios).
    pub fn single(source: EnergySource) -> Self {
        Self::new(&[(source, 1.0)]).expect("single-source mix always sums to 1")
    }

    /// Share of `source` (zero if absent).
    pub fn share(&self, source: EnergySource) -> Fraction {
        self.shares.get(&source).copied().unwrap_or(Fraction::ZERO)
    }

    /// Iterator over `(source, share)` with non-zero shares.
    pub fn iter(&self) -> impl Iterator<Item = (EnergySource, Fraction)> + '_ {
        self.shares.iter().map(|(&s, &f)| (s, f))
    }

    /// Share-weighted EWF using per-source medians (Eq. 7).
    pub fn ewf(&self) -> LitersPerKilowattHour {
        let v: f64 = self.iter().map(|(s, f)| f.value() * s.ewf().value()).sum();
        LitersPerKilowattHour::new(v)
    }

    /// Share-weighted EWF with a per-source multiplier (e.g. seasonal
    /// reservoir evaporation scaling for hydro).
    pub fn ewf_with(&self, mut factor: impl FnMut(EnergySource) -> f64) -> LitersPerKilowattHour {
        let v: f64 = self
            .iter()
            .map(|(s, f)| f.value() * s.ewf().value() * factor(s))
            .sum();
        LitersPerKilowattHour::new(v)
    }

    /// Share-weighted water **withdrawal** factor (median), L/kWh — far
    /// above [`EnergyMix::ewf`] for thermal-heavy grids (§2: withdrawal
    /// vs consumption).
    pub fn withdrawal(&self) -> LitersPerKilowattHour {
        let v: f64 = self
            .iter()
            .map(|(s, f)| f.value() * s.withdrawal_range().median)
            .sum();
        LitersPerKilowattHour::new(v)
    }

    /// Share-weighted carbon intensity.
    pub fn carbon_intensity(&self) -> GramsCo2PerKwh {
        let v: f64 = self
            .iter()
            .map(|(s, f)| f.value() * s.carbon_intensity().value())
            .sum();
        GramsCo2PerKwh::new(v)
    }

    /// Total share from renewable sources.
    pub fn renewable_share(&self) -> Fraction {
        Fraction::clamped(
            self.iter()
                .filter(|(s, _)| s.is_renewable())
                .map(|(_, f)| f.value())
                .sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_mix_aggregates() {
        let mix = EnergyMix::new(&[
            (EnergySource::Gas, 0.5),
            (EnergySource::Hydro, 0.2),
            (EnergySource::Solar, 0.3),
        ])
        .unwrap();
        let ewf = mix.ewf().value();
        let expected = 0.5 * 0.85 + 0.2 * 17.0 + 0.3 * 0.15;
        assert!((ewf - expected).abs() < 1e-12);
        let ci = mix.carbon_intensity().value();
        let expected_ci = 0.5 * 490.0 + 0.2 * 24.0 + 0.3 * 45.0;
        assert!((ci - expected_ci).abs() < 1e-12);
        assert!((mix.renewable_share().value() - 0.5).abs() < 1e-12);
        assert_eq!(mix.share(EnergySource::Coal), Fraction::ZERO);
    }

    #[test]
    fn rejects_bad_sums_and_duplicates() {
        assert!(matches!(
            EnergyMix::new(&[(EnergySource::Gas, 0.7)]),
            Err(MixError::DoesNotSumToOne(_))
        ));
        assert!(matches!(
            EnergyMix::new(&[(EnergySource::Gas, 0.5), (EnergySource::Gas, 0.5)]),
            Err(MixError::DuplicateSource(EnergySource::Gas))
        ));
        assert!(matches!(EnergyMix::new(&[]), Err(MixError::Empty)));
        // Negative shares are rejected via Fraction validation.
        assert!(EnergyMix::new(&[(EnergySource::Gas, 1.2), (EnergySource::Coal, -0.2)]).is_err());
    }

    #[test]
    fn normalized_rescales_weights() {
        let mix = EnergyMix::normalized(&[
            (EnergySource::Nuclear, 2.0),
            (EnergySource::Gas, 1.0),
            (EnergySource::Wind, 1.0),
        ])
        .unwrap();
        assert!((mix.share(EnergySource::Nuclear).value() - 0.5).abs() < 1e-12);
        assert!((mix.share(EnergySource::Gas).value() - 0.25).abs() < 1e-12);
        assert!(matches!(
            EnergyMix::normalized(&[(EnergySource::Gas, 0.0)]),
            Err(MixError::DoesNotSumToOne(_))
        ));
    }

    #[test]
    fn single_source_mix() {
        let mix = EnergyMix::single(EnergySource::Coal);
        assert_eq!(mix.share(EnergySource::Coal), Fraction::ONE);
        assert!((mix.ewf().value() - 2.2).abs() < 1e-12);
        assert!((mix.carbon_intensity().value() - 820.0).abs() < 1e-12);
    }

    #[test]
    fn ewf_with_source_multiplier() {
        let mix = EnergyMix::new(&[(EnergySource::Hydro, 0.5), (EnergySource::Gas, 0.5)]).unwrap();
        // Double hydro's EWF (hot-summer reservoir evaporation).
        let boosted = mix.ewf_with(|s| if s == EnergySource::Hydro { 2.0 } else { 1.0 });
        let expected = 0.5 * 17.0 * 2.0 + 0.5 * 0.85;
        assert!((boosted.value() - expected).abs() < 1e-12);
    }

    #[test]
    fn mix_withdrawal_exceeds_consumption_for_thermal_grids() {
        let thermal = EnergyMix::new(&[
            (EnergySource::Nuclear, 0.5),
            (EnergySource::Gas, 0.3),
            (EnergySource::Coal, 0.2),
        ])
        .unwrap();
        assert!(thermal.withdrawal().value() > 10.0 * thermal.ewf().value());
        // A wind/solar grid withdraws almost nothing.
        let renewables =
            EnergyMix::new(&[(EnergySource::Wind, 0.6), (EnergySource::Solar, 0.4)]).unwrap();
        assert!(renewables.withdrawal().value() < 0.1);
    }

    #[test]
    fn ewf_is_within_component_hull() {
        let mix = EnergyMix::new(&[
            (EnergySource::Nuclear, 0.4),
            (EnergySource::Coal, 0.3),
            (EnergySource::Wind, 0.3),
        ])
        .unwrap();
        let lo = EnergySource::Wind.ewf().value();
        let hi = EnergySource::Nuclear.ewf().value();
        let e = mix.ewf().value();
        assert!(e >= lo && e <= hi);
    }
}
