//! Hour-stepped cluster scheduling simulation: FCFS with EASY backfill.
//!
//! Turns a job trace into the machine-utilization series the paper
//! derives from production job logs. EASY backfill (a reservation for the
//! queue head; later jobs may jump ahead only if they cannot delay that
//! reservation) is the de-facto standard batch policy, so the resulting
//! utilization texture — high steady load with backfill ripples — matches
//! what the M100/Fugaku log studies report.

use std::collections::VecDeque;
use std::sync::OnceLock;

use thirstyflops_obs::span;
use thirstyflops_obs::Counter;
use thirstyflops_timeseries::{HourlySeries, HOURS_PER_YEAR};

use crate::trace::Job;

/// Jobs fed into cluster-year simulations, registered once in the
/// workspace metrics registry. Deterministic: simulation demand is a
/// pure function of the command (`docs/OBSERVABILITY.md`).
fn jobs_simulated() -> &'static Counter {
    static COUNTER: OnceLock<Counter> = OnceLock::new();
    COUNTER.get_or_init(|| {
        thirstyflops_obs::registry::counter(
            "thirstyflops_workload_jobs_simulated_total",
            "Jobs fed into cluster-year scheduling simulations.",
        )
    })
}

/// A running job's remaining reservation.
#[derive(Debug, Clone, Copy)]
struct Running {
    end_hour: usize,
    nodes: u32,
}

/// Summary statistics from a simulated year.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClusterStats {
    /// Jobs that started within the year.
    pub started_jobs: usize,
    /// Jobs still queued at year end.
    pub unstarted_jobs: usize,
    /// Mean wait of started jobs, hours.
    pub mean_wait_hours: f64,
    /// Max wait of started jobs, hours.
    pub max_wait_hours: u32,
    /// Mean machine utilization over the year.
    pub mean_utilization: f64,
}

/// The cluster simulator.
#[derive(Debug, Clone)]
pub struct ClusterSim {
    nodes: u32,
    backfill: bool,
}

impl ClusterSim {
    /// A cluster with `nodes` identical nodes using FCFS + EASY backfill.
    pub fn new(nodes: u32) -> Result<Self, String> {
        Self::with_backfill(nodes, true)
    }

    /// A cluster with an explicit backfill policy: `backfill = false`
    /// degrades to plain FCFS — the ablation baseline showing how much
    /// utilization EASY recovers.
    pub fn with_backfill(nodes: u32, backfill: bool) -> Result<Self, String> {
        if nodes == 0 {
            return Err("cluster must have at least one node".into());
        }
        Ok(Self { nodes, backfill })
    }

    /// Cluster size.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Runs one year of FCFS + EASY backfill over `jobs` (any order;
    /// sorted internally by submit hour). Returns the hourly busy-node
    /// utilization in `[0, 1]` and summary stats.
    ///
    /// Jobs wider than the cluster are rejected (counted as unstarted).
    pub fn simulate_year(&self, jobs: &[Job]) -> (HourlySeries, ClusterStats) {
        let _span = span::span(span::CLUSTER_SIM);
        jobs_simulated().add(jobs.len() as u64);
        let mut sorted: Vec<Job> = jobs.to_vec();
        sorted.sort_by_key(|j| (j.submit_hour, j.id));

        let mut queue: VecDeque<Job> = VecDeque::new();
        let mut running: Vec<Running> = Vec::new();
        let mut free = self.nodes;
        let mut next_arrival = 0usize;

        let mut utilization = Vec::with_capacity(HOURS_PER_YEAR);
        let mut started = 0usize;
        let mut rejected = 0usize;
        let mut total_wait = 0u64;
        let mut max_wait = 0u32;

        for hour in 0..HOURS_PER_YEAR {
            // Complete jobs.
            running.retain(|r| {
                if r.end_hour <= hour {
                    free += r.nodes;
                    false
                } else {
                    true
                }
            });

            // Accept arrivals.
            while next_arrival < sorted.len() && sorted[next_arrival].submit_hour <= hour {
                let j = sorted[next_arrival];
                if j.nodes > self.nodes {
                    rejected += 1;
                } else {
                    queue.push_back(j);
                }
                next_arrival += 1;
            }

            // FCFS head starts.
            while let Some(&head) = queue.front() {
                if head.nodes <= free {
                    queue.pop_front();
                    free -= head.nodes;
                    running.push(Running {
                        end_hour: hour + head.duration_hours as usize,
                        nodes: head.nodes,
                    });
                    started += 1;
                    let wait = (hour - head.submit_hour) as u32;
                    total_wait += wait as u64;
                    max_wait = max_wait.max(wait);
                } else {
                    break;
                }
            }

            // EASY backfill: reserve the earliest feasible start for the
            // head, then let later jobs run if they cannot delay it.
            if !self.backfill {
                utilization.push((self.nodes - free) as f64 / self.nodes as f64);
                continue;
            }
            if let Some(&head) = queue.front() {
                let shadow = Self::shadow_time(&running, free, head.nodes, hour);
                // Nodes that will be free at shadow time beyond what the
                // head needs ("extra" nodes a long backfill job may hold).
                let free_at_shadow = self.free_at(&running, shadow);
                let extra = free_at_shadow.saturating_sub(head.nodes);

                let mut i = 1; // skip the head
                while i < queue.len() {
                    let cand = queue[i];
                    let fits_now = cand.nodes <= free;
                    let ends_before_shadow = hour + cand.duration_hours as usize <= shadow;
                    let within_extra = cand.nodes <= extra.min(free);
                    if fits_now && (ends_before_shadow || within_extra) {
                        free -= cand.nodes;
                        running.push(Running {
                            end_hour: hour + cand.duration_hours as usize,
                            nodes: cand.nodes,
                        });
                        started += 1;
                        let wait = (hour - cand.submit_hour) as u32;
                        total_wait += wait as u64;
                        max_wait = max_wait.max(wait);
                        queue.remove(i);
                    } else {
                        i += 1;
                    }
                }
            }

            utilization.push((self.nodes - free) as f64 / self.nodes as f64);
        }

        let unstarted = queue.len() + (sorted.len() - next_arrival) + rejected;
        let series = HourlySeries::from_vec(utilization);
        let stats = ClusterStats {
            started_jobs: started,
            unstarted_jobs: unstarted,
            mean_wait_hours: if started > 0 {
                total_wait as f64 / started as f64
            } else {
                0.0
            },
            max_wait_hours: max_wait,
            mean_utilization: series.mean(),
        };
        (series, stats)
    }

    /// Earliest hour at which `needed` nodes will be simultaneously free,
    /// given the current running set.
    fn shadow_time(running: &[Running], mut free: u32, needed: u32, now: usize) -> usize {
        if needed <= free {
            return now;
        }
        let mut ends: Vec<Running> = running.to_vec();
        ends.sort_by_key(|r| r.end_hour);
        for r in ends {
            free += r.nodes;
            if free >= needed {
                return r.end_hour;
            }
        }
        now // unreachable if needed ≤ cluster size
    }

    /// Free nodes at a future hour assuming no new starts.
    fn free_at(&self, running: &[Running], hour: usize) -> u32 {
        let busy: u32 = running
            .iter()
            .filter(|r| r.end_hour > hour)
            .map(|r| r.nodes)
            .sum();
        self.nodes - busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceConfig, TraceGenerator};

    fn job(id: u64, submit: usize, nodes: u32, dur: u32) -> Job {
        Job {
            id,
            submit_hour: submit,
            nodes,
            duration_hours: dur,
        }
    }

    #[test]
    fn single_job_runs_for_its_duration() {
        let sim = ClusterSim::new(10).unwrap();
        let (util, stats) = sim.simulate_year(&[job(0, 5, 5, 3)]);
        assert_eq!(util.get(4), 0.0);
        assert_eq!(util.get(5), 0.5);
        assert_eq!(util.get(7), 0.5);
        assert_eq!(util.get(8), 0.0);
        assert_eq!(stats.started_jobs, 1);
        assert_eq!(stats.unstarted_jobs, 0);
        assert_eq!(stats.mean_wait_hours, 0.0);
    }

    #[test]
    fn fcfs_queues_when_full() {
        let sim = ClusterSim::new(4).unwrap();
        let (util, stats) = sim.simulate_year(&[job(0, 0, 4, 4), job(1, 0, 4, 2)]);
        assert_eq!(util.get(0), 1.0);
        assert_eq!(util.get(3), 1.0);
        assert_eq!(util.get(4), 1.0); // second job starts at 4
        assert_eq!(util.get(5), 1.0);
        assert_eq!(util.get(6), 0.0);
        assert_eq!(stats.started_jobs, 2);
        assert!((stats.mean_wait_hours - 2.0).abs() < 1e-12); // waits 0 and 4
    }

    #[test]
    fn backfill_slips_a_short_job_ahead() {
        // 4-node cluster: J0 takes all 4 for 4 h. J1 (submitted first)
        // needs 4 nodes → must wait. J2 needs 2 nodes for 2 h... but all
        // nodes are busy until J0 ends, so nothing can backfill before
        // hour 4. Instead test the classic shape: J0 uses 2 nodes,
        // J1 (head) needs 4, J2 (1 node, 2 h) backfills immediately.
        let sim = ClusterSim::new(4).unwrap();
        let (util, stats) = sim.simulate_year(&[
            job(0, 0, 2, 4), // runs 0..4 on 2 nodes
            job(1, 1, 4, 2), // head: needs all 4, shadow = 4
            job(2, 1, 1, 2), // fits now and ends at 3 ≤ 4 → backfills
        ]);
        assert_eq!(stats.started_jobs, 3);
        // Hour 1: J0 (2 nodes) + J2 (1 node) = 3/4 busy.
        assert_eq!(util.get(1), 0.75);
        // Head starts at hour 4 (util 4/4).
        assert_eq!(util.get(4), 1.0);
    }

    #[test]
    fn backfill_never_delays_the_head() {
        // A long backfill candidate that would push the head's start must
        // not start.
        let sim = ClusterSim::new(4).unwrap();
        let (util, _stats) = sim.simulate_year(&[
            job(0, 0, 2, 4),  // 0..4 on 2 nodes
            job(1, 1, 4, 2),  // head, shadow = 4
            job(2, 1, 2, 10), // fits now, but ends at 11 > 4 and uses head nodes
        ]);
        // Hour 1: only J0 runs.
        assert_eq!(util.get(1), 0.5);
        // Head runs at hour 4.
        assert_eq!(util.get(4), 1.0);
        // J2 starts after the head finishes (hour 6).
        assert_eq!(util.get(6), 0.5);
    }

    #[test]
    fn oversized_jobs_are_rejected() {
        let sim = ClusterSim::new(4).unwrap();
        let (_, stats) = sim.simulate_year(&[job(0, 0, 8, 2), job(1, 0, 2, 2)]);
        assert_eq!(stats.started_jobs, 1);
        assert_eq!(stats.unstarted_jobs, 1);
    }

    #[test]
    fn generated_trace_reaches_target_utilization() {
        let cfg = TraceConfig {
            cluster_nodes: 512,
            target_utilization: 0.75,
            mean_duration_hours: 8.0,
            mean_width_fraction: 0.03,
            seed: 21,
        };
        let jobs = TraceGenerator::new(cfg).unwrap().generate_year();
        let sim = ClusterSim::new(512).unwrap();
        let (util, stats) = sim.simulate_year(&jobs);
        assert!(
            (stats.mean_utilization - 0.75).abs() < 0.12,
            "mean utilization {}",
            stats.mean_utilization
        );
        assert!(util.max() <= 1.0 + 1e-12);
        assert!(util.min() >= 0.0);
        // Most jobs start.
        assert!(stats.unstarted_jobs < jobs.len() / 10);
    }

    #[test]
    fn utilization_never_exceeds_one() {
        let cfg = TraceConfig {
            cluster_nodes: 64,
            target_utilization: 0.9,
            mean_duration_hours: 4.0,
            mean_width_fraction: 0.1,
            seed: 5,
        };
        let jobs = TraceGenerator::new(cfg).unwrap().generate_year();
        let (util, _) = ClusterSim::new(64).unwrap().simulate_year(&jobs);
        assert!(util.max() <= 1.0 + 1e-12);
    }

    #[test]
    fn zero_node_cluster_rejected() {
        assert!(ClusterSim::new(0).is_err());
        assert!(ClusterSim::with_backfill(0, false).is_err());
    }

    #[test]
    fn plain_fcfs_wastes_the_backfill_hole() {
        // Same workload as `backfill_slips_a_short_job_ahead`, but FCFS:
        // J2 must wait behind the blocked head.
        let sim = ClusterSim::with_backfill(4, false).unwrap();
        let (util, stats) = sim.simulate_year(&[job(0, 0, 2, 4), job(1, 1, 4, 2), job(2, 1, 1, 2)]);
        // Hour 1: only J0's 2 nodes busy — the hole goes unused.
        assert_eq!(util.get(1), 0.5);
        assert_eq!(stats.started_jobs, 3);
    }

    #[test]
    fn backfill_beats_fcfs_on_utilization() {
        let cfg = TraceConfig {
            cluster_nodes: 256,
            target_utilization: 0.85,
            mean_duration_hours: 8.0,
            mean_width_fraction: 0.08,
            seed: 33,
        };
        let jobs = TraceGenerator::new(cfg).unwrap().generate_year();
        let (_, easy) = ClusterSim::new(256).unwrap().simulate_year(&jobs);
        let (_, fcfs) = ClusterSim::with_backfill(256, false)
            .unwrap()
            .simulate_year(&jobs);
        assert!(
            easy.mean_utilization >= fcfs.mean_utilization,
            "EASY {} vs FCFS {}",
            easy.mean_utilization,
            fcfs.mean_utilization
        );
        // Backfilled jobs see shorter mean waits.
        assert!(easy.mean_wait_hours <= fcfs.mean_wait_hours);
    }
}
