//! A miniAMR-like kernel: 7-point stencil on a unit cube with
//! block-structured adaptive mesh refinement around a moving sphere.
//!
//! The paper's Fig. 13 experiment runs Sandia's miniAMR proxy app to get a
//! fixed-energy workload whose start time is then shifted against hourly
//! water/carbon intensity curves. This module reimplements the proxy's
//! essential behaviour — stencil sweeps over an octree of fixed-size
//! blocks, periodically regridded to track a moving refinement front —
//! with rayon data-parallelism over blocks (each sweep is two-phase:
//! ghost exchange, then an embarrassingly parallel per-block update).
//!
//! Cross-level ghost cells use nearest-sample injection (miniAMR's
//! default is similarly low-order); domain boundaries clamp.

use std::collections::HashMap;
use std::time::Instant;

use rayon::prelude::*;
use thirstyflops_catalog::NodeConfig;
use thirstyflops_units::{Hours, KilowattHours, Kilowatts};

/// Kernel configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MiniAmrConfig {
    /// Level-0 blocks per dimension (domain is `base_grid³` root blocks).
    pub base_grid: usize,
    /// Cells per dimension in every block (blocks are `block_cells³`).
    pub block_cells: usize,
    /// Maximum refinement level (0 = no refinement).
    pub max_level: u32,
    /// Stencil sweeps to run.
    pub steps: usize,
    /// Regrid cadence in steps.
    pub regrid_every: usize,
    /// Radius of the moving refinement sphere (unit-cube units).
    pub sphere_radius: f64,
    /// Sphere revolutions over the whole run.
    pub sphere_orbits: f64,
    /// Diffusion coefficient of the stencil update.
    pub alpha: f64,
}

impl Default for MiniAmrConfig {
    fn default() -> Self {
        Self {
            base_grid: 4,
            block_cells: 8,
            max_level: 2,
            steps: 40,
            regrid_every: 5,
            sphere_radius: 0.18,
            sphere_orbits: 1.0,
            alpha: 0.1,
        }
    }
}

impl MiniAmrConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.base_grid == 0 || self.block_cells < 2 {
            return Err("grid and block sizes must be positive (block ≥ 2)".into());
        }
        if self.regrid_every == 0 {
            return Err("regrid cadence must be positive".into());
        }
        if !(0.0..=0.5).contains(&self.alpha) {
            return Err(format!(
                "alpha {} outside stable range [0, 0.5]",
                self.alpha
            ));
        }
        if self.max_level > 4 {
            return Err("max_level > 4 explodes memory; refuse".into());
        }
        Ok(())
    }
}

/// Integer block coordinates at a refinement level.
type BlockKey = (u32, [usize; 3]);

/// One mesh block: `block_cells³` data cells (ghosts handled separately).
#[derive(Debug, Clone)]
struct Block {
    level: u32,
    idx: [usize; 3],
    cells: Vec<f64>,
}

/// Outcome of a kernel run, including the simulated-energy hook used by
/// the Fig. 13 experiment.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KernelReport {
    /// Sweeps executed.
    pub steps: usize,
    /// Total cell updates across all sweeps.
    pub cell_updates: u64,
    /// Floating-point operations executed (9 per cell update).
    pub flops: u64,
    /// Block count after the final regrid.
    pub final_blocks: usize,
    /// Peak block count observed.
    pub peak_blocks: usize,
    /// Final block count per refinement level (index = level). Shows how
    /// concentrated the mesh is around the refinement front.
    pub blocks_per_level: Vec<usize>,
    /// Wall-clock seconds.
    pub elapsed_seconds: f64,
    /// Sum of all cell values at the end (determinism check).
    pub checksum: f64,
}

impl KernelReport {
    /// Simulated node energy for this run: wall time at full utilization
    /// of `node`. The paper notes "in all cases, as expected, the miniAMR
    /// consumes the same amount of energy" — the energy depends only on
    /// the kernel, not the start time.
    pub fn simulated_energy(&self, node: &NodeConfig) -> KilowattHours {
        let power = Kilowatts::new(node.power_at_utilization_watts(1.0) / 1000.0);
        power * Hours::from_seconds(self.elapsed_seconds)
    }
}

/// The AMR mesh + stencil driver.
///
/// ```
/// use thirstyflops_workload::miniamr::{MiniAmr, MiniAmrConfig};
///
/// let report = MiniAmr::new(MiniAmrConfig {
///     base_grid: 2,
///     block_cells: 4,
///     max_level: 1,
///     steps: 4,
///     regrid_every: 2,
///     sphere_radius: 0.2,
///     sphere_orbits: 0.25,
///     alpha: 0.1,
/// }).unwrap().run();
/// assert_eq!(report.steps, 4);
/// assert_eq!(report.flops, report.cell_updates * 9);
/// ```
pub struct MiniAmr {
    config: MiniAmrConfig,
    blocks: Vec<Block>,
    index: HashMap<BlockKey, usize>,
}

impl MiniAmr {
    /// Builds the initial (unrefined) mesh with a smooth initial field.
    pub fn new(config: MiniAmrConfig) -> Result<Self, String> {
        config.validate()?;
        let mut mesh = Self {
            config,
            blocks: Vec::new(),
            index: HashMap::new(),
        };
        let g = mesh.config.base_grid;
        for ix in 0..g {
            for iy in 0..g {
                for iz in 0..g {
                    mesh.push_block(Block {
                        level: 0,
                        idx: [ix, iy, iz],
                        cells: mesh.init_cells(0, [ix, iy, iz]),
                    });
                }
            }
        }
        Ok(mesh)
    }

    /// Builds a **uniformly refined** mesh at `max_level` everywhere — the
    /// non-adaptive baseline. Running it with the same config measures
    /// what AMR saves: the uniform mesh resolves the sphere just as well
    /// but pays full resolution over the whole cube. Regridding becomes a
    /// no-op (every block already crosses nothing to coarsen to — the
    /// mesh is pinned by construction).
    pub fn new_uniform(mut config: MiniAmrConfig) -> Result<Self, String> {
        config.validate()?;
        // Pin the mesh: fold the refinement into the base grid and
        // disable further refinement.
        config.base_grid <<= config.max_level;
        config.max_level = 0;
        Self::new(config)
    }

    /// Current block count.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Runs the configured number of sweeps and returns a report.
    pub fn run(mut self) -> KernelReport {
        let start = Instant::now();
        let mut cell_updates = 0u64;
        let mut peak_blocks = self.blocks.len();

        for step in 0..self.config.steps {
            if step % self.config.regrid_every == 0 {
                let t = step as f64 / self.config.steps.max(1) as f64;
                self.regrid(self.sphere_center(t));
                peak_blocks = peak_blocks.max(self.blocks.len());
            }
            cell_updates += self.sweep();
        }

        let checksum: f64 = self
            .blocks
            .iter()
            .map(|b| b.cells.iter().sum::<f64>())
            .sum();
        let mut blocks_per_level = vec![0usize; self.config.max_level as usize + 1];
        for b in &self.blocks {
            blocks_per_level[b.level as usize] += 1;
        }
        KernelReport {
            steps: self.config.steps,
            cell_updates,
            flops: cell_updates * 9,
            final_blocks: self.blocks.len(),
            peak_blocks,
            blocks_per_level,
            elapsed_seconds: start.elapsed().as_secs_f64(),
            checksum,
        }
    }

    /// Sphere center at normalized time `t ∈ [0, 1]`: a circular orbit in
    /// the cube's mid-plane.
    fn sphere_center(&self, t: f64) -> [f64; 3] {
        let angle = t * self.config.sphere_orbits * core::f64::consts::TAU;
        [0.5 + 0.25 * angle.cos(), 0.5 + 0.25 * angle.sin(), 0.5]
    }

    fn push_block(&mut self, block: Block) {
        self.index
            .insert((block.level, block.idx), self.blocks.len());
        self.blocks.push(block);
    }

    /// Smooth initial condition evaluated at a block's cell centers.
    fn init_cells(&self, level: u32, idx: [usize; 3]) -> Vec<f64> {
        let n = self.config.block_cells;
        let mut cells = vec![0.0; n * n * n];
        for cx in 0..n {
            for cy in 0..n {
                for cz in 0..n {
                    let p = self.cell_center(level, idx, [cx, cy, cz]);
                    cells[Self::cell_of(n, cx, cy, cz)] = (p[0] * core::f64::consts::TAU).sin()
                        * (p[1] * core::f64::consts::TAU).cos()
                        + p[2];
                }
            }
        }
        cells
    }

    #[inline]
    fn cell_of(n: usize, x: usize, y: usize, z: usize) -> usize {
        (x * n + y) * n + z
    }

    /// Physical center of a cell.
    fn cell_center(&self, level: u32, idx: [usize; 3], cell: [usize; 3]) -> [f64; 3] {
        let blocks_per_dim = (self.config.base_grid << level) as f64;
        let h = 1.0 / (blocks_per_dim * self.config.block_cells as f64);
        [
            (idx[0] as f64 * self.config.block_cells as f64 + cell[0] as f64 + 0.5) * h,
            (idx[1] as f64 * self.config.block_cells as f64 + cell[1] as f64 + 0.5) * h,
            (idx[2] as f64 * self.config.block_cells as f64 + cell[2] as f64 + 0.5) * h,
        ]
    }

    /// Samples the field at a physical point from the current mesh
    /// (finest covering leaf, nearest cell).
    fn sample(&self, p: [f64; 3]) -> f64 {
        let n = self.config.block_cells;
        for level in (0..=self.config.max_level).rev() {
            let blocks_per_dim = self.config.base_grid << level;
            let cells_per_dim = (blocks_per_dim * n) as f64;
            let gx = (p[0].clamp(0.0, 1.0 - 1e-12) * cells_per_dim) as usize;
            let gy = (p[1].clamp(0.0, 1.0 - 1e-12) * cells_per_dim) as usize;
            let gz = (p[2].clamp(0.0, 1.0 - 1e-12) * cells_per_dim) as usize;
            let key = (level, [gx / n, gy / n, gz / n]);
            if let Some(&bi) = self.index.get(&key) {
                return self.blocks[bi].cells[Self::cell_of(n, gx % n, gy % n, gz % n)];
            }
        }
        0.0
    }

    /// One two-phase parallel stencil sweep; returns cells updated.
    fn sweep(&mut self) -> u64 {
        let n = self.config.block_cells;
        let alpha = self.config.alpha;

        // Phase 1 (read-only, parallel): gather each block's six ghost
        // faces by sampling the global mesh just outside the block.
        let ghosts: Vec<[Vec<f64>; 6]> = self
            .blocks
            .par_iter()
            .map(|b| self.gather_ghost_faces(b))
            .collect();

        // Phase 2 (parallel over blocks): diffusion update from the old
        // cells + ghosts into fresh buffers.
        let new_cells: Vec<Vec<f64>> = self
            .blocks
            .par_iter()
            .zip(ghosts.par_iter())
            .map(|(b, ghost)| {
                let old = &b.cells;
                let mut new = vec![0.0; old.len()];
                for x in 0..n {
                    for y in 0..n {
                        for z in 0..n {
                            let c = old[Self::cell_of(n, x, y, z)];
                            let xm = if x > 0 {
                                old[Self::cell_of(n, x - 1, y, z)]
                            } else {
                                ghost[0][y * n + z]
                            };
                            let xp = if x + 1 < n {
                                old[Self::cell_of(n, x + 1, y, z)]
                            } else {
                                ghost[1][y * n + z]
                            };
                            let ym = if y > 0 {
                                old[Self::cell_of(n, x, y - 1, z)]
                            } else {
                                ghost[2][x * n + z]
                            };
                            let yp = if y + 1 < n {
                                old[Self::cell_of(n, x, y + 1, z)]
                            } else {
                                ghost[3][x * n + z]
                            };
                            let zm = if z > 0 {
                                old[Self::cell_of(n, x, y, z - 1)]
                            } else {
                                ghost[4][x * n + y]
                            };
                            let zp = if z + 1 < n {
                                old[Self::cell_of(n, x, y, z + 1)]
                            } else {
                                ghost[5][x * n + y]
                            };
                            new[Self::cell_of(n, x, y, z)] =
                                c + alpha * (xm + xp + ym + yp + zm + zp - 6.0 * c);
                        }
                    }
                }
                new
            })
            .collect();

        for (b, cells) in self.blocks.iter_mut().zip(new_cells) {
            b.cells = cells;
        }
        (self.blocks.len() * n * n * n) as u64
    }

    /// Ghost faces for one block: −x, +x, −y, +y, −z, +z, each `n²`
    /// values sampled half a cell outside the block (clamped at domain
    /// boundaries, nearest-sample across refinement levels).
    fn gather_ghost_faces(&self, b: &Block) -> [Vec<f64>; 6] {
        let n = self.config.block_cells;
        let blocks_per_dim = (self.config.base_grid << b.level) as f64;
        let h = 1.0 / (blocks_per_dim * n as f64);
        let lo = [
            b.idx[0] as f64 * n as f64 * h,
            b.idx[1] as f64 * n as f64 * h,
            b.idx[2] as f64 * n as f64 * h,
        ];
        let hi = [
            lo[0] + n as f64 * h,
            lo[1] + n as f64 * h,
            lo[2] + n as f64 * h,
        ];

        let mut faces: [Vec<f64>; 6] = [
            vec![0.0; n * n],
            vec![0.0; n * n],
            vec![0.0; n * n],
            vec![0.0; n * n],
            vec![0.0; n * n],
            vec![0.0; n * n],
        ];
        for a in 0..n {
            for bb in 0..n {
                let u = lo[1] + (a as f64 + 0.5) * h; // y along first axis
                let v = lo[2] + (bb as f64 + 0.5) * h; // z along second
                faces[0][a * n + bb] = self.sample([lo[0] - 0.5 * h, u, v]);
                faces[1][a * n + bb] = self.sample([hi[0] + 0.5 * h, u, v]);
                let ux = lo[0] + (a as f64 + 0.5) * h; // x along first axis
                faces[2][a * n + bb] = self.sample([ux, lo[1] - 0.5 * h, v]);
                faces[3][a * n + bb] = self.sample([ux, hi[1] + 0.5 * h, v]);
                let vy = lo[1] + (bb as f64 + 0.5) * h;
                faces[4][a * n + bb] = self.sample([ux, vy, lo[2] - 0.5 * h]);
                faces[5][a * n + bb] = self.sample([ux, vy, hi[2] + 0.5 * h]);
            }
        }
        faces
    }

    /// Rebuilds the mesh so blocks crossing the sphere's surface are at
    /// `max_level` and everything else coarsens back toward level 0,
    /// resampling field data from the old mesh.
    fn regrid(&mut self, center: [f64; 3]) {
        let mut new_keys: Vec<BlockKey> = Vec::new();
        let g = self.config.base_grid;
        for ix in 0..g {
            for iy in 0..g {
                for iz in 0..g {
                    self.collect_leaves(0, [ix, iy, iz], center, &mut new_keys);
                }
            }
        }

        let mut new_blocks: Vec<Block> = Vec::with_capacity(new_keys.len());
        let n = self.config.block_cells;
        for (level, idx) in new_keys {
            let mut cells = vec![0.0; n * n * n];
            for cx in 0..n {
                for cy in 0..n {
                    for cz in 0..n {
                        let p = self.cell_center(level, idx, [cx, cy, cz]);
                        cells[Self::cell_of(n, cx, cy, cz)] = self.sample(p);
                    }
                }
            }
            new_blocks.push(Block { level, idx, cells });
        }

        self.blocks.clear();
        self.index.clear();
        for b in new_blocks {
            self.push_block(b);
        }
    }

    /// Recursive refinement decision: refine while the block's bounding
    /// box crosses the sphere surface and levels remain.
    fn collect_leaves(
        &self,
        level: u32,
        idx: [usize; 3],
        center: [f64; 3],
        out: &mut Vec<BlockKey>,
    ) {
        if level < self.config.max_level && self.crosses_sphere(level, idx, center) {
            for dx in 0..2 {
                for dy in 0..2 {
                    for dz in 0..2 {
                        self.collect_leaves(
                            level + 1,
                            [idx[0] * 2 + dx, idx[1] * 2 + dy, idx[2] * 2 + dz],
                            center,
                            out,
                        );
                    }
                }
            }
        } else {
            out.push((level, idx));
        }
    }

    /// Whether the block's box crosses the sphere *surface* (the
    /// refinement front tracks the shell, as in miniAMR's moving-object
    /// mode).
    fn crosses_sphere(&self, level: u32, idx: [usize; 3], center: [f64; 3]) -> bool {
        let w = 1.0 / (self.config.base_grid << level) as f64;
        let lo = [idx[0] as f64 * w, idx[1] as f64 * w, idx[2] as f64 * w];
        let hi = [lo[0] + w, lo[1] + w, lo[2] + w];
        // Min and max distance from the box to the center.
        let mut dmin2 = 0.0;
        let mut dmax2 = 0.0;
        for d in 0..3 {
            let lo_d = lo[d] - center[d];
            let hi_d = hi[d] - center[d];
            let min_d = if lo_d > 0.0 {
                lo_d
            } else if hi_d < 0.0 {
                -hi_d
            } else {
                0.0
            };
            let max_d = lo_d.abs().max(hi_d.abs());
            dmin2 += min_d * min_d;
            dmax2 += max_d * max_d;
        }
        let r = self.config.sphere_radius;
        dmin2.sqrt() <= r && r <= dmax2.sqrt()
    }
}

/// Runs the kernel inside a dedicated rayon pool of `threads` workers
/// (for the strong-scaling bench); `threads = 0` uses the global pool.
pub fn run_with_threads(config: MiniAmrConfig, threads: usize) -> Result<KernelReport, String> {
    let mesh = MiniAmr::new(config)?;
    if threads == 0 {
        Ok(mesh.run())
    } else {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .map_err(|e| e.to_string())?;
        Ok(pool.install(|| mesh.run()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MiniAmrConfig {
        MiniAmrConfig {
            base_grid: 2,
            block_cells: 4,
            max_level: 2,
            steps: 10,
            regrid_every: 3,
            sphere_radius: 0.2,
            sphere_orbits: 0.5,
            alpha: 0.1,
        }
    }

    #[test]
    fn initial_mesh_covers_domain() {
        let mesh = MiniAmr::new(small()).unwrap();
        assert_eq!(mesh.block_count(), 8);
    }

    #[test]
    fn refinement_tracks_the_sphere() {
        let mut mesh = MiniAmr::new(small()).unwrap();
        mesh.regrid([0.5, 0.5, 0.5]);
        // Blocks near the shell refined: more than the 8 roots.
        assert!(mesh.block_count() > 8, "{} blocks", mesh.block_count());
        // All leaves within level bounds.
        for b in &mesh.blocks {
            assert!(b.level <= 2);
        }
        // Moving the sphere away coarsens back.
        mesh.regrid([5.0, 5.0, 5.0]);
        assert_eq!(mesh.block_count(), 8);
    }

    #[test]
    fn run_is_deterministic_across_thread_counts() {
        // The determinism contract (docs/CONCURRENCY.md) promises
        // bit-identical results, not merely close ones.
        let a = run_with_threads(small(), 1).unwrap();
        for threads in [2, 4, 8] {
            let b = run_with_threads(small(), threads).unwrap();
            assert_eq!(a.cell_updates, b.cell_updates, "{threads} threads");
            assert_eq!(a.final_blocks, b.final_blocks, "{threads} threads");
            assert_eq!(a.blocks_per_level, b.blocks_per_level, "{threads} threads");
            assert_eq!(
                a.checksum.to_bits(),
                b.checksum.to_bits(),
                "{threads} threads: {} vs {}",
                a.checksum,
                b.checksum
            );
        }
    }

    #[test]
    fn diffusion_conserves_rough_magnitude() {
        // A pure diffusion update with clamped boundaries must not blow up.
        let report = MiniAmr::new(small()).unwrap().run();
        assert!(report.checksum.is_finite());
        assert_eq!(report.steps, 10);
        assert!(report.cell_updates > 0);
        assert_eq!(report.flops, report.cell_updates * 9);
        assert!(report.peak_blocks >= report.final_blocks.min(8));
    }

    #[test]
    fn validation_rejects_unstable_alpha_and_huge_levels() {
        let mut c = small();
        c.alpha = 0.9;
        assert!(MiniAmr::new(c).is_err());
        let mut c = small();
        c.max_level = 9;
        assert!(MiniAmr::new(c).is_err());
        let mut c = small();
        c.regrid_every = 0;
        assert!(MiniAmr::new(c).is_err());
        let mut c = small();
        c.block_cells = 1;
        assert!(MiniAmr::new(c).is_err());
    }

    #[test]
    fn simulated_energy_scales_with_node_power() {
        use thirstyflops_catalog::{FabSite, NodeConfig, ProcessorSpec};
        let report = MiniAmr::new(small()).unwrap().run();
        let node = NodeConfig {
            cpu: ProcessorSpec::new("X", 700.0, 14, FabSite::IntelOregon, 200.0),
            cpus_per_node: 2,
            gpu: None,
            gpus_per_node: 0,
            dram_gb: 384.0,
            ics_per_node: 12,
            misc_power_watts: 100.0,
            idle_fraction: 0.3,
        };
        let e = report.simulated_energy(&node);
        assert!(e.value() > 0.0);
        // 500 W node for the elapsed wall time.
        let expected = 0.5 * report.elapsed_seconds / 3600.0;
        assert!((e.value() - expected).abs() < 1e-9);
    }

    #[test]
    fn level_histogram_accounts_for_every_block() {
        let report = MiniAmr::new(small()).unwrap().run();
        assert_eq!(report.blocks_per_level.len(), 3); // levels 0..=2
        assert_eq!(
            report.blocks_per_level.iter().sum::<usize>(),
            report.final_blocks
        );
        // The uniform mesh lives entirely at its (folded) level 0.
        let uniform = MiniAmr::new_uniform(small()).unwrap().run();
        assert_eq!(uniform.blocks_per_level, vec![uniform.final_blocks]);
    }

    #[test]
    fn amr_saves_work_versus_uniform_refinement() {
        // The miniAMR value proposition: the adaptive mesh updates far
        // fewer cells than a uniformly fine mesh at the same max level.
        let amr = MiniAmr::new(small()).unwrap().run();
        let uniform = MiniAmr::new_uniform(small()).unwrap().run();
        assert!(
            (amr.cell_updates as f64) < 0.6 * uniform.cell_updates as f64,
            "AMR {} vs uniform {}",
            amr.cell_updates,
            uniform.cell_updates
        );
        // The uniform mesh has (base_grid << max_level)³ blocks, always.
        assert_eq!(uniform.final_blocks, 8 * 8 * 8);
        assert_eq!(uniform.peak_blocks, uniform.final_blocks);
    }

    #[test]
    fn more_steps_do_more_work() {
        let mut big = small();
        big.steps = 20;
        let a = MiniAmr::new(small()).unwrap().run();
        let b = MiniAmr::new(big).unwrap().run();
        assert!(b.cell_updates > a.cell_updates);
    }
}
