//! Synthetic job-trace generation.
//!
//! Calibrated to the qualitative shape of published HPC workload studies
//! (and the systems' own log papers): Poisson arrivals modulated by
//! diurnal/weekly/seasonal demand, log-normal service times, and a
//! heavy-tailed node-count distribution with a bias toward powers of two.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thirstyflops_obs::span;
use thirstyflops_timeseries::{SimCalendar, HOURS_PER_YEAR};

/// One batch job in a trace.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Job {
    /// Sequential id within the trace.
    pub id: u64,
    /// Submission hour-of-year.
    pub submit_hour: usize,
    /// Nodes requested.
    pub nodes: u32,
    /// Runtime in whole hours (≥ 1).
    pub duration_hours: u32,
}

impl Job {
    /// Node-hours consumed.
    pub fn node_hours(&self) -> f64 {
        self.nodes as f64 * self.duration_hours as f64
    }
}

/// Trace generator configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceConfig {
    /// Cluster size in nodes (caps job widths).
    pub cluster_nodes: u32,
    /// Target long-run machine utilization in `(0, 1)`.
    pub target_utilization: f64,
    /// Mean job runtime, hours.
    pub mean_duration_hours: f64,
    /// Mean job width as a fraction of the cluster.
    pub mean_width_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TraceConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.cluster_nodes == 0 {
            return Err("cluster must have nodes".into());
        }
        if !(0.0 < self.target_utilization && self.target_utilization < 1.0) {
            return Err(format!(
                "target utilization must be in (0,1): {}",
                self.target_utilization
            ));
        }
        if self.mean_duration_hours < 1.0 {
            return Err("mean duration must be at least one hour".into());
        }
        if !(0.0 < self.mean_width_fraction && self.mean_width_fraction <= 1.0) {
            return Err("mean width fraction must be in (0,1]".into());
        }
        Ok(())
    }
}

/// Seeded synthetic job-trace generator.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: TraceConfig,
}

impl TraceGenerator {
    /// Creates a generator after validating the configuration.
    pub fn new(config: TraceConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Demand multiplier at an hour: weekday working hours are busy,
    /// nights/weekends quieter, December and August dip (maintenance /
    /// holidays) — the seasonal texture visible in Fig. 11's power panels.
    pub fn demand_multiplier(hour: usize) -> f64 {
        let cal = SimCalendar;
        let hod = cal.hour_of_day(hour) as f64;
        let dow = cal.day_of_year(hour) % 7; // day 0 = a Monday, by fiat
        let month = cal.month_of_hour(hour);

        let diurnal = 1.0 + 0.25 * ((hod - 14.0) / 24.0 * core::f64::consts::TAU).cos();
        let weekly = if dow >= 5 { 0.75 } else { 1.05 };
        let seasonal = match month {
            thirstyflops_timeseries::Month::December => 0.80,
            thirstyflops_timeseries::Month::August => 0.88,
            thirstyflops_timeseries::Month::January => 0.95,
            _ => 1.02,
        };
        diurnal * weekly * seasonal
    }

    /// Generates one year of jobs.
    pub fn generate_year(&self) -> Vec<Job> {
        let _span = span::span(span::TRACE_GEN);
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Offered load: jobs/hour so that E[width·duration]·λ equals the
        // target node-hours per hour.
        let mean_width = (cfg.mean_width_fraction * cfg.cluster_nodes as f64).max(1.0);
        let node_hours_per_job = mean_width * cfg.mean_duration_hours;
        let lambda_base = cfg.target_utilization * cfg.cluster_nodes as f64 / node_hours_per_job;

        let mut jobs = Vec::new();
        let mut id = 0u64;
        for hour in 0..HOURS_PER_YEAR {
            let lambda = lambda_base * Self::demand_multiplier(hour);
            let n = poisson(&mut rng, lambda);
            for _ in 0..n {
                let duration = sample_duration(&mut rng, cfg.mean_duration_hours);
                let nodes = sample_width(&mut rng, mean_width, cfg.cluster_nodes);
                jobs.push(Job {
                    id,
                    submit_hour: hour,
                    nodes,
                    duration_hours: duration,
                });
                id += 1;
            }
        }
        jobs
    }
}

/// Poisson sample via inversion (λ is small per hour) with a normal
/// approximation fallback for large λ.
fn poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Normal approximation.
        let g = gaussian(rng);
        return (lambda + lambda.sqrt() * g).round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // numerically impossible; guard anyway
        }
    }
}

/// Log-normal duration with the requested mean, clamped to [1, 168] hours.
fn sample_duration(rng: &mut StdRng, mean_hours: f64) -> u32 {
    let sigma = 1.0f64;
    // For LogNormal(μ, σ): mean = exp(μ + σ²/2).
    let mu = mean_hours.ln() - sigma * sigma / 2.0;
    let d = (mu + sigma * gaussian(rng)).exp();
    d.round().clamp(1.0, 168.0) as u32
}

/// Heavy-tailed width biased to powers of two, capped at the cluster.
fn sample_width(rng: &mut StdRng, mean_width: f64, cluster: u32) -> u32 {
    // Exponential base draw.
    let raw = -mean_width * rng.random::<f64>().max(1e-12).ln();
    let mut w = raw.round().clamp(1.0, cluster as f64) as u32;
    // Two thirds of jobs snap to the nearest power of two (common request
    // pattern in production logs); nearest keeps the mean width unbiased.
    if rng.random::<f64>() < 0.66 {
        let up = w.next_power_of_two().max(1);
        let down = (up / 2).max(1);
        // Round at the geometric mean of the two candidates.
        w = if (w as f64) * (w as f64) >= (up as f64) * (down as f64) {
            up
        } else {
            down
        };
        w = w.min(cluster);
    }
    w.max(1)
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> TraceConfig {
        TraceConfig {
            cluster_nodes: 1000,
            target_utilization: 0.8,
            mean_duration_hours: 6.0,
            mean_width_fraction: 0.02,
            seed: 11,
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = TraceGenerator::new(config()).unwrap().generate_year();
        let b = TraceGenerator::new(config()).unwrap().generate_year();
        assert_eq!(a, b);
        let mut cfg = config();
        cfg.seed = 12;
        let c = TraceGenerator::new(cfg).unwrap().generate_year();
        assert_ne!(a.len(), 0);
        assert!(a.len() != c.len() || a != c);
    }

    #[test]
    fn offered_load_close_to_target() {
        let jobs = TraceGenerator::new(config()).unwrap().generate_year();
        let node_hours: f64 = jobs.iter().map(Job::node_hours).sum();
        let offered = node_hours / (1000.0 * HOURS_PER_YEAR as f64);
        // Offered load should be within 25 % of the target utilization
        // (scheduling losses come later, in the cluster sim).
        assert!(
            (offered - 0.8).abs() < 0.2,
            "offered load {offered}, expected ≈0.8"
        );
    }

    #[test]
    fn job_bounds_respected() {
        let jobs = TraceGenerator::new(config()).unwrap().generate_year();
        for j in &jobs {
            assert!(j.nodes >= 1 && j.nodes <= 1000);
            assert!(j.duration_hours >= 1 && j.duration_hours <= 168);
            assert!(j.submit_hour < HOURS_PER_YEAR);
        }
        // Ids are sequential.
        assert!(jobs.windows(2).all(|w| w[1].id == w[0].id + 1));
    }

    #[test]
    fn weekend_demand_lower_than_weekday() {
        // dow = day_of_year % 7; days 0–4 weekdays, 5–6 weekend.
        let weekday = TraceGenerator::demand_multiplier(2 * 24 + 12);
        let weekend = TraceGenerator::demand_multiplier(5 * 24 + 12);
        assert!(weekday > weekend);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut c = config();
        c.target_utilization = 1.5;
        assert!(TraceGenerator::new(c).is_err());
        let mut c = config();
        c.cluster_nodes = 0;
        assert!(TraceGenerator::new(c).is_err());
        let mut c = config();
        c.mean_duration_hours = 0.2;
        assert!(TraceGenerator::new(c).is_err());
        let mut c = config();
        c.mean_width_fraction = 0.0;
        assert!(TraceGenerator::new(c).is_err());
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = StdRng::seed_from_u64(3);
        for &lambda in &[0.5, 3.0, 50.0] {
            let n = 4000;
            let total: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.1,
                "λ={lambda} mean={mean}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }
}
