//! Standard Workload Format (SWF) interchange.
//!
//! The paper's pipeline starts from production job logs (M100 exadata,
//! ALCF public data, Fugaku logs). Sites that *do* hold such logs usually
//! have them in the Parallel Workloads Archive's SWF: one job per line,
//! 18 whitespace-separated fields, `;` comment headers. This module
//! imports the fields the footprint pipeline needs (submit time, runtime,
//! processors) and exports our synthetic traces in the same shape, so
//! real logs and synthetic traces are interchangeable everywhere a
//! [`Job`] slice is accepted.
//!
//! Field mapping (SWF index → meaning):
//! `0` job id, `1` submit time (s), `3` run time (s), `4` allocated
//! processors. Jobs with non-positive runtime or processor counts
//! (cancelled/failed entries) are skipped, as is conventional.

use crate::trace::Job;

/// Result of an SWF import.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SwfImport {
    /// Parsed, usable jobs (hour-granular, year-clipped).
    pub jobs: Vec<Job>,
    /// Lines skipped (comments, malformed, cancelled).
    pub skipped: usize,
}

/// Parses SWF text into jobs.
///
/// * `processors_per_node` converts SWF processor counts into node counts
///   (SWF logs allocation in CPUs; the cluster simulator thinks in
///   nodes). Use 1 if the log is already node-granular.
/// * Submit times are seconds from the log's start; jobs submitted past
///   the simulated year are dropped (counted as skipped).
pub fn parse_swf(text: &str, processors_per_node: u32) -> Result<SwfImport, String> {
    if processors_per_node == 0 {
        return Err("processors_per_node must be positive".into());
    }
    let mut jobs = Vec::new();
    let mut skipped = 0usize;
    let mut id = 0u64;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            skipped += 1;
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 5 {
            skipped += 1;
            continue;
        }
        let submit_s: f64 = match fields[1].parse() {
            Ok(v) => v,
            Err(_) => {
                skipped += 1;
                continue;
            }
        };
        let run_s: f64 = match fields[3].parse() {
            Ok(v) => v,
            Err(_) => {
                skipped += 1;
                continue;
            }
        };
        let procs: f64 = match fields[4].parse() {
            Ok(v) => v,
            Err(_) => {
                skipped += 1;
                continue;
            }
        };
        if run_s <= 0.0 || procs <= 0.0 || submit_s < 0.0 {
            skipped += 1;
            continue;
        }
        let submit_hour = (submit_s / 3600.0) as usize;
        if submit_hour >= thirstyflops_timeseries::HOURS_PER_YEAR {
            skipped += 1;
            continue;
        }
        let nodes = ((procs / processors_per_node as f64).ceil() as u32).max(1);
        let duration_hours = ((run_s / 3600.0).ceil() as u32).max(1);
        jobs.push(Job {
            id,
            submit_hour,
            nodes,
            duration_hours,
        });
        id += 1;
    }
    Ok(SwfImport { jobs, skipped })
}

/// Renders jobs as SWF text (the fields we model; unknown fields are
/// `-1`, per SWF convention).
pub fn to_swf(jobs: &[Job], processors_per_node: u32) -> String {
    let mut out = String::from(
        "; SWF export from thirstyflops-workload\n; fields: id submit wait run procs -1×13\n",
    );
    for j in jobs {
        let submit_s = j.submit_hour as u64 * 3600;
        let run_s = j.duration_hours as u64 * 3600;
        let procs = j.nodes as u64 * processors_per_node as u64;
        out.push_str(&format!(
            "{} {} -1 {} {} -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1\n",
            j.id, submit_s, run_s, procs
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceConfig, TraceGenerator};

    const SAMPLE: &str = "\
; Parallel Workloads Archive style header
; Computer: Testcluster
1 0 10 7200 128 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
2 3600 5 1800 64 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
3 7200 0 -1 32 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
4 10800 0 600 0 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
garbage line
";

    #[test]
    fn parses_valid_jobs_and_skips_the_rest() {
        let import = parse_swf(SAMPLE, 64).unwrap();
        assert_eq!(import.jobs.len(), 2);
        // Comments(2) + cancelled(1) + zero-procs(1) + garbage(1).
        assert_eq!(import.skipped, 5);
        let j0 = import.jobs[0];
        assert_eq!(j0.submit_hour, 0);
        assert_eq!(j0.duration_hours, 2); // 7200 s
        assert_eq!(j0.nodes, 2); // 128 procs / 64 per node
        let j1 = import.jobs[1];
        assert_eq!(j1.submit_hour, 1);
        assert_eq!(j1.duration_hours, 1); // 1800 s rounds up
        assert_eq!(j1.nodes, 1);
    }

    #[test]
    fn round_trip_through_swf() {
        let cfg = TraceConfig {
            cluster_nodes: 256,
            target_utilization: 0.5,
            mean_duration_hours: 4.0,
            mean_width_fraction: 0.05,
            seed: 3,
        };
        let jobs = TraceGenerator::new(cfg).unwrap().generate_year();
        let text = to_swf(&jobs[..200.min(jobs.len())], 32);
        let back = parse_swf(&text, 32).unwrap();
        assert_eq!(back.jobs.len(), 200.min(jobs.len()));
        for (a, b) in jobs.iter().zip(&back.jobs) {
            assert_eq!(a.submit_hour, b.submit_hour);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.duration_hours, b.duration_hours);
        }
    }

    #[test]
    fn imported_jobs_drive_the_cluster_sim() {
        let import = parse_swf(SAMPLE, 64).unwrap();
        let (util, stats) = crate::cluster::ClusterSim::new(4)
            .unwrap()
            .simulate_year(&import.jobs);
        assert_eq!(stats.started_jobs, 2);
        assert!(util.max() > 0.0);
    }

    #[test]
    fn validation_and_year_clipping() {
        assert!(parse_swf(SAMPLE, 0).is_err());
        // A job submitted after the simulated year is skipped.
        let late = "9 999999999 0 3600 64 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1\n";
        let import = parse_swf(late, 64).unwrap();
        assert!(import.jobs.is_empty());
        assert_eq!(import.skipped, 1);
    }
}
