//! HPC workload substrate for ThirstyFLOPS.
//!
//! The paper estimates operational footprints from production telemetry:
//! Marconi's M100 exadata, ALCF's public Polaris logs, Fugaku job logs,
//! and Frontier's power dataset. Those logs aren't redistributable, so
//! this crate rebuilds the same estimation path from synthetic inputs:
//!
//! * [`TraceGenerator`] — a seeded job-trace generator (Poisson arrivals
//!   with seasonal/weekly/diurnal demand cycles, log-normal durations,
//!   heavy-tailed node counts);
//! * [`ClusterSim`] — an hour-stepped FCFS + EASY-backfill cluster
//!   simulator turning a trace into a machine-utilization series;
//! * [`PowerModel`] — utilization × TDP → hourly power and energy (the
//!   paper's own fallback when power logs are missing: "we calculate the
//!   machine utilization from job logs and estimate the energy
//!   consumption ... using the hardware's thermal design power");
//! * [`miniamr`] — a rayon-parallel block-structured AMR stencil kernel
//!   standing in for the miniAMR mini-app of the Fig. 13 experiment;
//! * [`swf`] — Standard Workload Format import/export, so sites holding
//!   real production logs can feed them to the same pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
pub mod miniamr;
mod power;
pub mod swf;
mod trace;

pub use cluster::{ClusterSim, ClusterStats};
pub use power::PowerModel;
pub use swf::{parse_swf, to_swf, SwfImport};
pub use trace::{Job, TraceConfig, TraceGenerator};
