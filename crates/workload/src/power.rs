//! Utilization → power → energy, the paper's TDP-based estimation path.

use thirstyflops_catalog::SystemSpec;
use thirstyflops_obs::span;
use thirstyflops_timeseries::{HourlySeries, MonthlySeries};
use thirstyflops_units::{KilowattHours, Kilowatts};

/// Converts a machine-utilization series into IT power and energy for a
/// cataloged system.
#[derive(Debug, Clone)]
pub struct PowerModel<'a> {
    spec: &'a SystemSpec,
}

impl<'a> PowerModel<'a> {
    /// A power model for one system.
    pub fn new(spec: &'a SystemSpec) -> Self {
        Self { spec }
    }

    /// IT power at a utilization level, kW (whole machine).
    pub fn power_at(&self, utilization: f64) -> Kilowatts {
        let per_node_w = self.spec.node.power_at_utilization_watts(utilization);
        Kilowatts::new(per_node_w * self.spec.nodes as f64 / 1000.0)
    }

    /// Hourly IT power series, kW, from a utilization series.
    pub fn power_series(&self, utilization: &HourlySeries) -> HourlySeries {
        utilization.map(|u| self.power_at(u).value())
    }

    /// Hourly IT energy series, kWh (numerically equal to power over
    /// 1-hour steps).
    pub fn energy_series(&self, utilization: &HourlySeries) -> HourlySeries {
        let _span = span::span(span::POWER_MODEL);
        self.power_series(utilization)
    }

    /// Monthly IT energy, kWh.
    pub fn monthly_energy(&self, utilization: &HourlySeries) -> MonthlySeries {
        self.energy_series(utilization).monthly_sum()
    }

    /// Annual IT energy, kWh.
    pub fn annual_energy(&self, utilization: &HourlySeries) -> KilowattHours {
        KilowattHours::new(self.energy_series(utilization).total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thirstyflops_catalog::SystemId;
    use thirstyflops_timeseries::HOURS_PER_YEAR;

    #[test]
    fn power_scales_with_utilization() {
        let spec = SystemSpec::reference(SystemId::Frontier);
        let m = PowerModel::new(&spec);
        let idle = m.power_at(0.0).value();
        let full = m.power_at(1.0).value();
        assert!(full > idle);
        assert!((idle / full - spec.node.idle_fraction).abs() < 1e-9);
        // Frontier at full tilt is tens of MW.
        assert!(full > 15_000.0 && full < 40_000.0, "{full} kW");
    }

    #[test]
    fn energy_series_totals_match() {
        let spec = SystemSpec::reference(SystemId::Polaris);
        let m = PowerModel::new(&spec);
        let util = HourlySeries::constant(0.7);
        let annual = m.annual_energy(&util).value();
        let expected = m.power_at(0.7).value() * HOURS_PER_YEAR as f64;
        assert!((annual - expected).abs() < 1e-6 * expected);
        // Monthly sums add back to the annual total.
        let monthly = m.monthly_energy(&util);
        assert!((monthly.total() - annual).abs() < 1e-6 * annual);
    }

    #[test]
    fn fugaku_annual_energy_magnitude() {
        // ~25 MW-scale machine at 75 % utilization ⇒ hundreds of GWh/year.
        let spec = SystemSpec::reference(SystemId::Fugaku);
        let m = PowerModel::new(&spec);
        let util = HourlySeries::constant(spec.mean_utilization);
        let gwh = m.annual_energy(&util).value() / 1e6;
        assert!((100.0..300.0).contains(&gwh), "Fugaku {gwh} GWh");
    }
}
