//! Property-based tests for the workload substrate: the cluster simulator
//! must uphold its invariants for *arbitrary* job lists, not just
//! generated traces.

use proptest::prelude::*;
use thirstyflops_workload::{ClusterSim, Job, TraceConfig, TraceGenerator};

fn arb_jobs(cluster: u32) -> impl Strategy<Value = Vec<Job>> {
    proptest::collection::vec(
        (0usize..8760, 1u32..cluster * 2, 1u32..72).prop_map(|(submit, nodes, dur)| Job {
            id: 0,
            submit_hour: submit,
            nodes,
            duration_hours: dur,
        }),
        0..120,
    )
    .prop_map(|mut jobs| {
        for (i, j) in jobs.iter_mut().enumerate() {
            j.id = i as u64;
        }
        jobs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Utilization stays in [0, 1]; accounting balances; waits are sane.
    #[test]
    fn cluster_invariants(jobs in arb_jobs(64)) {
        let sim = ClusterSim::new(64).unwrap();
        let (util, stats) = sim.simulate_year(&jobs);
        prop_assert!(util.min() >= 0.0);
        prop_assert!(util.max() <= 1.0 + 1e-12);
        prop_assert!(stats.started_jobs + stats.unstarted_jobs == jobs.len(),
            "{} + {} != {}", stats.started_jobs, stats.unstarted_jobs, jobs.len());
        prop_assert!(stats.mean_wait_hours >= 0.0);
        prop_assert!(stats.mean_wait_hours <= stats.max_wait_hours as f64 + 1e-9);
    }

    /// Node-hour conservation: the machine can never deliver more
    /// node-hours than the jobs requested (jobs may run past year end, so
    /// delivered ≤ requested).
    #[test]
    fn node_hours_bounded_by_offered(jobs in arb_jobs(64)) {
        let sim = ClusterSim::new(64).unwrap();
        let (util, _) = sim.simulate_year(&jobs);
        let delivered = util.total() * 64.0;
        let offered: f64 = jobs.iter()
            .filter(|j| j.nodes <= 64)
            .map(|j| j.nodes as f64 * j.duration_hours as f64)
            .sum();
        prop_assert!(delivered <= offered + 1e-6, "delivered {delivered} > offered {offered}");
    }

    /// Backfill never loses jobs relative to FCFS and never lowers
    /// utilization.
    #[test]
    fn backfill_dominates_fcfs(jobs in arb_jobs(32)) {
        let (easy_util, easy) = ClusterSim::new(32).unwrap().simulate_year(&jobs);
        let (fcfs_util, fcfs) = ClusterSim::with_backfill(32, false).unwrap().simulate_year(&jobs);
        prop_assert!(easy.started_jobs >= fcfs.started_jobs);
        prop_assert!(easy_util.total() >= fcfs_util.total() - 1e-6);
    }

    /// The trace generator respects its declared bounds for arbitrary
    /// valid configs.
    #[test]
    fn trace_bounds(nodes in 8u32..2048, util in 0.1f64..0.9,
                    dur in 1.0f64..24.0, width in 0.005f64..0.3, seed in any::<u64>()) {
        let cfg = TraceConfig {
            cluster_nodes: nodes,
            target_utilization: util,
            mean_duration_hours: dur,
            mean_width_fraction: width,
            seed,
        };
        let jobs = TraceGenerator::new(cfg).unwrap().generate_year();
        for j in &jobs {
            prop_assert!(j.nodes >= 1 && j.nodes <= nodes);
            prop_assert!(j.duration_hours >= 1 && j.duration_hours <= 168);
            prop_assert!(j.submit_hour < 8760);
        }
    }
}
