//! Shared, lazily computed simulation context: the four paper systems'
//! telemetry years are expensive enough (trace + cluster + grid + weather
//! simulation) that the experiments share one copy.

use std::sync::{Arc, OnceLock};

use rayon::prelude::*;
use thirstyflops_catalog::SystemId;
use thirstyflops_core::batch::{year_lane_stats, YearLaneStats};
use thirstyflops_core::SystemYear;

use crate::SEED;

static YEARS: OnceLock<Vec<Arc<SystemYear>>> = OnceLock::new();
static LANE_STATS: OnceLock<YearLaneStats> = OnceLock::new();

/// The simulated telemetry year for each of the paper's four systems,
/// Table 1 order, computed once per process.
///
/// The four 8760-hour simulations are independent (each seeds its own
/// ChaCha12 stream from `(system, SEED)`), so they fan out across the
/// configured worker threads; the result vector is merged in Table 1
/// order, keeping the contract of `docs/CONCURRENCY.md`. The years are
/// `Arc`s straight out of `core::simcache`, so this context shares
/// storage with every other consumer of the same `(system, SEED)` pair.
pub fn paper_years() -> &'static [Arc<SystemYear>] {
    YEARS.get_or_init(|| {
        SystemId::PAPER
            .par_iter()
            .map(|&id| SystemYear::simulate(id, SEED))
            .collect()
    })
}

/// The K-lane annual statistics over [`paper_years`] (operational
/// splits, WI/WUE/EWF means, distribution summaries), computed by one
/// `core::batch` kernel pass per reduction and shared by fig06/07/08.
/// Bit-identical to the per-year scalar expressions the figures used to
/// evaluate — the golden tests pin both paths to the same values.
pub fn paper_lane_stats() -> &'static YearLaneStats {
    LANE_STATS.get_or_init(|| year_lane_stats(paper_years()))
}

/// The year for one of the paper systems.
pub fn year_of(id: SystemId) -> &'static SystemYear {
    paper_years()
        .iter()
        .find(|y| y.spec.id == id)
        .expect("paper systems are precomputed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_stats_match_the_scalar_expressions_bit_for_bit() {
        let stats = paper_lane_stats();
        for (lane, year) in paper_years().iter().enumerate() {
            assert_eq!(stats.operational[lane], year.operational());
            assert_eq!(stats.wi_mean[lane], year.water_intensity().mean());
            assert_eq!(stats.wue_mean[lane], year.wue.mean());
            assert_eq!(stats.ewf_mean[lane], year.ewf.mean());
            assert_eq!(stats.wue_summary[lane], year.wue.summary());
        }
    }

    #[test]
    fn context_is_cached_and_complete() {
        let a = paper_years().as_ptr();
        let b = paper_years().as_ptr();
        assert_eq!(a, b, "OnceLock must cache");
        assert_eq!(paper_years().len(), 4);
        assert_eq!(year_of(SystemId::Fugaku).spec.id, SystemId::Fugaku);
    }
}
