//! Fig. 14 (nuclear and renewable what-if scenarios) and Table 3 (water
//! withdrawal parameters).
//!
//! Fig. 14 regenerates **on top of the declarative scenario engine**
//! (`thirstyflops_scenario`): each what-if is a spec with a `grid.mix`
//! replacement override, and the savings come from the engine's
//! baseline-vs-scenario mean intensities. The engine pins the scenario's
//! annual-mean EWF/CI to the replacement mix's factors, so the numbers
//! match the original closed-form computation to float precision while
//! exercising the same path `scenario run` and `POST /v1/scenarios/run`
//! serve.

use std::collections::BTreeMap;

use rayon::prelude::*;
use thirstyflops_catalog::SystemId;
use thirstyflops_core::withdrawal::{withdrawal_report, WithdrawalParams};
use thirstyflops_grid::Scenario;
use thirstyflops_scenario::{GridOverride, ScenarioSpec};
use thirstyflops_timeseries::Frame;
use thirstyflops_units::{Fraction, Liters};

use crate::context::paper_years;
use crate::{Experiment, SEED};

/// The engine spec of one Fig. 14 what-if: the paper system with its
/// grid mix replaced by the scenario's single-class supply.
fn fig14_spec(id: SystemId, scenario: Scenario) -> ScenarioSpec {
    let mix: BTreeMap<String, f64> = scenario
        .replacement_mix()
        .expect("fig14 never evaluates CurrentMix")
        .iter()
        .map(|(source, share)| (source.slug().to_string(), share.value()))
        .collect();
    let mut spec = ScenarioSpec::new(scenario.label(), id, SEED);
    spec.overrides.grid = Some(GridOverride {
        region: None,
        mix: Some(mix),
        mix_delta: None,
    });
    spec
}

/// Fig. 14: carbon and water footprint savings (%) of 100 % coal /
/// nuclear / other-renewable / water-intensive-renewable supply vs the
/// current energy mix, per system.
pub fn fig14() -> Experiment {
    let scenarios = [
        Scenario::AllCoal,
        Scenario::AllNuclear,
        Scenario::OtherRenewable,
        Scenario::WaterIntensiveRenewable,
    ];

    // Per-system what-if evaluation fans out; each worker runs its
    // system's four scenarios through the engine (the simulated year is
    // shared with the rest of the experiments via core::simcache),
    // merged back in Table 1 order.
    let per_system: Vec<Vec<(String, String, f64, f64)>> = SystemId::PAPER
        .par_iter()
        .map(|&id| {
            scenarios
                .iter()
                .map(|&s| {
                    let outcome = thirstyflops_scenario::evaluate(&fig14_spec(id, s))
                        .expect("static fig14 specs are valid");
                    let base = &outcome.baseline;
                    let scen = &outcome.scenario;
                    (
                        id.to_string(),
                        s.label().to_string(),
                        100.0 * (base.mean_ci_g_per_kwh - scen.mean_ci_g_per_kwh)
                            / base.mean_ci_g_per_kwh,
                        100.0 * (base.mean_wi_l_per_kwh - scen.mean_wi_l_per_kwh)
                            / base.mean_wi_l_per_kwh,
                    )
                })
                .collect()
        })
        .collect();

    let mut system_col = Vec::new();
    let mut scenario_col = Vec::new();
    let mut carbon_saving = Vec::new();
    let mut water_saving = Vec::new();
    for (system, scenario, carbon, water) in per_system.into_iter().flatten() {
        system_col.push(system);
        scenario_col.push(scenario);
        carbon_saving.push(carbon);
        water_saving.push(water);
    }

    let mut frame = Frame::new();
    frame.push_text("system", system_col).unwrap();
    frame.push_text("scenario", scenario_col).unwrap();
    frame
        .push_number("carbon_saving_pct", carbon_saving)
        .unwrap();
    frame.push_number("water_saving_pct", water_saving).unwrap();

    Experiment {
        id: "fig14",
        title: "Impact of nuclear and other energy sources on carbon and water footprint",
        frame,
        notes: vec![
            "100% coal: >100% carbon increase everywhere; nuclear/renewables: >80% carbon savings".into(),
            "nuclear water impact is location-dependent: saves at hydro-heavy Marconi/Frontier, costs at Fugaku/Polaris (Takeaway 10)".into(),
            "100% hydro: large water penalty at every site".into(),
        ],
    }
}

/// Table 3: the water-withdrawal parameters, demonstrated on a
/// Marconi-like facility year.
pub fn table03() -> Experiment {
    let years = paper_years();
    let marconi = &years[0];
    let consumption = marconi.operational().total();
    // Representative facility reporting: discharge roughly 2× consumption
    // (most withdrawn cooling water returns), river outfall, mild
    // pollutant load, 30 % reuse, 70 % potable supply.
    let params = WithdrawalParams {
        actual_discharge: consumption * 2.0,
        outfall_factor: 1.0,
        pollutant_factors: vec![1.08, 1.03],
        reuse_rate: Fraction::new(0.30).expect("static"),
        potable_fraction: Fraction::new(0.70).expect("static"),
        s_potable: 0.6,
        s_non_potable: 0.25,
    };
    let report = withdrawal_report(consumption, &params).expect("static params are valid");

    let rows: Vec<(&str, Liters)> = vec![
        ("consumption", consumption),
        ("adjusted_discharge", report.adjusted_discharge),
        ("reuse", report.reuse),
        ("withdrawal", report.withdrawal),
        ("potable", report.potable),
        ("non_potable", report.non_potable),
        ("scarcity_weighted", report.scarcity_weighted),
    ];
    let mut frame = Frame::new();
    frame
        .push_text(
            "quantity",
            rows.iter().map(|(n, _)| n.to_string()).collect(),
        )
        .unwrap();
    frame
        .push_number(
            "megaliters",
            rows.iter().map(|(_, v)| v.value() / 1e6).collect(),
        )
        .unwrap();
    Experiment {
        id: "table03",
        title: "Water withdrawal modeling (Table 3 parameters) on a Marconi-like year",
        frame,
        notes: vec![
            "withdrawal = consumption + adjusted discharge - reuse; potable split scarcity-weighted".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(e: &Experiment, sys: &str, scen: &str, col: &str) -> f64 {
        let systems = e.frame.texts("system").unwrap();
        let scenarios = e.frame.texts("scenario").unwrap();
        let values = e.frame.numbers(col).unwrap();
        for i in 0..systems.len() {
            if systems[i] == sys && scenarios[i].contains(scen) {
                return values[i];
            }
        }
        panic!("{sys}/{scen} not found");
    }

    #[test]
    fn fig14_coal_increases_carbon_over_100_percent() {
        let e = fig14();
        for sys in ["Marconi100", "Fugaku", "Polaris", "Frontier"] {
            let saving = col(&e, sys, "Coal", "carbon_saving_pct");
            assert!(saving < -90.0, "{sys} coal saving {saving}");
        }
    }

    #[test]
    fn fig14_nuclear_carbon_saving_over_80_percent() {
        let e = fig14();
        for sys in ["Marconi100", "Fugaku", "Polaris", "Frontier"] {
            let saving = col(&e, sys, "Nuclear", "carbon_saving_pct");
            assert!(saving > 80.0, "{sys} nuclear carbon saving {saving}");
        }
    }

    #[test]
    fn fig14_nuclear_water_is_location_dependent() {
        let e = fig14();
        // Saves water where the current mix is hydro-heavy…
        assert!(col(&e, "Marconi100", "Nuclear", "water_saving_pct") > 0.0);
        assert!(col(&e, "Frontier", "Nuclear", "water_saving_pct") > 0.0);
        // …costs water where the mix is already water-light.
        assert!(col(&e, "Polaris", "Nuclear", "water_saving_pct") < 0.0);
        assert!(col(&e, "Fugaku", "Nuclear", "water_saving_pct") < 0.0);
    }

    #[test]
    fn fig14_hydro_water_penalty_everywhere() {
        let e = fig14();
        for sys in ["Marconi100", "Fugaku", "Polaris", "Frontier"] {
            let saving = col(&e, sys, "Water-Intensive", "water_saving_pct");
            assert!(saving < -50.0, "{sys} hydro water saving {saving}");
        }
    }

    #[test]
    fn table03_identity() {
        let e = table03();
        let names = e.frame.texts("quantity").unwrap();
        let vals = e.frame.numbers("megaliters").unwrap();
        let get = |n: &str| vals[names.iter().position(|x| x == n).unwrap()];
        let lhs = get("withdrawal");
        let rhs = get("consumption") + get("adjusted_discharge") - get("reuse");
        assert!((lhs - rhs).abs() < 1e-6 * lhs);
        assert!((get("potable") + get("non_potable") - get("withdrawal")).abs() < 1e-6 * lhs);
    }
}
