//! Fig. 13: ranking application start times by water and carbon impact,
//! with miniAMR as the fixed-energy workload on a Frontier-like node.

use thirstyflops_catalog::SystemId;
use thirstyflops_scheduler::StartTimeOptimizer;
use thirstyflops_timeseries::Frame;
use thirstyflops_units::Pue;
use thirstyflops_workload::miniamr::{MiniAmr, MiniAmrConfig};

use crate::context::year_of;
use crate::Experiment;

/// Fig. 13: seven candidate start times over one day; the best time for
/// water differs from the best time for carbon.
pub fn fig13() -> Experiment {
    // Run the miniAMR kernel once — the energy is start-time-invariant.
    let report = MiniAmr::new(MiniAmrConfig::default())
        .expect("default kernel config is valid")
        .run();
    let frontier = year_of(SystemId::Frontier);
    let energy = report.simulated_energy(&frontier.spec.node);
    // Scale to a meaningful allocation: the paper ran on a full dual-CPU
    // server; we schedule a 512-node slice for a 3-hour window.
    let job_energy =
        thirstyflops_units::KilowattHours::new((energy.value()).max(0.01) * 512.0 * 100.0);

    let optimizer = StartTimeOptimizer::new(
        frontier.water_intensity(),
        frontier.carbon.clone(),
        Pue::new(frontier.spec.pue.value()).expect("catalog PUE is valid"),
    );
    // Seven start times across a summer day (day 190), every 3 hours.
    let day = 190 * 24;
    let candidates: Vec<usize> = (0..7).map(|i| day + i * 3).collect();
    let impacts = optimizer
        .evaluate(&candidates, 3, job_energy)
        .expect("candidates non-empty");

    let mut frame = Frame::new();
    frame
        .push_text(
            "start_time",
            impacts
                .iter()
                .map(|i| format!("{:02}:00", (i.start_hour % 24)))
                .collect(),
        )
        .unwrap();
    frame
        .push_number(
            "water_liters",
            impacts.iter().map(|i| i.water.value()).collect(),
        )
        .unwrap();
    frame
        .push_number(
            "carbon_kg",
            impacts.iter().map(|i| i.carbon.value() / 1000.0).collect(),
        )
        .unwrap();
    frame
        .push_number(
            "water_rank",
            impacts.iter().map(|i| i.water_rank as f64).collect(),
        )
        .unwrap();
    frame
        .push_number(
            "carbon_rank",
            impacts.iter().map(|i| i.carbon_rank as f64).collect(),
        )
        .unwrap();

    let best_water = StartTimeOptimizer::best_for_water(&impacts);
    let best_carbon = StartTimeOptimizer::best_for_carbon(&impacts);
    Experiment {
        id: "fig13",
        title: "Ranking of application start times by water and carbon impact (miniAMR)",
        frame,
        notes: vec![
            format!(
                "miniAMR kernel: {} sweeps, {} cell updates, {} blocks peak — identical energy at every start time",
                report.steps, report.cell_updates, report.peak_blocks
            ),
            format!(
                "best start for water: {:02}:00; best for carbon: {:02}:00 — the optima differ (Takeaway 9)",
                best_water.start_hour % 24,
                best_carbon.start_hour % 24
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_optima_differ() {
        let e = fig13();
        let wr = e.frame.numbers("water_rank").unwrap();
        let cr = e.frame.numbers("carbon_rank").unwrap();
        let best_water = wr.iter().position(|&r| r == 1.0).unwrap();
        let best_carbon = cr.iter().position(|&r| r == 1.0).unwrap();
        assert_ne!(best_water, best_carbon, "water and carbon optima coincide");
    }

    #[test]
    fn fig13_has_seven_candidates() {
        let e = fig13();
        assert_eq!(e.frame.n_rows(), 7);
    }
}
