//! One regenerator per paper table and figure.
//!
//! Every function returns an [`Experiment`] — an id, a title, a
//! [`Frame`] of rows matching what the paper's figure/table reports, and
//! free-text notes on the observed shape. The `report` binary prints all
//! of them; the workspace integration tests assert each one's shape
//! claims; the bench harness measures their regeneration cost.
//!
//! All experiments run on the same simulated telemetry year
//! ([`context::paper_years`], seed [`SEED`]), so numbers are reproducible
//! across runs and machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
mod fig_embodied;
mod fig_extensions;
mod fig_maps;
mod fig_operational;
mod fig_scenarios;
mod fig_scheduling;
mod fig_temporal;

use thirstyflops_timeseries::Frame;

pub use fig_embodied::{fig03, fig04, table01, table02};
pub use fig_extensions::{
    ext01_water500, ext02_uncertainty, ext03_lifecycle, ext04_slack_curve, ext05_policy_frontier,
};
pub use fig_maps::{fig01, fig10};
pub use fig_operational::{fig05, fig06, fig07, fig08, fig09};
pub use fig_scenarios::{fig14, table03};
pub use fig_scheduling::fig13;
pub use fig_temporal::{fig11, fig12};

/// The deterministic telemetry seed used by every experiment (the
/// evaluation year).
pub const SEED: u64 = 2023;

/// One regenerated table/figure.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Experiment {
    /// Paper artifact id, e.g. "fig07".
    pub id: &'static str,
    /// Paper caption, abbreviated.
    pub title: &'static str,
    /// The regenerated rows.
    pub frame: Frame,
    /// Observed-shape notes (what the paper claims vs what we measured).
    pub notes: Vec<String>,
}

/// All experiments, paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        fig01(),
        table01(),
        table02(),
        fig03(),
        fig04(),
        fig05(),
        fig06(),
        fig07(),
        fig08(),
        fig09(),
        fig10(),
        fig11(),
        fig12(),
        fig13(),
        fig14(),
        table03(),
        ext01_water500(),
        ext02_uncertainty(),
        ext03_lifecycle(),
        ext04_slack_curve(),
        ext05_policy_frontier(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_experiments_produce_rows() {
        for e in all() {
            assert!(e.frame.n_rows() > 0, "{} has no rows", e.id);
            assert!(e.frame.n_cols() > 0, "{} has no columns", e.id);
            assert!(!e.title.is_empty());
        }
    }

    #[test]
    fn ids_are_unique_and_paper_complete() {
        let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        for required in [
            "fig01", "table01", "table02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08",
            "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "table03",
        ] {
            assert!(ids.contains(&required), "missing {required}");
        }
    }
}
