//! One regenerator per paper table and figure.
//!
//! Every function returns an [`Experiment`] — an id, a title, a
//! [`Frame`] of rows matching what the paper's figure/table reports, and
//! free-text notes on the observed shape. The `report` binary prints all
//! of them; the workspace integration tests assert each one's shape
//! claims; the bench harness measures their regeneration cost.
//!
//! All experiments run on the same simulated telemetry year
//! ([`context::paper_years`], seed [`SEED`]), so numbers are reproducible
//! across runs and machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
mod fig_embodied;
mod fig_extensions;
mod fig_maps;
mod fig_operational;
mod fig_scenarios;
mod fig_scheduling;
mod fig_temporal;

use rayon::prelude::*;
use thirstyflops_timeseries::Frame;

pub use fig_embodied::{fig03, fig04, table01, table02};
pub use fig_extensions::{
    ext01_water500, ext02_uncertainty, ext03_lifecycle, ext04_slack_curve, ext05_policy_frontier,
};
pub use fig_maps::{fig01, fig10};
pub use fig_operational::{fig05, fig06, fig07, fig08, fig09};
pub use fig_scenarios::{fig14, table03};
pub use fig_scheduling::fig13;
pub use fig_temporal::{fig11, fig12};

/// The deterministic telemetry seed used by every experiment (the
/// evaluation year).
pub const SEED: u64 = 2023;

/// One regenerated table/figure.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Experiment {
    /// Paper artifact id, e.g. "fig07".
    pub id: &'static str,
    /// Paper caption, abbreviated.
    pub title: &'static str,
    /// The regenerated rows.
    pub frame: Frame,
    /// Observed-shape notes (what the paper claims vs what we measured).
    pub notes: Vec<String>,
}

/// One artifact id paired with the function that regenerates it.
type Regenerator = (&'static str, fn() -> Experiment);

/// Every regenerator keyed by its artifact id, paper order. The table
/// drives [`all`], [`select`], and [`ids`]: regenerators are pure (shared
/// context aside), so they fan out across worker threads and merge back
/// in this order. `regenerator_table_ids_match_artifacts` pins each key
/// to the id its `Experiment` actually carries.
const REGENERATORS: [Regenerator; 21] = [
    ("fig01", fig01),
    ("table01", table01),
    ("table02", table02),
    ("fig03", fig03),
    ("fig04", fig04),
    ("fig05", fig05),
    ("fig06", fig06),
    ("fig07", fig07),
    ("fig08", fig08),
    ("fig09", fig09),
    ("fig10", fig10),
    ("fig11", fig11),
    ("fig12", fig12),
    ("fig13", fig13),
    ("fig14", fig14),
    ("table03", table03),
    ("ext01", ext01_water500),
    ("ext02", ext02_uncertainty),
    ("ext03", ext03_lifecycle),
    ("ext04", ext04_slack_curve),
    ("ext05", ext05_policy_frontier),
];

/// All experiments, paper order.
///
/// Regeneration fans out across the configured rayon workers (see
/// `docs/CONCURRENCY.md`); the shared telemetry context is computed once
/// by whichever worker touches it first, and the output order is always
/// the paper order regardless of thread count.
pub fn all() -> Vec<Experiment> {
    REGENERATORS.par_iter().map(|(_, regen)| regen()).collect()
}

/// Only the named experiments, paper order, in one parallel sweep —
/// artifacts not asked for are never regenerated. Unknown ids are
/// skipped; an empty result means nothing matched.
pub fn select(ids: &[&str]) -> Vec<Experiment> {
    let picked: Vec<fn() -> Experiment> = REGENERATORS
        .iter()
        .filter(|(id, _)| ids.contains(id))
        .map(|&(_, regen)| regen)
        .collect();
    picked.par_iter().map(|regen| regen()).collect()
}

/// The known artifact ids, paper order (cheap — regenerates nothing).
pub fn ids() -> Vec<&'static str> {
    REGENERATORS.iter().map(|&(id, _)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_experiments_produce_rows() {
        for e in all() {
            assert!(e.frame.n_rows() > 0, "{} has no rows", e.id);
            assert!(e.frame.n_cols() > 0, "{} has no columns", e.id);
            assert!(!e.title.is_empty());
        }
    }

    #[test]
    fn regenerator_table_ids_match_artifacts() {
        let produced: Vec<&str> = all().iter().map(|e| e.id).collect();
        assert_eq!(produced, ids(), "table keys must match Experiment ids");
    }

    #[test]
    fn select_runs_only_matching_artifacts() {
        let picked = select(&["fig05", "nope"]);
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].id, "fig05");
        assert!(select(&["nope"]).is_empty());
    }

    #[test]
    fn ids_are_unique_and_paper_complete() {
        let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        for required in [
            "fig01", "table01", "table02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08",
            "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "table03",
        ] {
            assert!(ids.contains(&required), "missing {required}");
        }
    }
}
