//! Fig. 5–9: energy sources, EWF/WUE distributions, direct/indirect
//! split, WSI-adjusted intensity, and the multi-plant indirect WSI.

use thirstyflops_core::{ScarcityAdjustment, WaterIntensity};
use thirstyflops_grid::EnergySource;
use thirstyflops_timeseries::Frame;
use thirstyflops_units::LitersPerKilowattHour;

use crate::context::{paper_lane_stats, paper_years};
use crate::Experiment;

/// Fig. 5: EWF and carbon intensity per energy source (median, min–max).
pub fn fig05() -> Experiment {
    let mut frame = Frame::new();
    let sources = EnergySource::ALL;
    frame
        .push_text("source", sources.iter().map(|s| s.to_string()).collect())
        .unwrap();
    frame
        .push_number(
            "ewf_min",
            sources.iter().map(|s| s.ewf_range().min).collect(),
        )
        .unwrap();
    frame
        .push_number(
            "ewf_median",
            sources.iter().map(|s| s.ewf_range().median).collect(),
        )
        .unwrap();
    frame
        .push_number(
            "ewf_max",
            sources.iter().map(|s| s.ewf_range().max).collect(),
        )
        .unwrap();
    frame
        .push_number(
            "carbon_min",
            sources.iter().map(|s| s.carbon_range().min).collect(),
        )
        .unwrap();
    frame
        .push_number(
            "carbon_median",
            sources.iter().map(|s| s.carbon_range().median).collect(),
        )
        .unwrap();
    frame
        .push_number(
            "carbon_max",
            sources.iter().map(|s| s.carbon_range().max).collect(),
        )
        .unwrap();
    Experiment {
        id: "fig05",
        title: "Different energy sources have different EWFs and carbon intensities",
        frame,
        notes: vec![
            "hydro and geothermal: lowest-carbon yet most water-intensive (Takeaway 3)".into(),
            "coal/oil/gas: highest carbon, moderate water; wind/solar: low on both".into(),
        ],
    }
}

/// Fig. 6: EWF (a) and WUE (b) distributions over the simulated year.
pub fn fig06() -> Experiment {
    let mut frame = Frame::new();
    let years = paper_years();
    frame
        .push_text(
            "system",
            years.iter().map(|y| y.spec.id.to_string()).collect(),
        )
        .unwrap();
    // One K-lane batch pass covers all four systems (shared with
    // fig07/fig08 via the context cache).
    let stats = paper_lane_stats();
    for (name, summaries) in [("ewf", &stats.ewf_summary), ("wue", &stats.wue_summary)] {
        frame
            .push_number(
                format!("{name}_min"),
                summaries.iter().map(|s| s.min).collect(),
            )
            .unwrap();
        frame
            .push_number(
                format!("{name}_median"),
                summaries.iter().map(|s| s.median).collect(),
            )
            .unwrap();
        frame
            .push_number(
                format!("{name}_max"),
                summaries.iter().map(|s| s.max).collect(),
            )
            .unwrap();
    }
    let marconi_max = frame.numbers("ewf_max").unwrap()[0];
    let polaris_min = frame.numbers("ewf_min").unwrap()[2];
    Experiment {
        id: "fig06",
        title: "EWF and WUE have significant temporal and spatial variation",
        frame,
        notes: vec![
            format!("Marconi EWF peaks at {marconi_max:.2} L/kWh (paper: 10.59) — hydro-driven, the widest range"),
            format!("Polaris EWF floor {polaris_min:.2} L/kWh (paper: 1.52) — the lowest of the four"),
            "WUE swings are of comparable magnitude to EWF swings — both components matter".into(),
        ],
    }
}

/// Fig. 7: relative importance of direct vs indirect operational water.
pub fn fig07() -> Experiment {
    let mut frame = Frame::new();
    let years = paper_years();
    frame
        .push_text(
            "system",
            years.iter().map(|y| y.spec.id.to_string()).collect(),
        )
        .unwrap();
    // Eq. 6/7 per system out of the shared K-lane batch pass.
    let ops = &paper_lane_stats().operational;
    frame
        .push_number(
            "direct_pct",
            ops.iter().map(|o| o.direct_share().percent()).collect(),
        )
        .unwrap();
    frame
        .push_number(
            "indirect_pct",
            ops.iter().map(|o| o.indirect_share().percent()).collect(),
        )
        .unwrap();
    let marconi_ind = frame.numbers("indirect_pct").unwrap()[0];
    Experiment {
        id: "fig07",
        title: "Relative importance of direct and indirect water footprint",
        frame,
        notes: vec![
            format!("Marconi indirect share {marconi_ind:.0}% (paper: 63%) — generation water dominates there"),
            "indirect water exceeds 40% everywhere (paper: 42-63%) — it must not be ignored (Takeaway 4)".into(),
        ],
    }
}

/// Fig. 8: water intensity, site WSI, and WSI-adjusted water intensity.
pub fn fig08() -> Experiment {
    let mut frame = Frame::new();
    let years = paper_years();
    frame
        .push_text(
            "system",
            years.iter().map(|y| y.spec.id.to_string()).collect(),
        )
        .unwrap();
    // WI and the WUE/EWF annual means come straight out of the shared
    // K-lane batch pass; the scarcity adjustment stays per system.
    let stats = paper_lane_stats();
    let wis: Vec<f64> = stats.wi_mean.clone();
    let wsis: Vec<f64> = years.iter().map(|y| y.spec.site_wsi.value()).collect();
    let adjusted: Vec<f64> = years
        .iter()
        .enumerate()
        .map(|(lane, y)| {
            let wi = WaterIntensity::new(
                LitersPerKilowattHour::new(stats.wue_mean[lane]),
                y.spec.pue,
                LitersPerKilowattHour::new(stats.ewf_mean[lane]),
            );
            ScarcityAdjustment::from_fleet(y.spec.site_wsi, &y.spec.fleet)
                .adjust(wi)
                .value()
        })
        .collect();
    frame
        .push_number("water_intensity_l_per_kwh", wis.clone())
        .unwrap();
    frame.push_number("site_wsi", wsis).unwrap();
    frame
        .push_number("adjusted_water_intensity_l_per_kwh", adjusted.clone())
        .unwrap();

    let polaris_raw_rank = rank_of(&wis, 2);
    let polaris_adj_rank = rank_of(&adjusted, 2);
    Experiment {
        id: "fig08",
        title: "Annual water intensity, water scarcity index, and WSI-adjusted water intensity",
        frame,
        notes: vec![
            format!(
                "Polaris ranks #{polaris_raw_rank} (of 4, 1=lowest) on raw WI but #{polaris_adj_rank} after WSI adjustment — the ranking flips (paper: lowest raw, highest adjusted)"
            ),
            "scarcity weighting changes which site is 'thirstiest'".into(),
        ],
    }
}

/// 1-based rank of element `idx` (ascending: 1 = smallest).
fn rank_of(values: &[f64], idx: usize) -> usize {
    1 + values.iter().filter(|&&v| v < values[idx]).count()
}

/// Fig. 9: direct vs indirect WSI when energy comes from multiple plants.
pub fn fig09() -> Experiment {
    let mut frame = Frame::new();
    let years = paper_years();
    frame
        .push_text(
            "system",
            years.iter().map(|y| y.spec.id.to_string()).collect(),
        )
        .unwrap();
    frame
        .push_number(
            "direct_wsi",
            years.iter().map(|y| y.spec.site_wsi.value()).collect(),
        )
        .unwrap();
    frame
        .push_number(
            "indirect_wsi",
            years
                .iter()
                .map(|y| y.spec.fleet.indirect_wsi().value())
                .collect(),
        )
        .unwrap();
    frame
        .push_number(
            "plant_wsi_spread",
            years.iter().map(|y| y.spec.fleet.wsi_spread()).collect(),
        )
        .unwrap();
    frame
        .push_number(
            "n_plants",
            years
                .iter()
                .map(|y| y.spec.fleet.plants().len() as f64)
                .collect(),
        )
        .unwrap();
    Experiment {
        id: "fig09",
        title: "Direct and indirect water scarcity index over multi-plant supply",
        frame,
        notes: vec![
            "indirect WSI is the supply-share-weighted mean over the plant fleet — generally != the site's direct WSI".into(),
            "plant WSI spreads are large: which nearby grid supplies the energy matters (Takeaway 6)".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig05_hydro_extreme() {
        let e = fig05();
        let meds = e.frame.numbers("ewf_median").unwrap();
        let hydro_idx = 5; // Fig. 5 order: Solar, Biomass, Nuclear, Coal, Wind, Hydro, ...
        assert!(
            meds[hydro_idx] >= *meds.iter().fold(&0.0, |a, b| if b > a { b } else { a }) - 1e-9
        );
    }

    #[test]
    fn fig07_indirect_over_40_percent() {
        let e = fig07();
        for &v in e.frame.numbers("indirect_pct").unwrap() {
            assert!(v > 35.0, "indirect {v}%");
        }
    }

    #[test]
    fn fig08_ranking_flip() {
        let e = fig08();
        let raw = e.frame.numbers("water_intensity_l_per_kwh").unwrap();
        let adj = e
            .frame
            .numbers("adjusted_water_intensity_l_per_kwh")
            .unwrap();
        // Polaris (index 2): lowest raw, highest adjusted.
        assert_eq!(rank_of(raw, 2), 1, "raw {raw:?}");
        assert_eq!(rank_of(adj, 2), 4, "adjusted {adj:?}");
    }

    #[test]
    fn fig09_indirect_differs_from_direct() {
        let e = fig09();
        let d = e.frame.numbers("direct_wsi").unwrap();
        let i = e.frame.numbers("indirect_wsi").unwrap();
        assert!(d.iter().zip(i).any(|(a, b)| (a - b).abs() > 0.01));
    }
}
