//! Extension experiments beyond the paper's evaluation (§6 "Broader and
//! Future Usages"): a Water500-style ranking including Aurora and
//! El Capitan, per-system uncertainty bands, and lifecycle break-evens.

use std::sync::OnceLock;

use thirstyflops_catalog::{SystemId, SystemSpec};
use thirstyflops_core::uncertainty::{mix_ewf_interval, operational_interval, Interval};
use thirstyflops_core::{AnnualReport, FootprintModel, LifecycleModel};
use thirstyflops_grid::GridRegion;
use thirstyflops_timeseries::Frame;

use crate::{Experiment, SEED};

static REPORTS: OnceLock<Vec<AnnualReport>> = OnceLock::new();

/// Annual reports for all six cataloged systems (paper + extensions),
/// computed once.
fn all_reports() -> &'static [AnnualReport] {
    REPORTS.get_or_init(|| {
        SystemId::ALL
            .iter()
            .map(|&id| FootprintModel::reference(id).annual_report(SEED))
            .collect()
    })
}

/// ext01: the §6 "Water500" — all six systems ranked by operational
/// water, with intensity columns.
pub fn ext01_water500() -> Experiment {
    let mut reports: Vec<&AnnualReport> = all_reports().iter().collect();
    reports.sort_by(|a, b| {
        b.operational_total()
            .value()
            .partial_cmp(&a.operational_total().value())
            .unwrap()
    });
    let mut frame = Frame::new();
    frame
        .push_number("rank", (1..=reports.len()).map(|i| i as f64).collect())
        .unwrap();
    frame
        .push_text("system", reports.iter().map(|r| r.id.to_string()).collect())
        .unwrap();
    frame
        .push_number(
            "operational_megaliters",
            reports
                .iter()
                .map(|r| r.operational_total().value() / 1e6)
                .collect(),
        )
        .unwrap();
    frame
        .push_number(
            "energy_gwh",
            reports.iter().map(|r| r.energy.value() / 1e6).collect(),
        )
        .unwrap();
    frame
        .push_number(
            "water_intensity",
            reports.iter().map(|r| r.mean_wi.value()).collect(),
        )
        .unwrap();
    frame
        .push_number(
            "adjusted_water_intensity",
            reports.iter().map(|r| r.adjusted_wi.value()).collect(),
        )
        .unwrap();
    Experiment {
        id: "ext01",
        title: "Water500: ranking all cataloged systems (incl. Aurora, El Capitan)",
        frame,
        notes: vec![
            "extension systems run through the identical pipeline with approximated parameters, as §6 proposes".into(),
        ],
    }
}

/// ext02: uncertainty bands — operational water per system under the
/// published per-source EWF ranges and a ±15 % WUE tolerance.
pub fn ext02_uncertainty() -> Experiment {
    let reports = all_reports();
    let mut systems = Vec::new();
    let mut lo = Vec::new();
    let mut mid = Vec::new();
    let mut hi = Vec::new();
    let mut rel = Vec::new();
    for r in reports {
        let spec = SystemSpec::reference(r.id);
        let mix = GridRegion::preset(spec.region).annual_mix();
        let ewf = mix_ewf_interval(&mix);
        let wue = Interval::with_tolerance(r.mean_wue.value(), 0.15).expect("static tolerance");
        let band = operational_interval(Interval::exact(r.energy.value()), wue, spec.pue, ewf);
        systems.push(r.id.to_string());
        lo.push(band.lo / 1e6);
        mid.push(band.mid / 1e6);
        hi.push(band.hi / 1e6);
        rel.push(band.relative_uncertainty());
    }
    let mut frame = Frame::new();
    frame.push_text("system", systems).unwrap();
    frame.push_number("operational_lo_ml", lo).unwrap();
    frame.push_number("operational_mid_ml", mid).unwrap();
    frame.push_number("operational_hi_ml", hi).unwrap();
    frame.push_number("relative_uncertainty", rel).unwrap();
    Experiment {
        id: "ext02",
        title: "Uncertainty bands on operational water (per-source EWF ranges, ±15% WUE)",
        frame,
        notes: vec![
            "hydro-heavy grids (Marconi, Frontier) carry the widest relative bands — reservoir EWF variance dominates".into(),
            "the paper's 'trends not percentages' stance, made quantitative".into(),
        ],
    }
}

/// ext03: lifecycle break-even and 5-year amortized intensity per system.
pub fn ext03_lifecycle() -> Experiment {
    let reports = all_reports();
    let mut systems = Vec::new();
    let mut break_even = Vec::new();
    let mut embodied_share = Vec::new();
    let mut amortized = Vec::new();
    for r in reports {
        let model = LifecycleModel::new(r.clone());
        let proj = model.project(5.0).expect("positive lifetime");
        systems.push(r.id.to_string());
        break_even.push(model.break_even_years());
        embodied_share.push(100.0 * proj.embodied_share());
        amortized.push(proj.amortized_intensity().value());
    }
    let mut frame = Frame::new();
    frame.push_text("system", systems).unwrap();
    frame.push_number("break_even_years", break_even).unwrap();
    frame
        .push_number("embodied_share_pct_5yr", embodied_share)
        .unwrap();
    frame
        .push_number("amortized_intensity_l_per_kwh", amortized)
        .unwrap();
    Experiment {
        id: "ext03",
        title: "Lifecycle: break-even years and 5-year amortized water intensity",
        frame,
        notes: vec![
            "operational water overtakes embodied within the first months at these intensities — but embodied still matters for cross-system comparisons (§6)".into(),
        ],
    }
}

/// ext04: the WACE-style delay-tolerance curve — mean water saving from
/// water-aware start-time choice as a function of allowed slack, on the
/// Frontier year.
pub fn ext04_slack_curve() -> Experiment {
    use thirstyflops_scheduler::DeadlineScheduler;
    use thirstyflops_units::KilowattHours;

    let frontier = crate::context::year_of(SystemId::Frontier);
    let scheduler = DeadlineScheduler::new(
        frontier.water_intensity(),
        frontier.carbon.clone(),
        frontier.spec.pue,
    );
    let slacks = [0usize, 3, 6, 12, 24, 48];
    let curve = scheduler
        .saving_curve(&slacks, 3, KilowattHours::new(1000.0), 173)
        .expect("valid stride");

    let mut frame = Frame::new();
    frame
        .push_number(
            "slack_hours",
            curve.iter().map(|&(s, _)| s as f64).collect(),
        )
        .unwrap();
    frame
        .push_number(
            "mean_water_saving_pct",
            curve.iter().map(|&(_, v)| 100.0 * v).collect(),
        )
        .unwrap();
    let day = curve
        .iter()
        .find(|(s, _)| *s == 24)
        .map(|&(_, v)| v)
        .unwrap_or(0.0);
    Experiment {
        id: "ext04",
        title: "Water saving vs start-time slack (WACE-style delay tolerance)",
        frame,
        notes: vec![
            format!("24 h of slack buys {:.0}% mean water saving; returns flatten beyond one diurnal cycle", 100.0 * day),
            "small, SLA-compatible delays capture most of the benefit — consistent with WACE's 'minor increases in job delays'".into(),
        ],
    }
}

/// ext05: the water/carbon trade-off frontier of geo-distributed
/// placement — pure policies plus a weight sweep of the co-optimizer over
/// the four paper sites (§6(a): "adjustable weights to energy, carbon,
/// and water metrics").
pub fn ext05_policy_frontier() -> Experiment {
    use thirstyflops_scheduler::{GeoBalancer, MultiObjective, ParetoPoint, Policy, SiteSeries};

    let sites: Vec<SiteSeries> = crate::context::paper_years()
        .iter()
        .map(|year| SiteSeries::from_year(year))
        .collect();
    let balancer = GeoBalancer::new(sites).expect("four sites");

    let mut labels: Vec<String> = Vec::new();
    let mut policies: Vec<Policy> = Vec::new();
    labels.push("energy-only".into());
    policies.push(Policy::EnergyOnly);
    labels.push("carbon-only".into());
    policies.push(Policy::CarbonOnly);
    labels.push("water-only".into());
    policies.push(Policy::WaterOnly);
    for w in [0.25, 0.5, 0.75] {
        labels.push(format!("co-opt w_water={w}"));
        policies.push(Policy::CoOptimize(
            MultiObjective::new(0.0, w, 1.0 - w).expect("weights sum to 1"),
        ));
    }

    let placements: Vec<_> = policies
        .iter()
        .map(|&p| balancer.run_year(1000.0, p))
        .collect();
    let points: Vec<ParetoPoint<String>> = placements
        .iter()
        .zip(&labels)
        .map(|(p, label)| ParetoPoint {
            candidate: label.clone(),
            energy: p.facility_energy.value(),
            water: p.water.value(),
            carbon: p.carbon.value(),
        })
        .collect();
    let front = thirstyflops_scheduler::objective::pareto_front(&points);

    let mut frame = Frame::new();
    frame.push_text("policy", labels.clone()).unwrap();
    frame
        .push_number(
            "water_megaliters",
            placements.iter().map(|p| p.water.value() / 1e6).collect(),
        )
        .unwrap();
    frame
        .push_number(
            "carbon_tonnes",
            placements.iter().map(|p| p.carbon.value() / 1e6).collect(),
        )
        .unwrap();
    frame
        .push_number(
            "facility_gwh",
            placements
                .iter()
                .map(|p| p.facility_energy.value() / 1e6)
                .collect(),
        )
        .unwrap();
    frame
        .push_number(
            "pareto_efficient",
            (0..labels.len())
                .map(|i| if front.contains(&i) { 1.0 } else { 0.0 })
                .collect(),
        )
        .unwrap();
    Experiment {
        id: "ext05",
        title: "Water/carbon placement frontier over the four paper sites",
        frame,
        notes: vec![
            "the co-optimizer weight sweep traces intermediate points between the water-only and carbon-only extremes".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext05_extremes_are_efficient_and_ordered() {
        let e = ext05_policy_frontier();
        let water = e.frame.numbers("water_megaliters").unwrap();
        let carbon = e.frame.numbers("carbon_tonnes").unwrap();
        let labels = e.frame.texts("policy").unwrap();
        let idx = |l: &str| labels.iter().position(|x| x == l).unwrap();
        // Water-only has the least water; carbon-only the least carbon.
        let wmin = water.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((water[idx("water-only")] - wmin).abs() < 1e-9);
        let cmin = carbon.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((carbon[idx("carbon-only")] - cmin).abs() < 1e-9);
        // At least two Pareto-efficient points exist.
        let eff: f64 = e.frame.numbers("pareto_efficient").unwrap().iter().sum();
        assert!(eff >= 2.0);
    }

    #[test]
    fn ext04_curve_monotone() {
        let e = ext04_slack_curve();
        let savings = e.frame.numbers("mean_water_saving_pct").unwrap();
        assert!(savings.windows(2).all(|w| w[1] >= w[0] - 1e-9));
        assert_eq!(savings[0], 0.0);
        assert!(savings.last().unwrap() > &1.0, "{savings:?}");
    }

    #[test]
    fn ext01_covers_all_six_systems() {
        let e = ext01_water500();
        assert_eq!(e.frame.n_rows(), 6);
        let ranks = e.frame.numbers("rank").unwrap();
        assert_eq!(ranks[0], 1.0);
        // Water strictly non-increasing down the ranking.
        let water = e.frame.numbers("operational_megaliters").unwrap();
        assert!(water.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn ext02_bands_bracket_mid_and_hydro_is_widest() {
        let e = ext02_uncertainty();
        let lo = e.frame.numbers("operational_lo_ml").unwrap();
        let mid = e.frame.numbers("operational_mid_ml").unwrap();
        let hi = e.frame.numbers("operational_hi_ml").unwrap();
        for i in 0..e.frame.n_rows() {
            assert!(lo[i] <= mid[i] && mid[i] <= hi[i]);
        }
        let rel = e.frame.numbers("relative_uncertainty").unwrap();
        let sys = e.frame.texts("system").unwrap();
        let marconi = sys.iter().position(|s| s == "Marconi100").unwrap();
        let polaris = sys.iter().position(|s| s == "Polaris").unwrap();
        assert!(
            rel[marconi] > rel[polaris],
            "hydro-heavy grid must be more uncertain"
        );
    }

    #[test]
    fn ext03_break_even_under_a_year() {
        let e = ext03_lifecycle();
        for &be in e.frame.numbers("break_even_years").unwrap() {
            assert!(be > 0.0 && be < 1.0, "break-even {be}");
        }
    }
}
