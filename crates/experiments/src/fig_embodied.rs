//! Table 1, Table 2, Fig. 3 (embodied breakdown), Fig. 4 (embodied vs
//! operational ratio heatmaps).

use thirstyflops_catalog::{SystemId, SystemSpec};
use thirstyflops_core::params::{parameter_table, ParamKind};
use thirstyflops_core::{EmbodiedBreakdown, RatioGrid};
use thirstyflops_timeseries::{Frame, HOURS_PER_YEAR};
use thirstyflops_units::Liters;

use crate::Experiment;

/// Table 1: the supercomputers used in the water footprint analysis.
pub fn table01() -> Experiment {
    let mut names = Vec::new();
    let mut locations = Vec::new();
    let mut operators = Vec::new();
    let mut cpus = Vec::new();
    let mut gpus = Vec::new();
    let mut years = Vec::new();
    let mut pues = Vec::new();
    for id in SystemId::PAPER {
        let s = SystemSpec::reference(id);
        names.push(s.id.to_string());
        locations.push(s.location.clone());
        operators.push(s.operator.clone());
        cpus.push(s.node.cpu.name.clone());
        gpus.push(
            s.node
                .gpu
                .as_ref()
                .map_or("No GPU".to_string(), |g| g.name.clone()),
        );
        years.push(s.start_year as f64);
        pues.push(s.pue.value());
    }
    let mut frame = Frame::new();
    frame.push_text("name", names).unwrap();
    frame.push_text("location", locations).unwrap();
    frame.push_text("operator", operators).unwrap();
    frame.push_text("cpu", cpus).unwrap();
    frame.push_text("gpu", gpus).unwrap();
    frame.push_number("start_year", years).unwrap();
    frame.push_number("pue", pues).unwrap();
    Experiment {
        id: "table01",
        title: "Supercomputers used in water footprint analysis",
        frame,
        notes: vec![
            "matches the paper's Table 1 systems, locations, processors, and start years".into(),
        ],
    }
}

/// Table 2: the parameter checklist for estimating operational and
/// embodied water footprints.
pub fn table02() -> Experiment {
    let rows = parameter_table();
    let mut frame = Frame::new();
    frame
        .push_text(
            "parameter",
            rows.iter().map(|r| r.symbol.to_string()).collect(),
        )
        .unwrap();
    frame
        .push_text(
            "description",
            rows.iter().map(|r| r.description.to_string()).collect(),
        )
        .unwrap();
    frame
        .push_text(
            "kind",
            rows.iter()
                .map(|r| {
                    match r.kind {
                        ParamKind::Input => "input",
                        ParamKind::Derived => "derived",
                    }
                    .to_string()
                })
                .collect(),
        )
        .unwrap();
    frame
        .push_text("range", rows.iter().map(|r| r.range.to_string()).collect())
        .unwrap();
    frame
        .push_text(
            "source",
            rows.iter().map(|r| r.source.to_string()).collect(),
        )
        .unwrap();
    frame
        .push_text("unit", rows.iter().map(|r| r.unit.to_string()).collect())
        .unwrap();
    Experiment {
        id: "table02",
        title: "Parameters for estimating the operational and embodied water footprint",
        frame,
        notes: vec!["the checklist practitioners fill before running the tool".into()],
    }
}

/// Fig. 3: embodied water footprint contribution of CPU, GPU, DRAM, HDD,
/// SSD per system.
pub fn fig03() -> Experiment {
    let mut systems = Vec::new();
    let mut cpu = Vec::new();
    let mut gpu = Vec::new();
    let mut dram = Vec::new();
    let mut hdd = Vec::new();
    let mut ssd = Vec::new();
    let mut totals_ml = Vec::new();
    for id in SystemId::PAPER {
        let b = EmbodiedBreakdown::for_system(&SystemSpec::reference(id));
        let shares = b.five_component_shares();
        systems.push(id.to_string());
        cpu.push(shares[0].1.percent());
        gpu.push(shares[1].1.percent());
        dram.push(shares[2].1.percent());
        hdd.push(shares[3].1.percent());
        ssd.push(shares[4].1.percent());
        totals_ml.push(b.total().value() / 1e6);
    }
    let mut frame = Frame::new();
    frame.push_text("system", systems).unwrap();
    frame.push_number("cpu_pct", cpu).unwrap();
    frame.push_number("gpu_pct", gpu).unwrap();
    frame.push_number("dram_pct", dram).unwrap();
    frame.push_number("hdd_pct", hdd).unwrap();
    frame.push_number("ssd_pct", ssd).unwrap();
    frame.push_number("total_megaliters", totals_ml).unwrap();

    let polaris_gpu = frame.numbers("gpu_pct").unwrap()[2];
    let frontier_hdd = frame.numbers("hdd_pct").unwrap()[3];
    Experiment {
        id: "fig03",
        title: "Embodied water footprint contribution of hardware components",
        frame,
        notes: vec![
            format!("Polaris GPUs account for {polaris_gpu:.0}% of embodied water (paper: 67%)"),
            format!("Frontier's 679 PB HDD tier alone is {frontier_hdd:.0}% — storage+memory exceed processors"),
            "Fugaku has no GPU water; its memory+storage land near the paper's 27%".into(),
        ],
    }
}

/// Fig. 4: embodied vs operational water under (EWF, WUE) scenarios and a
/// (mfg WSI × op WSI) sweep.
pub fn fig04() -> Experiment {
    // Representative embodied footprint: Frontier's.
    let embodied =
        EmbodiedBreakdown::for_system(&SystemSpec::reference(SystemId::Frontier)).total();
    // Annual IT energy at a nominal 20 MW average draw.
    let annual_energy_kwh = 20_000.0 * HOURS_PER_YEAR as f64;
    let lifetime_years = 5.0;

    // Case (a): high EWF and high WUE; case (b): low EWF and low WUE.
    let cases = [
        ("a: high EWF+WUE", 4.0, 4.5, 1.05),
        ("b: low EWF+WUE", 0.8, 0.5, 1.05),
    ];
    let mut labels = Vec::new();
    let mut op_water_ml = Vec::new();
    let mut dominant_frac = Vec::new();
    let mut grids = Vec::new();
    for (label, ewf, wue, pue) in cases {
        let wi = wue + pue * ewf;
        let annual_op = Liters::new(annual_energy_kwh * wi);
        let grid = RatioGrid::sweep(embodied, annual_op, lifetime_years, 32)
            .expect("positive operational water");
        labels.push(label.to_string());
        op_water_ml.push(annual_op.value() / 1e6);
        dominant_frac.push(grid.embodied_dominant_fraction());
        grids.push(grid);
    }

    let mut frame = Frame::new();
    frame.push_text("case", labels).unwrap();
    frame
        .push_number("annual_operational_megaliters", op_water_ml)
        .unwrap();
    frame
        .push_number("embodied_dominant_area_fraction", dominant_frac.clone())
        .unwrap();

    Experiment {
        id: "fig04",
        title: "Embodied vs operational water footprint under EWF/WUE/WSI scenarios",
        frame,
        notes: vec![
            format!(
                "area where embodied dominates: {:.2} under low EWF+WUE vs {:.2} under high EWF+WUE — low operational water expands the blue-line region",
                dominant_frac[1], dominant_frac[0]
            ),
            "a fab in a water-scarce region + datacenter in a water-secure one can flip dominance (Takeaway 2)".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table01_matches_paper() {
        let e = table01();
        assert_eq!(e.frame.n_rows(), 4);
        let gpus = e.frame.texts("gpu").unwrap();
        assert_eq!(gpus[1], "No GPU"); // Fugaku
        let pues = e.frame.numbers("pue").unwrap();
        assert_eq!(pues, &[1.25, 1.4, 1.65, 1.05]);
    }

    #[test]
    fn fig03_shares_sum_to_100() {
        let e = fig03();
        for i in 0..4 {
            let total: f64 = ["cpu_pct", "gpu_pct", "dram_pct", "hdd_pct", "ssd_pct"]
                .iter()
                .map(|c| e.frame.numbers(c).unwrap()[i])
                .sum();
            assert!((total - 100.0).abs() < 1e-6);
        }
    }

    #[test]
    fn fig04_case_b_expands_embodied_region() {
        let e = fig04();
        let fracs = e.frame.numbers("embodied_dominant_area_fraction").unwrap();
        assert!(fracs[1] > fracs[0]);
    }
}
