//! Fig. 1 (US panorama) and Fig. 10 (county-level WSI variation).

use thirstyflops_catalog::wsi::CountyWsiField;
use thirstyflops_catalog::{usmap, wsi};
use thirstyflops_timeseries::Frame;

use crate::{Experiment, SEED};

/// Fig. 1: carbon intensity, water scarcity index, and HPC power
/// consumption per US state.
pub fn fig01() -> Experiment {
    let rows = usmap::state_overview();
    let mut frame = Frame::new();
    frame
        .push_text("state", rows.iter().map(|r| r.state.clone()).collect())
        .unwrap();
    frame
        .push_number(
            "carbon_intensity_gco2_per_kwh",
            rows.iter().map(|r| r.carbon_intensity).collect(),
        )
        .unwrap();
    frame
        .push_number("water_scarcity_index", rows.iter().map(|r| r.wsi).collect())
        .unwrap();
    frame
        .push_number(
            "hpc_power_mw",
            rows.iter().map(|r| r.hpc_power_mw).collect(),
        )
        .unwrap();

    let stressed_power: f64 = rows
        .iter()
        .filter(|r| r.wsi >= 0.5)
        .map(|r| r.hpc_power_mw)
        .sum();
    let total_power: f64 = rows.iter().map(|r| r.hpc_power_mw).sum();
    Experiment {
        id: "fig01",
        title: "Carbon intensity, water scarcity index, and HPC power consumption in the US",
        frame,
        notes: vec![
            format!(
                "{:.0}% of snapshot HPC power sits in states with WSI >= 0.5 — HPC centers are not all in water-rich places",
                100.0 * stressed_power / total_power
            ),
            "coastal states carry lower carbon intensity than the inland coal belt".into(),
        ],
    }
}

/// Fig. 10: direct and indirect WSIs vary strongly within Illinois and
/// Tennessee (county level), and across the whole US.
pub fn fig10() -> Experiment {
    // The two county fields are independent seeded generations; run them
    // on two workers when a pool is configured.
    let (il, tn) = rayon::join(
        || CountyWsiField::generate("IL", 102, SEED).expect("IL is cataloged"),
        || CountyWsiField::generate("TN", 95, SEED).expect("TN is cataloged"),
    );

    // US-wide state-level extremes for the third panel.
    let mut us_min = f64::INFINITY;
    let mut us_max = f64::NEG_INFINITY;
    for abbr in wsi::STATE_ABBRS {
        let v = wsi::state_wsi(abbr).unwrap().value();
        us_min = us_min.min(v);
        us_max = us_max.max(v);
    }

    let mut frame = Frame::new();
    frame
        .push_text(
            "region",
            vec![
                "Illinois (county)".into(),
                "Tennessee (county)".into(),
                "USA (state)".into(),
            ],
        )
        .unwrap();
    frame
        .push_number("n_units", vec![102.0, 95.0, 51.0])
        .unwrap();
    frame
        .push_number("wsi_min", vec![il.min(), tn.min(), us_min])
        .unwrap();
    frame
        .push_number(
            "wsi_mean",
            vec![il.mean(), tn.mean(), (us_min + us_max) / 2.0],
        )
        .unwrap();
    frame
        .push_number("wsi_max", vec![il.max(), tn.max(), us_max])
        .unwrap();
    frame
        .push_number(
            "relative_spread",
            vec![
                il.relative_spread(),
                tn.relative_spread(),
                (us_max - us_min) / ((us_min + us_max) / 2.0),
            ],
        )
        .unwrap();

    Experiment {
        id: "fig10",
        title: "Direct and indirect WSIs exhibit significant variation for Illinois, Tennessee, and the USA",
        frame,
        notes: vec![
            format!(
                "Illinois county WSI spans {:.2}-{:.2} around the {:.2} state mean",
                il.min(),
                il.max(),
                il.mean()
            ),
            format!(
                "Tennessee county WSI spans {:.2}-{:.2} around the {:.2} state mean",
                tn.min(),
                tn.max(),
                tn.mean()
            ),
            "WSI varies at sub-state (kilometer) scale, so the choice of supplying power grid materially changes the indirect WSI".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_shape() {
        let e = fig01();
        assert_eq!(e.frame.n_rows(), 51);
        let il_idx = e
            .frame
            .texts("state")
            .unwrap()
            .iter()
            .position(|s| s == "IL")
            .unwrap();
        assert!(e.frame.numbers("hpc_power_mw").unwrap()[il_idx] > 40.0);
    }

    #[test]
    fn fig10_shape() {
        let e = fig10();
        let spreads = e.frame.numbers("relative_spread").unwrap();
        // Significant variation in both states.
        assert!(spreads[0] > 0.3 && spreads[1] > 0.3);
    }
}
