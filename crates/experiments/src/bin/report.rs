//! Prints every regenerated paper table and figure as markdown, and
//! (with `--json`) dumps the raw frames as JSON for downstream plotting.
//!
//! Usage:
//!   report            # all experiments, markdown
//!   report fig07      # one experiment
//!   report --json     # all experiments, JSON
//!   report --csv      # all experiments, CSV blocks

use thirstyflops_experiments as experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let csv = args.iter().any(|a| a == "--csv");
    let filter: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    // One parallel sweep; a filter regenerates only the named artifacts.
    let ids: Vec<&str> = filter.iter().map(|f| f.as_str()).collect();
    let known = experiments::ids();
    let unknown: Vec<&&str> = ids.iter().filter(|id| !known.contains(id)).collect();
    if !unknown.is_empty() {
        eprintln!("no matching experiment: {unknown:?}; known ids:");
        for id in known {
            eprintln!("  {id}");
        }
        std::process::exit(1);
    }
    let selected: Vec<_> = if ids.is_empty() {
        experiments::all()
    } else {
        experiments::select(&ids)
    };

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&selected).expect("experiments serialize")
        );
        return;
    }

    for e in &selected {
        println!("## {} — {}\n", e.id, e.title);
        if csv {
            println!("```csv\n{}```", e.frame.to_csv());
        } else {
            println!("{}", e.frame.to_markdown());
        }
        for note in &e.notes {
            println!("> {note}");
        }
        println!();
    }
}
