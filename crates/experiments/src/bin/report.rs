//! Prints every regenerated paper table and figure as markdown, and
//! (with `--json`) dumps the raw frames as JSON for downstream plotting.
//!
//! Usage:
//!   report            # all experiments, markdown
//!   report fig07      # one experiment
//!   report --json     # all experiments, JSON
//!   report --csv      # all experiments, CSV blocks

use thirstyflops_experiments as experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let csv = args.iter().any(|a| a == "--csv");
    let filter: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let all = experiments::all();
    let selected: Vec<_> = if filter.is_empty() {
        all
    } else {
        all.into_iter()
            .filter(|e| filter.iter().any(|f| e.id == f.as_str()))
            .collect()
    };

    if selected.is_empty() {
        eprintln!("no matching experiment; known ids:");
        for e in experiments::all() {
            eprintln!("  {}", e.id);
        }
        std::process::exit(1);
    }

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&selected).expect("experiments serialize")
        );
        return;
    }

    for e in &selected {
        println!("## {} — {}\n", e.id, e.title);
        if csv {
            println!("```csv\n{}```", e.frame.to_csv());
        } else {
            println!("{}", e.frame.to_markdown());
        }
        for note in &e.notes {
            println!("> {note}");
        }
        println!();
    }
}
