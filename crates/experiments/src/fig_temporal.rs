//! Fig. 11 (monthly energy vs water footprint) and Fig. 12 (water vs
//! carbon intensity trends).

use thirstyflops_core::intensity;
use thirstyflops_timeseries::{Frame, Month};

use crate::context::paper_years;
use crate::Experiment;

/// Fig. 11: normalized monthly power consumption (top) and water
/// footprint (bottom) for the four systems.
pub fn fig11() -> Experiment {
    let years = paper_years();
    let mut systems = Vec::new();
    let mut months = Vec::new();
    let mut power_norm = Vec::new();
    let mut water_norm = Vec::new();
    let mut notes = Vec::new();

    for y in years {
        let monthly_energy = y.energy.monthly_sum();
        let monthly_water = y.hourly_water().monthly_sum();
        let pn = monthly_energy.normalized();
        let wn = monthly_water.normalized();
        for m in Month::ALL {
            systems.push(y.spec.id.to_string());
            months.push(m.number() as f64);
            power_norm.push(pn.get(m));
            water_norm.push(wn.get(m));
        }
        let corr = monthly_energy.pearson(&monthly_water);
        notes.push(format!(
            "{}: power/water monthly correlation {:.2} — correlated but not aligned",
            y.spec.id, corr
        ));
    }

    let mut frame = Frame::new();
    frame.push_text("system", systems).unwrap();
    frame.push_number("month", months).unwrap();
    frame.push_number("power_normalized", power_norm).unwrap();
    frame.push_number("water_normalized", water_norm).unwrap();
    notes.push(
        "water tracks energy only loosely: WUE/EWF/mix seasonality decouples them (Takeaway 7)"
            .into(),
    );
    Experiment {
        id: "fig11",
        title: "Temporal energy consumption and water footprint variations over one year",
        frame,
        notes,
    }
}

/// Fig. 12: monthly normalized water intensity (total, indirect, direct)
/// against carbon intensity for the four systems.
pub fn fig12() -> Experiment {
    let years = paper_years();
    let mut systems = Vec::new();
    let mut months = Vec::new();
    let mut wi_norm = Vec::new();
    let mut wi_ind_norm = Vec::new();
    let mut wi_dir_norm = Vec::new();
    let mut ci_norm = Vec::new();
    let mut notes = Vec::new();

    for y in years {
        let wi = intensity::hourly_water_intensity(&y.wue, y.spec.pue, &y.ewf).monthly_mean();
        let wi_ind = intensity::hourly_indirect_intensity(y.spec.pue, &y.ewf).monthly_mean();
        let wi_dir = y.wue.monthly_mean();
        let ci = y.carbon.monthly_mean();
        let (win, wiin, widn, cin) = (
            wi.normalized(),
            wi_ind.normalized(),
            wi_dir.normalized(),
            ci.normalized(),
        );
        for m in Month::ALL {
            systems.push(y.spec.id.to_string());
            months.push(m.number() as f64);
            wi_norm.push(win.get(m));
            wi_ind_norm.push(wiin.get(m));
            wi_dir_norm.push(widn.get(m));
            ci_norm.push(cin.get(m));
        }
        let corr = wi.pearson(&ci);
        notes.push(format!(
            "{}: monthly WI-vs-CI correlation {:.2}",
            y.spec.id, corr
        ));
    }

    let mut frame = Frame::new();
    frame.push_text("system", systems).unwrap();
    frame.push_number("month", months).unwrap();
    frame
        .push_number("water_intensity_normalized", wi_norm)
        .unwrap();
    frame
        .push_number("indirect_wi_normalized", wi_ind_norm)
        .unwrap();
    frame
        .push_number("direct_wi_normalized", wi_dir_norm)
        .unwrap();
    frame
        .push_number("carbon_intensity_normalized", ci_norm)
        .unwrap();
    notes.push(
        "Marconi: summer hydro lowers carbon but raises indirect water — the metrics compete (Takeaway 8)"
            .into(),
    );
    Experiment {
        id: "fig12",
        title: "Carbon intensity can compete with water intensity via the indirect component",
        frame,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thirstyflops_timeseries::stats;

    #[test]
    fn fig11_correlated_but_not_identical() {
        let e = fig11();
        let p = e.frame.numbers("power_normalized").unwrap();
        let w = e.frame.numbers("water_normalized").unwrap();
        for sys in 0..4 {
            let ps = &p[sys * 12..(sys + 1) * 12];
            let ws = &w[sys * 12..(sys + 1) * 12];
            let corr = stats::pearson(ps, ws).unwrap();
            assert!(corr < 0.999, "system {sys}: suspiciously perfect alignment");
        }
    }

    #[test]
    fn fig12_direct_wi_peaks_in_summer() {
        let e = fig12();
        let months = e.frame.numbers("month").unwrap();
        let dir = e.frame.numbers("direct_wi_normalized").unwrap();
        // All systems: the direct (WUE) component's max lands Jun-Sep.
        for sys in 0..4 {
            let window = sys * 12..(sys + 1) * 12;
            let (mut best_m, mut best_v) = (0.0, f64::NEG_INFINITY);
            for i in window {
                if dir[i] > best_v {
                    best_v = dir[i];
                    best_m = months[i];
                }
            }
            assert!(
                (6.0..=9.0).contains(&best_m),
                "system {sys} peak month {best_m}"
            );
        }
    }

    #[test]
    fn fig12_marconi_water_carbon_compete() {
        let e = fig12();
        let wi = &e.frame.numbers("water_intensity_normalized").unwrap()[..12];
        let ci = &e.frame.numbers("carbon_intensity_normalized").unwrap()[..12];
        let corr = stats::pearson(wi, ci).unwrap();
        assert!(
            corr < 0.0,
            "Marconi WI/CI correlation {corr} should be negative"
        );
    }
}
