//! A fixed pool of worker threads consuming accepted connections.
//!
//! Same philosophy as the workspace's rayon shim executor
//! (`docs/CONCURRENCY.md`): plain `std::thread` workers pulling work
//! items off one shared queue, with the worker count fixed up front.
//! The pool is generic over the job type — the server feeds it accepted
//! connections (stream plus its connection-limit permit) — and ordering
//! does not matter: handlers are pure, so which worker answers a request
//! can never change the bytes on the wire.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// The worker threads. Dropping the matching [`Sender`] (returned by
/// [`WorkerPool::spawn`]) is the shutdown signal: each worker exits once
/// the queue is drained and disconnected, and [`WorkerPool::join`] waits
/// for them.
#[derive(Debug)]
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (clamped to ≥ 1) that each loop over the
    /// queue and run `handle` on every job. A panic in `handle` is
    /// caught per job: the client whose request panicked gets a dropped
    /// connection, the worker stays alive and keeps serving. The job is
    /// moved into the handler, so its destructors (e.g. a connection
    /// permit) run even when the handler panics.
    pub fn spawn<T: Send + 'static>(
        workers: usize,
        handle: impl Fn(T) + Send + Sync + 'static,
    ) -> (WorkerPool, Sender<T>) {
        let (sender, receiver) = std::sync::mpsc::channel::<T>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handle = Arc::new(handle);
        let handles = (0..workers.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let handle = Arc::clone(&handle);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, &*handle))
                    .expect("spawning a worker thread")
            })
            .collect();
        (WorkerPool { handles }, sender)
    }

    /// Number of worker threads.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Always false — the pool clamps to at least one worker.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Waits for every worker to drain the queue and exit. Call after
    /// dropping the `Sender`; joining with it alive would deadlock.
    pub fn join(self) {
        for handle in self.handles {
            // A worker that panicked already lost its connection; the
            // pool itself shuts down regardless.
            let _ = handle.join();
        }
    }
}

fn worker_loop<T>(receiver: &Mutex<Receiver<T>>, handle: &(impl Fn(T) + ?Sized)) {
    loop {
        // Hold the queue lock only for the pop, never during handling.
        let next = receiver.lock().expect("queue lock poisoned").recv();
        match next {
            Ok(job) => {
                // A panicking handler must not take the worker down with
                // it — with --workers 1 that would turn one bad request
                // into a silent total outage (accepted but never
                // answered connections).
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle(job)));
            }
            Err(_) => return, // sender dropped ⇒ shutdown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_handle_jobs_then_join_on_sender_drop() {
        let served = Arc::new(AtomicUsize::new(0));
        let served_in_pool = Arc::clone(&served);
        let (pool, sender) = WorkerPool::spawn(4, move |mut stream: TcpStream| {
            let mut byte = [0u8; 1];
            let _ = stream.read(&mut byte);
            let _ = stream.write_all(&byte);
            served_in_pool.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(pool.len(), 4);
        assert!(!pool.is_empty());

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let clients: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = TcpStream::connect(addr).unwrap();
                    c.write_all(&[i]).unwrap();
                    let mut echo = [0u8; 1];
                    c.read_exact(&mut echo).unwrap();
                    assert_eq!(echo[0], i);
                })
            })
            .collect();
        for _ in 0..8 {
            let (stream, _) = listener.accept().unwrap();
            sender.send(stream).unwrap();
        }
        for c in clients {
            c.join().unwrap();
        }
        drop(sender);
        pool.join();
        assert_eq!(served.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn a_panicking_handler_does_not_kill_the_worker() {
        let served = Arc::new(AtomicUsize::new(0));
        let served_in_pool = Arc::clone(&served);
        let (pool, sender) = WorkerPool::spawn(1, move |mut stream: TcpStream| {
            let mut byte = [0u8; 1];
            let _ = stream.read(&mut byte);
            if byte[0] == b'!' {
                panic!("poisoned request");
            }
            let _ = stream.write_all(&byte);
            served_in_pool.fetch_add(1, Ordering::SeqCst);
        });
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // First connection panics the handler; the second must still be
        // served by the same (sole) worker.
        for payload in [b'!', b'x'] {
            let client = std::thread::spawn(move || {
                let mut c = TcpStream::connect(addr).unwrap();
                c.write_all(&[payload]).unwrap();
                let mut echo = [0u8; 1];
                let _ = c.read(&mut echo);
            });
            let (stream, _) = listener.accept().unwrap();
            sender.send(stream).unwrap();
            client.join().unwrap();
        }
        drop(sender);
        pool.join();
        assert_eq!(served.load(Ordering::SeqCst), 1, "the clean request served");
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let (pool, sender) = WorkerPool::spawn(0, |_: TcpStream| {});
        assert_eq!(pool.len(), 1);
        drop(sender);
        pool.join();
    }
}
