//! Response shaping shared by the CLI's `--json` output and the HTTP
//! handlers.
//!
//! The byte-identity guarantee between `thirstyflops <cmd> --json` and
//! the corresponding `GET /v1/...` response rests on this module: both
//! front ends build the same typed payload and render it through the one
//! canonical serializer, [`to_json`]. Nothing here touches the network —
//! it is pure "model results → serde types".

use thirstyflops_catalog::{SystemId, SystemSpec};
use thirstyflops_core::uncertainty::{mix_ewf_interval, operational_interval};
use thirstyflops_core::{AnnualReport, FootprintModel, Interval, SystemYear};
use thirstyflops_grid::{GridRegion, Scenario};
use thirstyflops_units::{GramsCo2PerKwh, LitersPerKilowattHour};

/// The canonical JSON rendering: 2-space pretty with a trailing newline
/// (exactly what the CLI has always printed for `experiments --json`).
pub fn to_json<T: serde::Serialize>(value: &T) -> String {
    let mut text =
        serde_json::to_string_pretty(value).expect("workspace serde shim cannot fail to render");
    text.push('\n');
    text
}

/// One row of `GET /v1/systems` / `thirstyflops systems --json`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SystemEntry {
    /// Canonical slug (valid in URLs and as a CLI argument).
    pub system: String,
    /// Display name.
    pub name: String,
    /// Facility / operator.
    pub operator: String,
    /// City, country.
    pub location: String,
    /// Year of first operation.
    pub start_year: u32,
    /// Compute node count.
    pub nodes: u32,
    /// Facility PUE.
    pub pue: f64,
    /// Electricity grid region (display name).
    pub region: String,
    /// Whether the system has GPU accelerators.
    pub has_gpus: bool,
}

/// `GET /v1/systems` payload.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SystemsPayload {
    /// All cataloged systems, catalog order.
    pub systems: Vec<SystemEntry>,
}

/// Builds the catalog listing.
pub fn systems_payload() -> SystemsPayload {
    SystemsPayload {
        systems: SystemId::ALL
            .iter()
            .map(|&id| {
                let s = SystemSpec::reference(id);
                SystemEntry {
                    system: id.slug().to_string(),
                    name: id.name().to_string(),
                    operator: s.operator.clone(),
                    location: s.location.clone(),
                    start_year: s.start_year,
                    nodes: s.nodes,
                    pue: s.pue.value(),
                    region: s.region.name().to_string(),
                    has_gpus: s.has_gpus(),
                }
            })
            .collect(),
    }
}

/// `GET /v1/footprint/{system}` payload: the full annual report plus the
/// catalog context the text report prints.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FootprintPayload {
    /// Canonical slug.
    pub system: String,
    /// Display name.
    pub name: String,
    /// Facility / operator.
    pub operator: String,
    /// City, country.
    pub location: String,
    /// Telemetry seed the year was simulated with.
    pub seed: u64,
    /// Everything the paper reports per system-year.
    pub report: AnnualReport,
}

/// Builds one system's annual footprint payload.
pub fn footprint_payload(id: SystemId, seed: u64) -> FootprintPayload {
    let spec = SystemSpec::reference(id);
    FootprintPayload {
        system: id.slug().to_string(),
        name: id.name().to_string(),
        operator: spec.operator.clone(),
        location: spec.location.clone(),
        seed,
        report: FootprintModel::reference(id).annual_report(seed),
    }
}

/// `GET /v1/rank` row.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RankEntry {
    /// 1-based position under the requested metric.
    pub rank: u32,
    /// Canonical slug.
    pub system: String,
    /// Display name.
    pub name: String,
    /// Annual operational water, megaliters.
    pub operational_ml: f64,
    /// Annual IT energy, GWh.
    pub energy_gwh: f64,
    /// Annual mean water intensity, L/kWh.
    pub mean_wi: f64,
    /// Scarcity-adjusted water intensity, L/kWh.
    pub adjusted_wi: f64,
}

/// `GET /v1/rank` payload.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RankPayload {
    /// Telemetry seed.
    pub seed: u64,
    /// True when ranked by scarcity-adjusted intensity instead of
    /// operational volume.
    pub adjusted: bool,
    /// Worst-first ranking, mirroring `thirstyflops rank`.
    pub entries: Vec<RankEntry>,
}

/// Builds the Water500-style ranking (worst first, like the CLI).
pub fn rank_payload(adjusted: bool, seed: u64) -> RankPayload {
    let mut reports: Vec<AnnualReport> = SystemId::ALL
        .iter()
        .map(|&id| FootprintModel::reference(id).annual_report(seed))
        .collect();
    if adjusted {
        reports.sort_by(|x, y| {
            y.adjusted_wi
                .value()
                .partial_cmp(&x.adjusted_wi.value())
                .expect("intensities are finite")
        });
    } else {
        reports.sort_by(|x, y| {
            y.operational_total()
                .value()
                .partial_cmp(&x.operational_total().value())
                .expect("volumes are finite")
        });
    }
    RankPayload {
        seed,
        adjusted,
        entries: reports
            .iter()
            .enumerate()
            .map(|(i, r)| RankEntry {
                rank: (i + 1) as u32,
                system: r.id.slug().to_string(),
                name: r.id.name().to_string(),
                operational_ml: r.operational_total().value() / 1e6,
                energy_gwh: r.energy.value() / 1e6,
                mean_wi: r.mean_wi.value(),
                adjusted_wi: r.adjusted_wi.value(),
            })
            .collect(),
    }
}

/// `GET /v1/compare` / `thirstyflops compare --json` payload.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ComparePayload {
    /// Telemetry seed.
    pub seed: u64,
    /// First system's footprint.
    pub a: FootprintPayload,
    /// Second system's footprint.
    pub b: FootprintPayload,
    /// First system's operational uncertainty band, liters.
    pub operational_band_a: Interval,
    /// Second system's operational uncertainty band, liters.
    pub operational_band_b: Interval,
    /// True when the bands overlap — the ranking is not robust to
    /// EWF/WUE uncertainty.
    pub bands_overlap: bool,
}

/// The EWF/WUE uncertainty band on a system's annual operational water
/// (liters), as printed by `thirstyflops compare`.
pub fn operational_band(id: SystemId, report: &AnnualReport) -> Interval {
    let spec = SystemSpec::reference(id);
    let mix = GridRegion::preset(spec.region).annual_mix();
    let ewf = mix_ewf_interval(&mix);
    let wue =
        Interval::with_tolerance(report.mean_wue.value(), 0.15).expect("static tolerance is valid");
    let energy = Interval::exact(report.energy.value());
    operational_interval(energy, wue, spec.pue, ewf)
}

/// Builds the side-by-side comparison payload.
pub fn compare_payload(a: SystemId, b: SystemId, seed: u64) -> ComparePayload {
    let pa = footprint_payload(a, seed);
    let pb = footprint_payload(b, seed);
    let band_a = operational_band(a, &pa.report);
    let band_b = operational_band(b, &pb.report);
    ComparePayload {
        seed,
        operational_band_a: band_a,
        operational_band_b: band_b,
        bands_overlap: band_a.overlaps(&band_b),
        a: pa,
        b: pb,
    }
}

/// The normalization point of the what-if table: the current mix.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioBaseline {
    /// Mean grid carbon intensity, gCO₂/kWh.
    pub carbon_g_per_kwh: f64,
    /// Mean energy water factor, L/kWh.
    pub ewf_l_per_kwh: f64,
    /// Mean water usage effectiveness, L/kWh.
    pub wue_l_per_kwh: f64,
    /// Facility PUE.
    pub pue: f64,
    /// Mean water intensity `WUE + PUE·EWF`, L/kWh.
    pub wi_l_per_kwh: f64,
}

/// One what-if row of `GET /v1/scenario/{system}`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioRow {
    /// Fig. 14 legend label.
    pub scenario: String,
    /// Carbon-intensity reduction vs the current mix, percent (positive
    /// = cleaner).
    pub carbon_delta_percent: f64,
    /// Water-intensity reduction vs the current mix, percent (positive
    /// = thriftier).
    pub water_delta_percent: f64,
}

/// `GET /v1/scenario/{system}` payload.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioPayload {
    /// Canonical slug.
    pub system: String,
    /// Display name.
    pub name: String,
    /// Telemetry seed.
    pub seed: u64,
    /// The current-mix normalization point.
    pub baseline: ScenarioBaseline,
    /// The four replacement scenarios, Fig. 14 legend order.
    pub scenarios: Vec<ScenarioRow>,
}

/// Builds the Fig. 14 energy-source what-ifs for one system.
pub fn scenario_payload(id: SystemId, seed: u64) -> ScenarioPayload {
    let year = SystemYear::simulate(id, seed);
    let ci_mix = GramsCo2PerKwh::new(year.carbon.mean());
    let ewf_mix = LitersPerKilowattHour::new(year.ewf.mean());
    let wue = year.wue.mean();
    let pue = year.spec.pue.value();
    let wi_mix = wue + pue * ewf_mix.value();
    let scenarios = [
        Scenario::AllCoal,
        Scenario::AllNuclear,
        Scenario::OtherRenewable,
        Scenario::WaterIntensiveRenewable,
    ]
    .iter()
    .map(|&s| {
        let carbon_delta =
            100.0 * (ci_mix.value() - s.carbon_intensity(ci_mix).value()) / ci_mix.value();
        let wi_s = wue + pue * s.ewf(ewf_mix).value();
        ScenarioRow {
            scenario: s.label().to_string(),
            carbon_delta_percent: carbon_delta,
            water_delta_percent: 100.0 * (wi_mix - wi_s) / wi_mix,
        }
    })
    .collect();
    ScenarioPayload {
        system: id.slug().to_string(),
        name: id.name().to_string(),
        seed,
        baseline: ScenarioBaseline {
            carbon_g_per_kwh: ci_mix.value(),
            ewf_l_per_kwh: ewf_mix.value(),
            wue_l_per_kwh: wue,
            pue,
            wi_l_per_kwh: wi_mix,
        },
        scenarios,
    }
}

/// The scenario engine's run payload (`POST /v1/scenarios/run` /
/// `thirstyflops scenario run <file> --json`): the engine's outcome,
/// verbatim — both front ends render the same evaluation through
/// [`to_json`].
pub fn scenario_run_payload(
    spec: &thirstyflops_scenario::ScenarioSpec,
) -> Result<thirstyflops_scenario::ScenarioOutcome, thirstyflops_scenario::ScenarioError> {
    thirstyflops_scenario::evaluate(spec)
}

/// The scenario engine's sweep payload (`POST /v1/scenarios/sweep` /
/// `thirstyflops scenario sweep <file> --json`).
pub fn scenario_sweep_payload(
    sweep: &thirstyflops_scenario::SweepSpec,
) -> Result<thirstyflops_scenario::SweepReport, thirstyflops_scenario::ScenarioError> {
    thirstyflops_scenario::evaluate_sweep(sweep)
}

/// `GET /v1/cache/stats` payload — the serving layer's observability
/// snapshot: the body cache in front, the process-wide simulation caches
/// (`core::simcache`) behind it, and per-endpoint request/latency
/// counters. Warm-path behavior — which layer absorbed a request — is
/// fully observable over HTTP.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStatsPayload {
    /// Rendered-body cache counters (per server process).
    pub body: crate::cache::CacheStats,
    /// Simulation memo-cache counters (grid years, WUE series, whole
    /// system years; process-wide).
    pub simulation: thirstyflops_core::simcache::SimCacheStats,
    /// Batched K-lane kernel counters (lanes, kernel passes, streaming
    /// top-N pushes; process-wide).
    pub batch: thirstyflops_core::batch::BatchStats,
    /// Per-endpoint request/cache-hit/latency counters (per server
    /// process; families with zero traffic included).
    pub endpoints: Vec<crate::metrics::EndpointStats>,
}

/// Builds the observability payload from a body-cache snapshot and an
/// endpoint-metrics snapshot.
pub fn cache_stats_payload(
    body: crate::cache::CacheStats,
    endpoints: Vec<crate::metrics::EndpointStats>,
) -> CacheStatsPayload {
    CacheStatsPayload {
        body,
        simulation: thirstyflops_core::simcache::stats(),
        batch: thirstyflops_core::batch::stats(),
        endpoints,
    }
}

/// `GET /v1/experiments` payload: the known artifact ids, paper order.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExperimentIndexPayload {
    /// Artifact ids accepted by `/v1/experiments/{id}` and the
    /// `experiments` subcommand.
    pub ids: Vec<String>,
}

/// Builds the artifact-id listing (regenerates nothing).
pub fn experiment_index_payload() -> ExperimentIndexPayload {
    ExperimentIndexPayload {
        ids: thirstyflops_experiments::ids()
            .iter()
            .map(|id| id.to_string())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_json_is_pretty_with_trailing_newline() {
        let text = to_json(&experiment_index_payload());
        assert!(text.starts_with("{\n  \"ids\": [\n"));
        assert!(text.ends_with("\n"));
        assert!(!text.ends_with("\n\n"));
    }

    #[test]
    fn systems_payload_lists_all_in_catalog_order() {
        let payload = systems_payload();
        assert_eq!(payload.systems.len(), SystemId::ALL.len());
        assert_eq!(payload.systems[0].system, "marconi");
        assert_eq!(payload.systems[5].name, "El Capitan");
        assert!(
            payload.systems.iter().any(|s| !s.has_gpus),
            "Fugaku is CPU-only"
        );
    }

    #[test]
    fn footprint_payload_matches_direct_model_run() {
        let payload = footprint_payload(SystemId::Polaris, 7);
        let direct = FootprintModel::reference(SystemId::Polaris).annual_report(7);
        assert_eq!(payload.report, direct);
        assert_eq!(payload.system, "polaris");
        assert_eq!(payload.seed, 7);
        assert!(payload.location.contains("Lemont"));
    }

    #[test]
    fn rank_orders_worst_first_under_both_metrics() {
        let by_volume = rank_payload(false, 7);
        assert_eq!(by_volume.entries.len(), SystemId::ALL.len());
        assert!(by_volume
            .entries
            .windows(2)
            .all(|w| w[0].operational_ml >= w[1].operational_ml));
        assert_eq!(by_volume.entries[0].rank, 1);
        let by_adjusted = rank_payload(true, 7);
        assert!(by_adjusted
            .entries
            .windows(2)
            .all(|w| w[0].adjusted_wi >= w[1].adjusted_wi));
    }

    #[test]
    fn compare_payload_band_verdict_is_consistent() {
        let c = compare_payload(SystemId::Polaris, SystemId::Frontier, 2023);
        assert_eq!(
            c.bands_overlap,
            c.operational_band_a.overlaps(&c.operational_band_b)
        );
        assert!(c.operational_band_a.lo <= c.operational_band_a.hi);
        assert_eq!(c.a.system, "polaris");
        assert_eq!(c.b.system, "frontier");
    }

    #[test]
    fn scenario_payload_mirrors_fig14_shape() {
        let p = scenario_payload(SystemId::Fugaku, 2023);
        assert_eq!(p.scenarios.len(), 4);
        assert_eq!(p.scenarios[0].scenario, "100% Coal Usage");
        let wi = p.baseline.wue_l_per_kwh + p.baseline.pue * p.baseline.ewf_l_per_kwh;
        assert!((p.baseline.wi_l_per_kwh - wi).abs() < 1e-12);
        // Coal is dirtier than the current mix (negative carbon saving).
        assert!(p.scenarios[0].carbon_delta_percent < 0.0);
    }

    #[test]
    fn experiment_index_matches_the_regenerator_table() {
        let expected: Vec<String> = thirstyflops_experiments::ids()
            .iter()
            .map(|id| id.to_string())
            .collect();
        assert_eq!(experiment_index_payload().ids, expected);
    }

    #[test]
    fn payloads_render_deterministically() {
        let a = to_json(&footprint_payload(SystemId::Marconi, 7));
        let b = to_json(&footprint_payload(SystemId::Marconi, 7));
        assert_eq!(a, b);
    }
}
