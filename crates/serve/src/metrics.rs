//! Per-endpoint request counters and latency histograms.
//!
//! One fixed-size table of atomic counters, indexed by endpoint family
//! (the same families the router resolves). Counters are monotonic and
//! lock-free; each family also keeps a [`LatencyHistogram`] — a fixed
//! array of power-of-two microsecond buckets — so `GET /v1/cache/stats`
//! can serve p50/p90/p99 tail latencies without ever taking a lock or
//! storing individual samples. `serve --log` prints one line per request
//! from the same measurements.

use std::sync::atomic::{AtomicU64, Ordering};

/// The endpoint families metrics are kept for, stats order. `other`
/// absorbs unroutable paths and unparsable requests.
pub const ENDPOINTS: [&str; 11] = [
    "healthz",
    "cache_stats",
    "systems",
    "footprint",
    "compare",
    "rank",
    "scenario",
    "scenarios_run",
    "scenarios_sweep",
    "experiments",
    "other",
];

/// Log₂ bucket count: bucket `i ≥ 1` holds samples in
/// `[2^(i-1), 2^i)` microseconds, bucket 0 holds `0`. 24 buckets cover
/// up to ~8.4 s — far past any handler this API runs.
const BUCKETS: usize = 24;

/// A fixed log-bucket latency histogram over atomic counters.
///
/// Recording is one `fetch_add` (no locks, no allocation), so it is safe
/// on the per-request hot path at any worker count. Quantiles are read
/// as the inclusive upper bound of the bucket where the cumulative count
/// crosses the rank — an overestimate by at most 2× (one bucket width),
/// which is the standard trade for O(1) recording. The same type backs
/// the server's per-endpoint stats and `loadgen`'s client-side
/// measurements, so both report quantiles on identical bucket edges.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl LatencyHistogram {
    /// Records one sample (microseconds).
    pub fn record(&self, micros: u64) {
        let idx = (64 - u64::leading_zeros(micros) as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0 < q ≤ 1`) in microseconds: the upper bound
    /// of the bucket holding the sample of rank `⌈q·count⌉`. Returns 0
    /// when nothing has been recorded.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return if idx == 0 { 0 } else { (1 << idx) - 1 };
            }
        }
        (1 << (BUCKETS - 1)) - 1
    }
}

#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    total_micros: AtomicU64,
    latency: LatencyHistogram,
}

/// The per-endpoint counter table.
#[derive(Debug, Default)]
pub struct Metrics {
    table: [Counters; ENDPOINTS.len()],
}

/// One endpoint's snapshot as served by `GET /v1/cache/stats`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EndpointStats {
    /// Endpoint family name (see [`ENDPOINTS`]).
    pub endpoint: String,
    /// Requests answered (any status).
    pub requests: u64,
    /// Requests answered from the body cache.
    pub cache_hits: u64,
    /// Total handler wall-clock across those requests, microseconds.
    pub total_micros: u64,
    /// Median latency, microseconds (log-bucket upper bound; 0 when no
    /// requests recorded).
    pub p50_micros: u64,
    /// 90th-percentile latency, microseconds.
    pub p90_micros: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_micros: u64,
}

impl Metrics {
    /// Records one answered request. Unknown labels land in `other`.
    pub fn record(&self, endpoint: &str, cache_hit: bool, micros: u64) {
        let idx = ENDPOINTS
            .iter()
            .position(|e| *e == endpoint)
            .unwrap_or(ENDPOINTS.len() - 1);
        let counters = &self.table[idx];
        counters.requests.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            counters.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        counters.total_micros.fetch_add(micros, Ordering::Relaxed);
        counters.latency.record(micros);
    }

    /// A snapshot of every family, stats order (families with zero
    /// requests included, so the payload shape is stable).
    pub fn snapshot(&self) -> Vec<EndpointStats> {
        ENDPOINTS
            .iter()
            .zip(&self.table)
            .map(|(endpoint, counters)| EndpointStats {
                endpoint: (*endpoint).to_string(),
                requests: counters.requests.load(Ordering::Relaxed),
                cache_hits: counters.cache_hits.load(Ordering::Relaxed),
                total_micros: counters.total_micros.load(Ordering::Relaxed),
                p50_micros: counters.latency.quantile(0.50),
                p90_micros: counters.latency.quantile(0.90),
                p99_micros: counters.latency.quantile(0.99),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_the_right_family() {
        let metrics = Metrics::default();
        metrics.record("footprint", true, 120);
        metrics.record("footprint", false, 80);
        metrics.record("no-such-endpoint", false, 5);
        let snap = metrics.snapshot();
        assert_eq!(snap.len(), ENDPOINTS.len());
        let footprint = snap.iter().find(|s| s.endpoint == "footprint").unwrap();
        assert_eq!(footprint.requests, 2);
        assert_eq!(footprint.cache_hits, 1);
        assert_eq!(footprint.total_micros, 200);
        let other = snap.iter().find(|s| s.endpoint == "other").unwrap();
        assert_eq!(other.requests, 1);
        // Untouched families are present with zero counts.
        let rank = snap.iter().find(|s| s.endpoint == "rank").unwrap();
        assert_eq!(rank.requests, 0);
        assert_eq!((rank.p50_micros, rank.p99_micros), (0, 0));
    }

    #[test]
    fn histogram_buckets_are_log2_upper_bounds() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram reads 0");
        h.record(0);
        assert_eq!(h.quantile(1.0), 0, "zero lands in the zero bucket");
        // 100 lands in [64, 128) ⇒ upper bound 127.
        h.record(100);
        assert_eq!(h.quantile(1.0), 127);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn quantiles_walk_the_cumulative_counts() {
        let h = LatencyHistogram::default();
        // 90 fast samples in [64, 128), 10 slow in [4096, 8192).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(5000);
        }
        assert_eq!(h.quantile(0.50), 127);
        assert_eq!(h.quantile(0.90), 127, "rank 90 is the last fast sample");
        assert_eq!(h.quantile(0.99), 8191);
        assert_eq!(h.quantile(1.0), 8191);
    }

    #[test]
    fn oversized_samples_clamp_to_the_top_bucket() {
        let h = LatencyHistogram::default();
        h.record(u64::MAX);
        assert_eq!(h.quantile(1.0), (1 << (BUCKETS - 1)) - 1);
    }

    #[test]
    fn snapshot_reports_quantiles_per_family() {
        let metrics = Metrics::default();
        for _ in 0..99 {
            metrics.record("rank", false, 10);
        }
        metrics.record("rank", false, 1_000_000);
        let snap = metrics.snapshot();
        let rank = snap.iter().find(|s| s.endpoint == "rank").unwrap();
        assert_eq!(rank.p50_micros, 15, "10µs lands in [8,16)");
        assert_eq!(rank.p90_micros, 15);
        assert_eq!(
            rank.p99_micros, 15,
            "rank 99 of 100 is still the fast bucket"
        );
    }
}
