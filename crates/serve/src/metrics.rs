//! Per-endpoint request and latency counters.
//!
//! One fixed-size table of atomic counters, indexed by endpoint family
//! (the same families the router resolves). Counters are monotonic and
//! lock-free; `GET /v1/cache/stats` serves a snapshot and `serve --log`
//! prints one line per request from the same measurements.

use std::sync::atomic::{AtomicU64, Ordering};

/// The endpoint families metrics are kept for, stats order. `other`
/// absorbs unroutable paths and unparsable requests.
pub const ENDPOINTS: [&str; 11] = [
    "healthz",
    "cache_stats",
    "systems",
    "footprint",
    "compare",
    "rank",
    "scenario",
    "scenarios_run",
    "scenarios_sweep",
    "experiments",
    "other",
];

#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    total_micros: AtomicU64,
}

/// The per-endpoint counter table.
#[derive(Debug, Default)]
pub struct Metrics {
    table: [Counters; ENDPOINTS.len()],
}

/// One endpoint's snapshot as served by `GET /v1/cache/stats`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EndpointStats {
    /// Endpoint family name (see [`ENDPOINTS`]).
    pub endpoint: String,
    /// Requests answered (any status).
    pub requests: u64,
    /// Requests answered from the body cache.
    pub cache_hits: u64,
    /// Total handler wall-clock across those requests, microseconds.
    pub total_micros: u64,
}

impl Metrics {
    /// Records one answered request. Unknown labels land in `other`.
    pub fn record(&self, endpoint: &str, cache_hit: bool, micros: u64) {
        let idx = ENDPOINTS
            .iter()
            .position(|e| *e == endpoint)
            .unwrap_or(ENDPOINTS.len() - 1);
        let counters = &self.table[idx];
        counters.requests.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            counters.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        counters.total_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// A snapshot of every family, stats order (families with zero
    /// requests included, so the payload shape is stable).
    pub fn snapshot(&self) -> Vec<EndpointStats> {
        ENDPOINTS
            .iter()
            .zip(&self.table)
            .map(|(endpoint, counters)| EndpointStats {
                endpoint: (*endpoint).to_string(),
                requests: counters.requests.load(Ordering::Relaxed),
                cache_hits: counters.cache_hits.load(Ordering::Relaxed),
                total_micros: counters.total_micros.load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_the_right_family() {
        let metrics = Metrics::default();
        metrics.record("footprint", true, 120);
        metrics.record("footprint", false, 80);
        metrics.record("no-such-endpoint", false, 5);
        let snap = metrics.snapshot();
        assert_eq!(snap.len(), ENDPOINTS.len());
        let footprint = snap.iter().find(|s| s.endpoint == "footprint").unwrap();
        assert_eq!(footprint.requests, 2);
        assert_eq!(footprint.cache_hits, 1);
        assert_eq!(footprint.total_micros, 200);
        let other = snap.iter().find(|s| s.endpoint == "other").unwrap();
        assert_eq!(other.requests, 1);
        // Untouched families are present with zero counts.
        let rank = snap.iter().find(|s| s.endpoint == "rank").unwrap();
        assert_eq!(rank.requests, 0);
    }
}
