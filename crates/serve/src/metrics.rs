//! Per-endpoint request counters and latency histograms.
//!
//! One fixed-size table of atomic counters, indexed by endpoint family
//! (the same families the router resolves). Counters are monotonic and
//! lock-free; each family also keeps a [`LatencyHistogram`] — the
//! workspace-wide log₂-bucket histogram from `thirstyflops_obs`,
//! re-exported here so `loadgen` and the server report quantiles on
//! identical bucket edges — so `GET /v1/cache/stats` can serve
//! p50/p90/p99 tail latencies without ever taking a lock or storing
//! individual samples. `serve --log` prints one line per request from
//! the same measurements, and `GET /v1/metrics` renders the table as
//! Prometheus text via [`Metrics::render_prometheus`].
//!
//! Unlike the global `thirstyflops_obs::registry`, this table is
//! instance-local (one per [`crate::AppState`]) so tests can spin up
//! many servers in one process without sharing counters.

use std::sync::atomic::{AtomicU64, Ordering};

use thirstyflops_obs::prom::PromWriter;
pub use thirstyflops_obs::LatencyHistogram;

/// The endpoint families metrics are kept for, stats order. `shed`
/// counts capacity rejections (503 connection sheds and 413/431
/// over-cap requests — see `docs/SERVING.md`); `other` absorbs
/// unroutable paths and the remaining unparsable requests.
pub const ENDPOINTS: [&str; 15] = [
    "healthz",
    "readyz",
    "cache_stats",
    "systems",
    "footprint",
    "compare",
    "rank",
    "scenario",
    "scenarios_run",
    "scenarios_sweep",
    "experiments",
    "metrics",
    "trace",
    "shed",
    "other",
];

/// Why a request was shed, `thirstyflops_shed_total`'s `reason` label
/// values: accept-time connection-limit 503s, over-cap 431/413
/// rejections, and per-request deadline 504s.
pub const SHED_REASONS: [&str; 4] = [
    "connection_limit",
    "head_too_large",
    "body_too_large",
    "deadline",
];

#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    latency: LatencyHistogram,
}

/// The per-endpoint counter table.
#[derive(Debug, Default)]
pub struct Metrics {
    table: [Counters; ENDPOINTS.len()],
    shed: [AtomicU64; SHED_REASONS.len()],
}

/// One endpoint's snapshot as served by `GET /v1/cache/stats`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EndpointStats {
    /// Endpoint family name (see [`ENDPOINTS`]).
    pub endpoint: String,
    /// Requests answered (any status).
    pub requests: u64,
    /// Requests answered from the body cache.
    pub cache_hits: u64,
    /// Total handler wall-clock across those requests, microseconds.
    pub total_micros: u64,
    /// Median latency, microseconds (log-bucket upper bound; 0 when no
    /// requests recorded).
    pub p50_micros: u64,
    /// 90th-percentile latency, microseconds.
    pub p90_micros: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_micros: u64,
}

impl Metrics {
    /// Records one answered request. Unknown labels land in `other`.
    pub fn record(&self, endpoint: &str, cache_hit: bool, micros: u64) {
        let idx = ENDPOINTS
            .iter()
            .position(|e| *e == endpoint)
            .unwrap_or(ENDPOINTS.len() - 1);
        let counters = &self.table[idx];
        counters.requests.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            counters.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        counters.latency.record(micros);
    }

    /// Records one shed request by reason (see [`SHED_REASONS`]).
    /// Unknown reasons are ignored rather than miscounted — callers
    /// pass compile-time constants, so a miss is a programming error
    /// the tests catch.
    pub fn record_shed(&self, reason: &str) {
        if let Some(idx) = SHED_REASONS.iter().position(|r| *r == reason) {
            self.shed[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Shed counts by reason, [`SHED_REASONS`] order.
    pub fn shed_snapshot(&self) -> [u64; SHED_REASONS.len()] {
        let mut out = [0u64; SHED_REASONS.len()];
        for (slot, counter) in out.iter_mut().zip(&self.shed) {
            *slot = counter.load(Ordering::Relaxed);
        }
        out
    }

    /// Total requests answered across every family (`/healthz`'s
    /// `requests_total`).
    pub fn total_requests(&self) -> u64 {
        self.table
            .iter()
            .map(|c| c.requests.load(Ordering::Relaxed))
            .sum()
    }

    /// A snapshot of every family, stats order (families with zero
    /// requests included, so the payload shape is stable).
    pub fn snapshot(&self) -> Vec<EndpointStats> {
        ENDPOINTS
            .iter()
            .zip(&self.table)
            .map(|(endpoint, counters)| EndpointStats {
                endpoint: (*endpoint).to_string(),
                requests: counters.requests.load(Ordering::Relaxed),
                cache_hits: counters.cache_hits.load(Ordering::Relaxed),
                total_micros: counters.latency.sum(),
                p50_micros: counters.latency.quantile(0.50),
                p90_micros: counters.latency.quantile(0.90),
                p99_micros: counters.latency.quantile(0.99),
            })
            .collect()
    }

    /// Renders the table as Prometheus text exposition: request and
    /// cache-hit counters plus the full latency histogram, one series
    /// per endpoint family in [`ENDPOINTS`] order. `/v1/metrics`
    /// appends this to the global registry's rendering.
    pub fn render_prometheus(&self) -> String {
        let mut w = PromWriter::new();
        w.header(
            "thirstyflops_http_requests_total",
            "requests answered per endpoint family (any status)",
            "counter",
        );
        for (endpoint, counters) in ENDPOINTS.iter().zip(&self.table) {
            w.sample_u64(
                "thirstyflops_http_requests_total",
                &format!("endpoint=\"{endpoint}\""),
                counters.requests.load(Ordering::Relaxed),
            );
        }
        w.header(
            "thirstyflops_http_cache_hits_total",
            "requests answered from the body cache per endpoint family",
            "counter",
        );
        for (endpoint, counters) in ENDPOINTS.iter().zip(&self.table) {
            w.sample_u64(
                "thirstyflops_http_cache_hits_total",
                &format!("endpoint=\"{endpoint}\""),
                counters.cache_hits.load(Ordering::Relaxed),
            );
        }
        w.header(
            "thirstyflops_shed_total",
            "requests shed by reason (connection limit, over-cap, deadline)",
            "counter",
        );
        for (reason, counter) in SHED_REASONS.iter().zip(&self.shed) {
            w.sample_u64(
                "thirstyflops_shed_total",
                &format!("reason=\"{reason}\""),
                counter.load(Ordering::Relaxed),
            );
        }
        w.header(
            "thirstyflops_http_request_duration_micros",
            "request wall-clock per endpoint family, microseconds",
            "histogram",
        );
        for (endpoint, counters) in ENDPOINTS.iter().zip(&self.table) {
            w.histogram(
                "thirstyflops_http_request_duration_micros",
                &format!("endpoint=\"{endpoint}\""),
                &counters.latency,
            );
        }
        w.into_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_the_right_family() {
        let metrics = Metrics::default();
        metrics.record("footprint", true, 120);
        metrics.record("footprint", false, 80);
        metrics.record("no-such-endpoint", false, 5);
        let snap = metrics.snapshot();
        assert_eq!(snap.len(), ENDPOINTS.len());
        let footprint = snap.iter().find(|s| s.endpoint == "footprint").unwrap();
        assert_eq!(footprint.requests, 2);
        assert_eq!(footprint.cache_hits, 1);
        assert_eq!(footprint.total_micros, 200);
        let other = snap.iter().find(|s| s.endpoint == "other").unwrap();
        assert_eq!(other.requests, 1);
        // Untouched families are present with zero counts.
        let rank = snap.iter().find(|s| s.endpoint == "rank").unwrap();
        assert_eq!(rank.requests, 0);
        assert_eq!((rank.p50_micros, rank.p99_micros), (0, 0));
        assert_eq!(metrics.total_requests(), 3);
    }

    #[test]
    fn shed_is_its_own_family() {
        let metrics = Metrics::default();
        metrics.record("shed", false, 40);
        let snap = metrics.snapshot();
        let shed = snap.iter().find(|s| s.endpoint == "shed").unwrap();
        assert_eq!(shed.requests, 1);
        let other = snap.iter().find(|s| s.endpoint == "other").unwrap();
        assert_eq!(other.requests, 0, "sheds must not be lumped into other");
    }

    #[test]
    fn shed_reasons_count_and_render() {
        let metrics = Metrics::default();
        metrics.record_shed("connection_limit");
        metrics.record_shed("connection_limit");
        metrics.record_shed("deadline");
        metrics.record_shed("not-a-reason");
        assert_eq!(metrics.shed_snapshot(), [2, 0, 0, 1]);
        let text = metrics.render_prometheus();
        assert!(text.contains("# TYPE thirstyflops_shed_total counter\n"));
        assert!(text.contains("thirstyflops_shed_total{reason=\"connection_limit\"} 2\n"));
        assert!(text.contains("thirstyflops_shed_total{reason=\"deadline\"} 1\n"));
        for reason in SHED_REASONS {
            assert!(
                text.contains(&format!("thirstyflops_shed_total{{reason=\"{reason}\"}} ")),
                "{reason} missing from exposition"
            );
        }
    }

    #[test]
    fn snapshot_reports_quantiles_per_family() {
        let metrics = Metrics::default();
        for _ in 0..99 {
            metrics.record("rank", false, 10);
        }
        metrics.record("rank", false, 1_000_000);
        let snap = metrics.snapshot();
        let rank = snap.iter().find(|s| s.endpoint == "rank").unwrap();
        assert_eq!(rank.p50_micros, 15, "10µs lands in [8,16)");
        assert_eq!(rank.p90_micros, 15);
        assert_eq!(
            rank.p99_micros, 15,
            "rank 99 of 100 is still the fast bucket"
        );
        assert_eq!(rank.total_micros, 99 * 10 + 1_000_000);
    }

    #[test]
    fn prometheus_rendering_covers_every_family() {
        let metrics = Metrics::default();
        metrics.record("rank", true, 100);
        let text = metrics.render_prometheus();
        assert!(text.contains("# TYPE thirstyflops_http_requests_total counter\n"));
        assert!(text.contains("thirstyflops_http_requests_total{endpoint=\"rank\"} 1\n"));
        assert!(text.contains("thirstyflops_http_cache_hits_total{endpoint=\"rank\"} 1\n"));
        assert!(
            text.contains("thirstyflops_http_request_duration_micros_count{endpoint=\"rank\"} 1\n")
        );
        assert!(
            text.contains("thirstyflops_http_request_duration_micros_sum{endpoint=\"rank\"} 100\n")
        );
        for endpoint in ENDPOINTS {
            assert!(
                text.contains(&format!(
                    "thirstyflops_http_requests_total{{endpoint=\"{endpoint}\"}} "
                )),
                "{endpoint} missing from exposition"
            );
        }
        // Rendering is stable: two snapshots of the same state match.
        assert_eq!(text, metrics.render_prometheus());
    }
}
