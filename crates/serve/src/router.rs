//! URL routing: path → [`Route`], plus ordered query-string parsing.
//!
//! Routing is pure string matching with no allocation-heavy framework:
//! the endpoint table is small and fixed, and keeping it as a `match`
//! over path segments makes the URL space auditable at a glance (see
//! `docs/SERVING.md` for the endpoint table).

use crate::error::ServeError;
use crate::http::percent_decode;

/// The API's endpoint families.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz` — liveness probe.
    Healthz,
    /// `GET /readyz` — readiness probe: 200 while accepting traffic,
    /// 503 (+ `Retry-After`) once the server is draining.
    Readyz,
    /// `GET /v1/cache/stats` — cache and per-endpoint counters.
    CacheStats,
    /// `GET /v1/systems` — the catalog listing.
    Systems,
    /// `GET /v1/footprint/{system}` — one system's annual report.
    Footprint(String),
    /// `GET /v1/compare?a=&b=` — two systems side by side.
    Compare,
    /// `GET /v1/rank` — Water500-style ranking of all systems.
    Rank,
    /// `GET /v1/scenario/{system}` — Fig. 14 energy-source what-ifs.
    Scenario(String),
    /// `POST /v1/scenarios/run` — evaluate a scenario spec (body =
    /// spec JSON, `docs/SCENARIOS.md`).
    ScenarioRun,
    /// `POST /v1/scenarios/sweep` — expand and evaluate a sweep spec.
    ScenarioSweep,
    /// `GET /v1/experiments` — the artifact id listing.
    ExperimentIndex,
    /// `GET /v1/experiments/{id}` — one regenerated paper artifact.
    Experiment(String),
    /// `GET /v1/metrics` — Prometheus text exposition of the global
    /// registry plus the per-endpoint table.
    Metrics,
    /// `GET /v1/trace?last=N` — the trace recorder's most recent span
    /// events as Chrome `trace_event` JSON.
    Trace,
}

impl Route {
    /// The metrics family this route counts into
    /// (`crate::metrics::ENDPOINTS`).
    pub fn metrics_label(&self) -> &'static str {
        match self {
            Route::Healthz => "healthz",
            Route::Readyz => "readyz",
            Route::CacheStats => "cache_stats",
            Route::Systems => "systems",
            Route::Footprint(_) => "footprint",
            Route::Compare => "compare",
            Route::Rank => "rank",
            Route::Scenario(_) => "scenario",
            Route::ScenarioRun => "scenarios_run",
            Route::ScenarioSweep => "scenarios_sweep",
            Route::ExperimentIndex | Route::Experiment(_) => "experiments",
            Route::Metrics => "metrics",
            Route::Trace => "trace",
        }
    }

    /// True for the routes that take a spec JSON body (and therefore
    /// require `POST` — everything else is `GET`-only).
    pub fn takes_body(&self) -> bool {
        matches!(self, Route::ScenarioRun | Route::ScenarioSweep)
    }
}

/// Resolves a decoded path to a route.
pub fn route(path: &str) -> Result<Route, ServeError> {
    let segments: Vec<&str> = path.trim_matches('/').split('/').collect();
    match segments.as_slice() {
        ["healthz"] => Ok(Route::Healthz),
        ["readyz"] => Ok(Route::Readyz),
        ["v1", "cache", "stats"] => Ok(Route::CacheStats),
        ["v1", "systems"] => Ok(Route::Systems),
        ["v1", "footprint", system] if !system.is_empty() => {
            Ok(Route::Footprint(system.to_string()))
        }
        ["v1", "compare"] => Ok(Route::Compare),
        ["v1", "rank"] => Ok(Route::Rank),
        ["v1", "scenario", system] if !system.is_empty() => Ok(Route::Scenario(system.to_string())),
        ["v1", "scenarios", "run"] => Ok(Route::ScenarioRun),
        ["v1", "scenarios", "sweep"] => Ok(Route::ScenarioSweep),
        ["v1", "experiments"] => Ok(Route::ExperimentIndex),
        ["v1", "experiments", id] if !id.is_empty() => Ok(Route::Experiment(id.to_string())),
        ["v1", "metrics"] => Ok(Route::Metrics),
        ["v1", "trace"] => Ok(Route::Trace),
        _ => Err(ServeError::NotFound(format!("no route for {path:?}"))),
    }
}

/// Parsed query parameters, preserving wire order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Query(Vec<(String, String)>);

impl Query {
    /// Parses a raw query string (`a=1&b=2`). Keys without `=` get an
    /// empty value (so `?adjusted` reads as `adjusted=`). Percent-escapes
    /// are decoded in both keys and values.
    pub fn parse(raw: &str) -> Result<Query, ServeError> {
        let mut pairs = Vec::new();
        for piece in raw.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = piece.split_once('=').unwrap_or((piece, ""));
            let decode = |s: &str| {
                percent_decode(s).ok_or_else(|| {
                    ServeError::BadRequest(format!("bad percent-escape in query {piece:?}"))
                })
            };
            pairs.push((decode(k)?, decode(v)?));
        }
        Ok(Query(pairs))
    }

    /// First value for a key, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// A required, non-empty string parameter (`/v1/compare`'s `a=` and
    /// `b=`).
    pub fn required(&self, key: &str) -> Result<&str, ServeError> {
        self.get(key).filter(|v| !v.is_empty()).ok_or_else(|| {
            ServeError::BadRequest(format!("missing required query parameter {key:?}"))
        })
    }

    /// `seed` parameter with the CLI's default of 2023.
    pub fn seed(&self) -> Result<u64, ServeError> {
        match self.get("seed") {
            None => Ok(2023),
            Some(raw) => raw.parse().map_err(|_| {
                ServeError::BadRequest(format!("seed must be a non-negative integer, got {raw:?}"))
            }),
        }
    }

    /// Boolean parameter: absent ⇒ `false`; present with an empty value,
    /// `1`, or `true` ⇒ `true`; `0`/`false` ⇒ `false`.
    pub fn flag(&self, key: &str) -> Result<bool, ServeError> {
        match self.get(key) {
            None => Ok(false),
            Some("" | "1" | "true") => Ok(true),
            Some("0" | "false") => Ok(false),
            Some(other) => Err(ServeError::BadRequest(format!(
                "{key} must be true/false/1/0, got {other:?}"
            ))),
        }
    }

    /// Rejects any parameter not in `allowed` — typos like `?sed=7` fail
    /// loudly instead of silently serving the default.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ServeError> {
        for (k, _) in &self.0 {
            if !allowed.contains(&k.as_str()) {
                return Err(ServeError::BadRequest(format!(
                    "unknown query parameter {k:?} (allowed: {allowed:?})"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_resolve() {
        assert_eq!(route("/healthz"), Ok(Route::Healthz));
        assert_eq!(route("/readyz"), Ok(Route::Readyz));
        assert_eq!(route("/v1/cache/stats"), Ok(Route::CacheStats));
        assert_eq!(route("/v1/systems"), Ok(Route::Systems));
        assert_eq!(
            route("/v1/footprint/polaris"),
            Ok(Route::Footprint("polaris".into()))
        );
        assert_eq!(route("/v1/compare"), Ok(Route::Compare));
        assert_eq!(route("/v1/rank"), Ok(Route::Rank));
        assert_eq!(
            route("/v1/scenario/fugaku"),
            Ok(Route::Scenario("fugaku".into()))
        );
        assert_eq!(route("/v1/scenarios/run"), Ok(Route::ScenarioRun));
        assert_eq!(route("/v1/scenarios/sweep"), Ok(Route::ScenarioSweep));
        assert_eq!(route("/v1/experiments"), Ok(Route::ExperimentIndex));
        assert_eq!(
            route("/v1/experiments/fig05"),
            Ok(Route::Experiment("fig05".into()))
        );
        assert_eq!(route("/v1/metrics"), Ok(Route::Metrics));
        assert_eq!(route("/v1/trace"), Ok(Route::Trace));
        // Trailing slash tolerated.
        assert_eq!(route("/v1/rank/"), Ok(Route::Rank));
    }

    #[test]
    fn metrics_labels_cover_every_route() {
        for (path, label) in [
            ("/healthz", "healthz"),
            ("/readyz", "readyz"),
            ("/v1/compare", "compare"),
            ("/v1/scenarios/run", "scenarios_run"),
            ("/v1/scenarios/sweep", "scenarios_sweep"),
            ("/v1/experiments/fig05", "experiments"),
            ("/v1/metrics", "metrics"),
            ("/v1/trace", "trace"),
        ] {
            let resolved = route(path).unwrap();
            assert_eq!(resolved.metrics_label(), label);
            assert!(
                crate::metrics::ENDPOINTS.contains(&resolved.metrics_label()),
                "{label} must be a metrics family"
            );
        }
        assert!(route("/v1/scenarios/run").unwrap().takes_body());
        assert!(!route("/v1/rank").unwrap().takes_body());
    }

    #[test]
    fn unknown_paths_404() {
        for path in ["/", "/v2/rank", "/v1/footprint", "/v1/footprint/a/b"] {
            assert!(
                matches!(route(path), Err(ServeError::NotFound(_))),
                "{path}"
            );
        }
    }

    #[test]
    fn query_parses_in_order() {
        let q = Query::parse("seed=7&adjusted").unwrap();
        assert_eq!(q.get("seed"), Some("7"));
        assert_eq!(q.seed().unwrap(), 7);
        assert!(q.flag("adjusted").unwrap());
        assert!(!Query::parse("").unwrap().flag("adjusted").unwrap());
    }

    #[test]
    fn query_rejects_garbage() {
        assert!(Query::parse("seed=abc").unwrap().seed().is_err());
        assert!(Query::parse("seed=-1").unwrap().seed().is_err());
        assert!(Query::parse("adjusted=maybe")
            .unwrap()
            .flag("adjusted")
            .is_err());
        assert!(Query::parse("seed=7&sed=9")
            .unwrap()
            .expect_only(&["seed"])
            .is_err());
        assert!(Query::parse("a=%zz").is_err());
    }

    #[test]
    fn default_seed_matches_cli() {
        assert_eq!(Query::parse("").unwrap().seed().unwrap(), 2023);
    }
}
