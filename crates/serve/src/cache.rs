//! A sharded, bounded in-memory result cache for rendered JSON bodies.
//!
//! Keys are canonical request descriptors (`"footprint/polaris?seed=7"`
//! — normalized, so a defaulted and an explicit `seed=2023` share one
//! entry; see `docs/SERVING.md` for the scheme). Values are the exact
//! response bodies, shared via `Arc` so a hit costs one clone of a
//! pointer, not a re-simulation of an 8760-hour year.
//!
//! The cache is a thin wrapper over [`MemoCache`] — the same sharded,
//! single-flight memo structure the simulation substrate uses — so under
//! concurrent misses on one hot key exactly one worker renders the body
//! and the rest block and share it, instead of racing duplicate
//! simulations. The key space is caller-controlled (`?seed=` is a free
//! `u64`), so the cache is **bounded**: LRU eviction on overflow and an
//! optional TTL, both counted in [`CacheStats::evictions`].
//!
//! Determinism contract: handlers are pure functions of the canonical
//! key, so a cached body and a freshly computed body are byte-identical
//! by construction — eviction and expiry affect only *when* a body is
//! recomputed, never its bytes. Single-flight also makes the hit/miss
//! counters exact: each key's first touch is the one miss, every other
//! lookup (even a racer that blocked on the in-flight render) is a hit.

use std::sync::Arc;
use std::time::Duration;

use thirstyflops_core::simcache::MemoCache;

/// Sharded `(canonical request) → (response body)` cache with
/// single-flight computes, LRU eviction, optional TTL, and
/// hit/miss/eviction counters.
#[derive(Debug)]
pub struct ResultCache {
    memo: MemoCache<String, Arc<str>>,
}

/// Body-cache counters exposed by `GET /v1/cache/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Requests answered from the cache (no simulation ran) — including
    /// racers that blocked on an in-flight render.
    pub hits: u64,
    /// First touches that rendered and inserted their body.
    pub misses: u64,
    /// Distinct cached bodies across all shards.
    pub entries: u64,
    /// Bodies dropped by the LRU bound or the TTL.
    pub evictions: u64,
    /// Effective entry bound: the configured `--cache-entries` rounded
    /// up to a full shard multiple (`0` = unbounded).
    pub capacity: u64,
    /// Configured TTL in seconds (`0` = entries never expire).
    pub ttl_seconds: u64,
    /// Number of shards (fixed at construction).
    pub shards: u64,
}

impl ResultCache {
    /// A cache with `shards` independent locks (clamped to ≥ 1), bounded
    /// entries (`capacity` = `0` means unbounded), and an optional
    /// time-to-live. The bound is enforced per shard (at least one entry
    /// each), so the effective total — what [`CacheStats::capacity`]
    /// reports — is `capacity` rounded up to a full shard multiple, and
    /// the live total can sit under it when keys hash unevenly.
    pub fn with_limits(shards: usize, capacity: usize, ttl: Option<Duration>) -> ResultCache {
        ResultCache {
            memo: MemoCache::with_ttl(shards, capacity, ttl),
        }
    }

    /// An unbounded, never-expiring cache with `shards` locks — the
    /// pre-eviction behavior, kept for tests and embedders.
    pub fn new(shards: usize) -> ResultCache {
        Self::with_limits(shards, 0, None)
    }

    /// Returns the cached body for `key`, or computes, caches, and
    /// returns it. Single-flight: under concurrent misses on one key,
    /// exactly one caller renders; the rest block and share the result.
    /// The compute closure runs outside the shard lock, so a slow
    /// simulation never blocks unrelated keys in the same shard.
    pub fn get_or_compute(&self, key: &str, compute: impl FnOnce() -> String) -> Arc<str> {
        let slot = self
            .memo
            .get_or_compute(key.to_string(), || Arc::from(compute()));
        Arc::clone(&slot)
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let layer = self.memo.stats();
        CacheStats {
            hits: layer.hits,
            misses: layer.misses,
            entries: layer.entries,
            evictions: layer.evictions,
            capacity: self.memo.capacity(),
            ttl_seconds: self.memo.ttl().map_or(0, |t| t.as_secs()),
            shards: self.memo.shard_count(),
        }
    }
}

impl Default for ResultCache {
    /// Eight shards (enough to keep worker threads off each other's
    /// locks at any realistic worker count), bounded at 4096 entries,
    /// no TTL — the `thirstyflops serve` defaults.
    fn default() -> ResultCache {
        ResultCache::with_limits(8, 4096, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits_and_skips_compute() {
        let cache = ResultCache::default();
        let first = cache.get_or_compute("k", || "body".into());
        let second = cache.get_or_compute("k", || panic!("must not recompute"));
        assert_eq!(&*first, "body");
        assert_eq!(first, second);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.shards, 8);
        assert_eq!(stats.capacity, 4096);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.ttl_seconds, 0);
    }

    #[test]
    fn distinct_keys_get_distinct_entries() {
        let cache = ResultCache::new(2);
        for i in 0..10 {
            cache.get_or_compute(&format!("k{i}"), || format!("v{i}"));
        }
        assert_eq!(cache.stats().entries, 10);
        assert_eq!(cache.stats().misses, 10);
        assert_eq!(&*cache.get_or_compute("k3", || unreachable!()), "v3");
    }

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(ResultCache::new(0).stats().shards, 1);
    }

    #[test]
    fn lru_bound_evicts_the_least_recent_body() {
        // One shard, capacity 3 ⇒ per-shard bound 3.
        let cache = ResultCache::with_limits(1, 3, None);
        for k in ["a", "b", "c"] {
            cache.get_or_compute(k, || k.to_uppercase());
        }
        // Touch "a" so "b" is the LRU victim for the next insert.
        cache.get_or_compute("a", || unreachable!("hit"));
        cache.get_or_compute("d", || "D".into());
        let stats = cache.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.evictions, 1);
        // "b" recomputes (it was evicted) — which in turn evicts "c",
        // by then the least-recently-used survivor.
        let mut recomputed = false;
        cache.get_or_compute("b", || {
            recomputed = true;
            "B".into()
        });
        assert!(recomputed, "b must have been evicted");
        assert_eq!(cache.stats().evictions, 2);
        assert_eq!(cache.stats().entries, 3);
        // "a" was touched most recently of the original trio: it outlives
        // both eviction rounds.
        cache.get_or_compute("a", || unreachable!("a survived"));
    }

    #[test]
    fn ttl_expires_entries_and_counts_evictions() {
        let cache = ResultCache::with_limits(1, 0, Some(Duration::from_millis(25)));
        cache.get_or_compute("k", || "v1".into());
        assert_eq!(&*cache.get_or_compute("k", || unreachable!()), "v1");
        std::thread::sleep(Duration::from_millis(40));
        let mut recomputed = false;
        let body = cache.get_or_compute("k", || {
            recomputed = true;
            "v1".into() // pure handlers: same bytes after expiry
        });
        assert!(recomputed, "expired entry must recompute");
        assert_eq!(&*body, "v1");
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.ttl_seconds, 0, "sub-second TTL rounds down");
        assert_eq!((stats.hits, stats.misses), (1, 2));
    }

    #[test]
    fn concurrent_identical_misses_are_single_flight() {
        let cache = std::sync::Arc::new(ResultCache::default());
        let rendered = std::sync::atomic::AtomicUsize::new(0);
        let bodies: Vec<Arc<str>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = std::sync::Arc::clone(&cache);
                    let rendered = &rendered;
                    scope.spawn(move || {
                        cache.get_or_compute("hot", || {
                            rendered.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            // Widen the race window so late arrivals
                            // genuinely block on the in-flight render.
                            std::thread::sleep(Duration::from_millis(20));
                            "same".into()
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(bodies.iter().all(|b| &**b == "same"));
        assert_eq!(
            rendered.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "hot key renders exactly once"
        );
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 7);
    }
}
