//! A sharded in-memory result cache for rendered JSON bodies.
//!
//! Keys are canonical request descriptors (`"footprint/polaris?seed=7"`
//! — normalized, so a defaulted and an explicit `seed=2023` share one
//! entry; see `docs/SERVING.md` for the scheme). Values are the exact
//! response bodies, shared via `Arc` so a hit costs one clone of a
//! pointer, not a re-simulation of an 8760-hour year.
//!
//! Determinism contract: handlers are pure functions of the canonical
//! key, so a cached body and a freshly computed body are byte-identical
//! by construction. Under concurrent misses on the same key two workers
//! may both compute; both produce the same bytes and the first insert
//! wins, so responses never depend on the race (the hit/miss counters
//! may, which is why they are documented as monotonic, not exact, under
//! concurrency).

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// `DefaultHasher::default()` is SipHash with fixed keys — deterministic
/// across processes, unlike `RandomState`.
type FixedState = BuildHasherDefault<DefaultHasher>;

type Shard = Mutex<HashMap<String, Arc<str>, FixedState>>;

/// Sharded `(canonical request) → (response body)` cache with hit/miss
/// counters.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Counters exposed by `GET /v1/cache/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Requests answered from the cache (no simulation ran).
    pub hits: u64,
    /// Requests that had to compute and insert their body.
    pub misses: u64,
    /// Distinct cached bodies across all shards.
    pub entries: u64,
    /// Number of shards (fixed at construction).
    pub shards: u64,
}

impl ResultCache {
    /// A cache with `shards` independent locks (clamped to ≥ 1).
    pub fn new(shards: usize) -> ResultCache {
        ResultCache {
            shards: (0..shards.max(1)).map(|_| Shard::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Shard {
        let mut hasher = DefaultHasher::default();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Returns the cached body for `key`, or computes, caches, and
    /// returns it. The compute closure runs outside the shard lock so a
    /// slow simulation never blocks unrelated keys in the same shard.
    pub fn get_or_compute(&self, key: &str, compute: impl FnOnce() -> String) -> Arc<str> {
        let shard = self.shard(key);
        if let Some(found) = shard.lock().expect("cache shard poisoned").get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let computed: Arc<str> = Arc::from(compute());
        match shard
            .lock()
            .expect("cache shard poisoned")
            .entry(key.to_string())
        {
            // A concurrent miss beat us to the insert; its bytes are
            // identical (pure handlers), keep the incumbent.
            Entry::Occupied(e) => Arc::clone(e.get()),
            Entry::Vacant(e) => Arc::clone(e.insert(computed)),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len() as u64)
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            shards: self.shards.len() as u64,
        }
    }
}

impl Default for ResultCache {
    /// Eight shards: enough to keep worker threads off each other's
    /// locks at any worker count this server realistically runs.
    fn default() -> ResultCache {
        ResultCache::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits_and_skips_compute() {
        let cache = ResultCache::default();
        let first = cache.get_or_compute("k", || "body".into());
        let second = cache.get_or_compute("k", || panic!("must not recompute"));
        assert_eq!(&*first, "body");
        assert_eq!(first, second);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.shards, 8);
    }

    #[test]
    fn distinct_keys_get_distinct_entries() {
        let cache = ResultCache::new(2);
        for i in 0..10 {
            cache.get_or_compute(&format!("k{i}"), || format!("v{i}"));
        }
        assert_eq!(cache.stats().entries, 10);
        assert_eq!(cache.stats().misses, 10);
        assert_eq!(&*cache.get_or_compute("k3", || unreachable!()), "v3");
    }

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(ResultCache::new(0).stats().shards, 1);
    }

    #[test]
    fn concurrent_identical_misses_agree() {
        let cache = std::sync::Arc::new(ResultCache::default());
        let bodies: Vec<Arc<str>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = std::sync::Arc::clone(&cache);
                    scope.spawn(move || cache.get_or_compute("hot", || "same".into()))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(bodies.iter().all(|b| &**b == "same"));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().hits + cache.stats().misses, 8);
    }
}
