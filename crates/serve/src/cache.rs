//! A sharded, bounded in-memory result cache for rendered JSON bodies.
//!
//! Keys are canonical request descriptors (`"footprint/polaris?seed=7"`
//! — normalized, so a defaulted and an explicit `seed=2023` share one
//! entry; see `docs/SERVING.md` for the scheme). Values are the exact
//! response bodies, shared via `Arc` so a hit costs one clone of a
//! pointer, not a re-simulation of an 8760-hour year.
//!
//! The key space is caller-controlled (`?seed=` is a free `u64`), so the
//! cache is **bounded**: each shard holds at most its slice of the
//! configured capacity and evicts its least-recently-used entry on
//! overflow, counted in [`CacheStats::evictions`]. An optional TTL lets
//! operators bound staleness too; an expired entry is dropped on lookup
//! (also counted as an eviction) and recomputed.
//!
//! Determinism contract: handlers are pure functions of the canonical
//! key, so a cached body and a freshly computed body are byte-identical
//! by construction — eviction and expiry affect only *when* a body is
//! recomputed, never its bytes. Under concurrent misses on the same key
//! two workers may both compute; both produce the same bytes and the
//! first insert wins, so responses never depend on the race (the
//! hit/miss counters may, which is why they are documented as monotonic,
//! not exact, under concurrency).

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// `DefaultHasher::default()` is SipHash with fixed keys — deterministic
/// across processes, unlike `RandomState`.
type FixedState = BuildHasherDefault<DefaultHasher>;

/// One cached body with its freshness and recency metadata.
#[derive(Debug)]
struct CachedBody {
    body: Arc<str>,
    inserted: Instant,
    last_used: u64,
}

type Shard = Mutex<HashMap<String, CachedBody, FixedState>>;

/// Sharded `(canonical request) → (response body)` cache with LRU
/// eviction, optional TTL, and hit/miss/eviction counters.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Shard>,
    /// Per-shard entry bound; `0` = unbounded.
    capacity_per_shard: usize,
    /// Configured total capacity as reported in stats (`0` = unbounded).
    capacity: u64,
    ttl: Option<Duration>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Body-cache counters exposed by `GET /v1/cache/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Requests answered from the cache (no simulation ran).
    pub hits: u64,
    /// Requests that had to compute and insert their body.
    pub misses: u64,
    /// Distinct cached bodies across all shards.
    pub entries: u64,
    /// Bodies dropped by the LRU bound or the TTL.
    pub evictions: u64,
    /// Effective entry bound: the configured `--cache-entries` rounded
    /// up to a full shard multiple (`0` = unbounded).
    pub capacity: u64,
    /// Configured TTL in seconds (`0` = entries never expire).
    pub ttl_seconds: u64,
    /// Number of shards (fixed at construction).
    pub shards: u64,
}

impl ResultCache {
    /// A cache with `shards` independent locks (clamped to ≥ 1), bounded
    /// entries (`capacity` = `0` means unbounded), and an optional
    /// time-to-live. The bound is enforced per shard (at least one entry
    /// each), so the effective total — what [`CacheStats::capacity`]
    /// reports — is `capacity` rounded up to a full shard multiple, and
    /// the live total can sit under it when keys hash unevenly.
    pub fn with_limits(shards: usize, capacity: usize, ttl: Option<Duration>) -> ResultCache {
        let shards = shards.max(1);
        let capacity_per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards).max(1)
        };
        ResultCache {
            capacity_per_shard,
            capacity: (capacity_per_shard * shards) as u64,
            ttl,
            shards: (0..shards).map(|_| Shard::default()).collect(),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// An unbounded, never-expiring cache with `shards` locks — the
    /// pre-eviction behavior, kept for tests and embedders.
    pub fn new(shards: usize) -> ResultCache {
        Self::with_limits(shards, 0, None)
    }

    fn shard(&self, key: &str) -> &Shard {
        let mut hasher = DefaultHasher::default();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    fn expired(&self, entry: &CachedBody) -> bool {
        self.ttl.is_some_and(|ttl| entry.inserted.elapsed() > ttl)
    }

    /// Returns the cached body for `key`, or computes, caches, and
    /// returns it. The compute closure runs outside the shard lock so a
    /// slow simulation never blocks unrelated keys in the same shard.
    pub fn get_or_compute(&self, key: &str, compute: impl FnOnce() -> String) -> Arc<str> {
        let shard = self.shard(key);
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        {
            let mut map = shard.lock().expect("cache shard poisoned");
            match map.get_mut(key) {
                Some(entry) if !self.expired(entry) => {
                    entry.last_used = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(&entry.body);
                }
                Some(_) => {
                    // Past its TTL: drop and recompute below.
                    map.remove(key);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => {}
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let computed: Arc<str> = Arc::from(compute());
        let mut map = shard.lock().expect("cache shard poisoned");
        let body = match map.entry(key.to_string()) {
            // A concurrent miss beat us to the insert; its bytes are
            // identical (pure handlers), keep the incumbent.
            Entry::Occupied(mut e) => {
                e.get_mut().last_used = tick;
                Arc::clone(&e.get().body)
            }
            Entry::Vacant(e) => {
                let body = Arc::clone(&computed);
                e.insert(CachedBody {
                    body: computed,
                    inserted: Instant::now(),
                    last_used: tick,
                });
                body
            }
        };
        if self.capacity_per_shard > 0 {
            while map.len() > self.capacity_per_shard {
                // Evict the least-recently-used entry that is not the
                // body we are about to serve.
                let victim = map
                    .iter()
                    .filter(|(_, e)| !Arc::ptr_eq(&e.body, &body))
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone());
                match victim {
                    Some(victim) => {
                        map.remove(&victim);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
        }
        body
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len() as u64)
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            evictions: self.evictions.load(Ordering::Relaxed),
            capacity: self.capacity,
            ttl_seconds: self.ttl.map_or(0, |t| t.as_secs()),
            shards: self.shards.len() as u64,
        }
    }
}

impl Default for ResultCache {
    /// Eight shards (enough to keep worker threads off each other's
    /// locks at any realistic worker count), bounded at 4096 entries,
    /// no TTL — the `thirstyflops serve` defaults.
    fn default() -> ResultCache {
        ResultCache::with_limits(8, 4096, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits_and_skips_compute() {
        let cache = ResultCache::default();
        let first = cache.get_or_compute("k", || "body".into());
        let second = cache.get_or_compute("k", || panic!("must not recompute"));
        assert_eq!(&*first, "body");
        assert_eq!(first, second);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.shards, 8);
        assert_eq!(stats.capacity, 4096);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.ttl_seconds, 0);
    }

    #[test]
    fn distinct_keys_get_distinct_entries() {
        let cache = ResultCache::new(2);
        for i in 0..10 {
            cache.get_or_compute(&format!("k{i}"), || format!("v{i}"));
        }
        assert_eq!(cache.stats().entries, 10);
        assert_eq!(cache.stats().misses, 10);
        assert_eq!(&*cache.get_or_compute("k3", || unreachable!()), "v3");
    }

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(ResultCache::new(0).stats().shards, 1);
    }

    #[test]
    fn lru_bound_evicts_the_least_recent_body() {
        // One shard, capacity 3 ⇒ per-shard bound 3.
        let cache = ResultCache::with_limits(1, 3, None);
        for k in ["a", "b", "c"] {
            cache.get_or_compute(k, || k.to_uppercase());
        }
        // Touch "a" so "b" is the LRU victim for the next insert.
        cache.get_or_compute("a", || unreachable!("hit"));
        cache.get_or_compute("d", || "D".into());
        let stats = cache.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.evictions, 1);
        // "b" recomputes (it was evicted) — which in turn evicts "c",
        // by then the least-recently-used survivor.
        let mut recomputed = false;
        cache.get_or_compute("b", || {
            recomputed = true;
            "B".into()
        });
        assert!(recomputed, "b must have been evicted");
        assert_eq!(cache.stats().evictions, 2);
        assert_eq!(cache.stats().entries, 3);
        // "a" was touched most recently of the original trio: it outlives
        // both eviction rounds.
        cache.get_or_compute("a", || unreachable!("a survived"));
    }

    #[test]
    fn ttl_expires_entries_and_counts_evictions() {
        let cache = ResultCache::with_limits(1, 0, Some(Duration::from_millis(25)));
        cache.get_or_compute("k", || "v1".into());
        assert_eq!(&*cache.get_or_compute("k", || unreachable!()), "v1");
        std::thread::sleep(Duration::from_millis(40));
        let mut recomputed = false;
        let body = cache.get_or_compute("k", || {
            recomputed = true;
            "v1".into() // pure handlers: same bytes after expiry
        });
        assert!(recomputed, "expired entry must recompute");
        assert_eq!(&*body, "v1");
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.ttl_seconds, 0, "sub-second TTL rounds down");
        assert_eq!((stats.hits, stats.misses), (1, 2));
    }

    #[test]
    fn concurrent_identical_misses_agree() {
        let cache = std::sync::Arc::new(ResultCache::default());
        let bodies: Vec<Arc<str>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = std::sync::Arc::clone(&cache);
                    scope.spawn(move || cache.get_or_compute("hot", || "same".into()))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(bodies.iter().all(|b| &**b == "same"));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().hits + cache.stats().misses, 8);
    }
}
